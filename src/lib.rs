//! # hypothetical-datalog
//!
//! A production-quality reproduction of **Anthony J. Bonner,
//! "Hypothetical Datalog: Negation and Linear Recursion", PODS 1989**.
//!
//! Hypothetical Datalog extends function-free Horn logic with premises
//! `A[add: B]` — *"infer `A` if inserting `B` into the database allows the
//! inference of `A`"* — plus negation-as-failure. The paper shows that
//! with **linear stratification** (linear hypothetical recursion
//! alternating with stratified negation), rulebases with `k` strata are
//! data-complete for `Σₖᴾ` and express exactly the generic queries in
//! `Σₖᴾ`, without assuming ordered domains.
//!
//! ## Quick start
//!
//! ```
//! use hypothetical_datalog::prelude::*;
//!
//! let mut syms = SymbolTable::new();
//! let program = parse_program(
//!     "take(tony, his101).
//!      grad(S) :- take(S, his101), take(S, eng201).",
//!     &mut syms,
//! ).unwrap();
//! let (rules, facts) = split_facts(program);
//! let db: Database = facts.into_iter().collect();
//!
//! // 'If Tony took eng201, would he graduate?' (paper, Example 1)
//! let query = parse_query(
//!     "?- grad(tony)[add: take(tony, eng201)].",
//!     &mut syms,
//! ).unwrap();
//! let mut engine = TopDownEngine::new(&rules, &db).unwrap();
//! assert!(engine.holds(&query).unwrap());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`hdl_base`] | Symbols, terms, atoms, indexed databases, interners |
//! | [`hdl_datalog`] | Plain Datalog baseline (naive & semi-naive, stratified negation) |
//! | [`hdl_core`] | Hypothetical rules, parser, linear stratification (Lemma 1), three engines (bottom-up reference, top-down tabled, the §5.2 `PROVE` procedures) |
//! | [`hdl_service`] | Concurrent query service: snapshots, worker pool, answer cache |
//! | [`hdl_persist`] | Durable sessions: write-ahead log, checkpoints, crash recovery |
//! | [`hdl_turing`] | Nondeterministic oracle Turing machines and cascade simulation |
//! | [`hdl_encodings`] | §5.1 machine→rulebase compiler; §6 order assertion, ℓ-counters, bitmaps, Lemma 2 pipeline |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced results.

pub use hdl_base;
pub use hdl_core;
pub use hdl_datalog;
pub use hdl_encodings;
pub use hdl_persist;
pub use hdl_service;
pub use hdl_turing;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use hdl_base::{Atom, Database, GroundAtom, Symbol, SymbolTable, Term, Var};
    pub use hdl_core::analysis::stratify::{linear_stratification, LinearStratification};
    pub use hdl_core::ast::{HypRule, Premise, Rulebase};
    pub use hdl_core::engine::{BottomUpEngine, EngineStats, Limits, ProveEngine, TopDownEngine};
    pub use hdl_core::engine::{Budget, CancelToken};
    pub use hdl_core::parser::{parse_program, parse_query, split_facts};
    pub use hdl_core::pretty;
    pub use hdl_core::session::{EngineKind, Session};
    pub use hdl_core::snapshot::Snapshot;
    pub use hdl_persist::{DurableSession, FsyncPolicy, RecoveryReport};
    pub use hdl_service::{Outcome, QueryRequest, QueryService, ServiceStats, Ticket};
}
