//! `hdl` — an interactive shell and batch/serve front-end for
//! hypothetical Datalog.
//!
//! ```console
//! $ cargo run --bin hdl [file.hdl ...]
//! hdl> take(tony, his101).
//! hdl> grad(S) :- take(S, his101), take(S, eng201).
//! hdl> ?- grad(tony)[add: take(tony, eng201)].
//! true
//! hdl> :explain ?- grad(tony)[add: take(tony, eng201)].
//! grad(tony)    [rule 0]
//!   ...
//! ```
//!
//! Lines ending in `.` are programs (rules/facts) or queries (`?- …`).
//! Commands: `:load FILE`, `:rules`, `:facts`, `:answers PATTERN`,
//! `:explain QUERY`, `:strata`, `:stats`, `:help`, `:quit`.
//!
//! Two further modes drive the `hdl-service` concurrent executor:
//!
//! ```console
//! $ hdl batch queries.hdl --workers 4 --engine top-down --deadline-ms 500
//! $ printf '?- grad(tony).\n' | hdl serve --stdin --workers 4 program.hdl
//! ```
//!
//! `batch` runs every `?- …` line of its input concurrently (program
//! lines load in order and publish fresh snapshots), emits one result
//! line per query in input order, prints a `ServiceStats` summary to
//! stderr, and exits non-zero if any query errored. `serve --stdin`
//! loads the given program files, then answers query lines from stdin
//! one at a time; `:stats` prints the live service counters (`:stats
//! --json` as one machine-readable line). Both accept `:answers
//! PATTERN` lines for all-tuples queries; a budget trip mid-scan prints
//! the partial answer set (`… partial: reason`) rather than discarding
//! tuples already proven. Bare `serve` without `--stdin`/`--listen` is
//! the deprecated spelling of `serve --stdin`.
//!
//! The network server and its client (`crates/server`,
//! `docs/protocol.md`):
//!
//! ```console
//! $ hdl serve --listen 127.0.0.1:0 --persist-root ./data
//! listening on 127.0.0.1:40213
//! $ hdl connect 127.0.0.1:40213 --tenant alice
//! ```
//!
//! `serve --listen` multiplexes named tenants — each a full durable
//! session under `<persist-root>/tenants/<name>` — over TCP
//! (newline-delimited JSON), sharing fsyncs across concurrent
//! mutations via group commit; the resolved address prints on stdout
//! so scripts can bind port 0. Admission: `--max-connections`,
//! `--tenant-max-facts`, `--tenant-max-depth`, `--tenant-queue-cap`,
//! `--tenant-in-flight`. SIGTERM or a client `shutdown` op drains
//! gracefully, checkpointing every durable tenant. `connect` turns
//! REPL-dialect lines into protocol requests (raw `{…}` lines pass
//! through) and prints each JSON reply.
//!
//! Fault-tolerance flags (batch/serve): `--max-facts N` caps the facts
//! a query may intern (trips print `memory-exceeded`), `--retries N`
//! bounds panic-retry attempts per query, `--queue-cap N` sheds
//! submissions past N waiting jobs as `overloaded`.
//!
//! Durability (all modes): `--persist-dir DIR` write-ahead-logs every
//! mutation (loads, `:assume`, `:retract`) under `DIR` and recovers the
//! session from it on startup — a `kill -9` loses nothing acked.
//! `--fsync always|never|N` trades sync cost for power-loss durability
//! (default `always`). `:checkpoint` compacts the log into an atomic
//! snapshot. When persisting, every applied mutation is acked with an
//! `ok` line on stdout (and `:checkpoint` with `checkpoint <epoch>`), so
//! scripted clients can tell exactly which mutations are durable.

use hdl_core::session::EngineKind;
use hdl_server::{Json, Server, ServerConfig, TenantQuotas};
use hdl_service::{Outcome, QueryRequest, QueryService, ServiceConfig};
use hypothetical_datalog::prelude::*;
use std::io::{self, BufRead, BufReader, Read as _, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let status = match args.first().map(String::as_str) {
        Some("batch") => batch_main(&args[1..]),
        Some("serve") => serve_main(&args[1..]),
        Some("connect") => connect_main(&args[1..]),
        _ => repl_main(&args),
    };
    std::process::exit(status);
}

/// Options shared by all modes.
struct Opts {
    files: Vec<String>,
    workers: usize,
    /// Whether `--workers` was given explicitly (the network server
    /// uses a smaller per-tenant default otherwise).
    workers_set: bool,
    engine: EngineKind,
    deadline: Option<Duration>,
    max_facts: Option<u64>,
    retries: Option<u32>,
    queue_cap: Option<usize>,
    persist_dir: Option<String>,
    fsync: FsyncPolicy,
    /// `serve --listen ADDR`: run the network server.
    listen: Option<String>,
    /// `serve --stdin`: the in-process queue-drain mode, explicitly.
    stdin_mode: bool,
    /// Network server: tenants persist under `<root>/tenants/<name>`.
    persist_root: Option<String>,
    /// Network server: batch concurrent WAL commits across tenants.
    group_commit: bool,
    /// Network server: refuse connections past this count.
    max_connections: usize,
    /// Per-tenant quota: cap on stored base facts.
    tenant_max_facts: Option<u64>,
    /// Per-tenant quota: cap on stacked assumption frames.
    tenant_max_depth: Option<u64>,
    /// Per-tenant quota: queued-query share.
    tenant_queue_cap: Option<usize>,
    /// Per-tenant quota: concurrent in-flight requests.
    tenant_in_flight: Option<usize>,
    /// `connect`: tenant to open on startup.
    tenant: Option<String>,
    /// Network server: follower addresses to ship WAL windows to
    /// (primary role; repeatable).
    replicate_to: Vec<String>,
    /// Network server: default replication quorum a mutation ack waits
    /// for (0 = async; must not exceed the `--replicate-to` count).
    sync_replicas: usize,
    /// Network server: primary address to trail as a read-only follower.
    follow: Option<String>,
    /// `connect`: transparently reconnect (capped exponential backoff)
    /// and replay the in-flight request when the server drops the link.
    reconnect: bool,
}

impl Opts {
    /// The service pool configuration these options describe.
    fn service_config(&self) -> ServiceConfig {
        let mut config = ServiceConfig {
            workers: self.workers,
            queue_cap: self.queue_cap,
            max_facts: self.max_facts,
            ..ServiceConfig::default()
        };
        if let Some(r) = self.retries {
            config.retries = r;
        }
        config
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        files: Vec::new(),
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        workers_set: false,
        engine: EngineKind::default(),
        deadline: None,
        max_facts: None,
        retries: None,
        queue_cap: None,
        persist_dir: None,
        fsync: FsyncPolicy::Always,
        listen: None,
        stdin_mode: false,
        persist_root: None,
        group_commit: true,
        max_connections: 64,
        tenant_max_facts: None,
        tenant_max_depth: None,
        tenant_queue_cap: None,
        tenant_in_flight: None,
        tenant: None,
        replicate_to: Vec::new(),
        sync_replicas: 0,
        follow: None,
        reconnect: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workers" | "-w" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                opts.workers_set = true;
            }
            "--engine" | "-e" => {
                opts.engine = value("--engine")?
                    .parse()
                    .map_err(|e| format!("--engine: {e}"))?;
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                opts.deadline = Some(Duration::from_millis(ms));
            }
            "--max-facts" => {
                opts.max_facts = Some(
                    value("--max-facts")?
                        .parse()
                        .map_err(|e| format!("--max-facts: {e}"))?,
                );
            }
            "--retries" => {
                opts.retries = Some(
                    value("--retries")?
                        .parse()
                        .map_err(|e| format!("--retries: {e}"))?,
                );
            }
            "--queue-cap" => {
                opts.queue_cap = Some(
                    value("--queue-cap")?
                        .parse()
                        .map_err(|e| format!("--queue-cap: {e}"))?,
                );
            }
            "--persist-dir" => {
                opts.persist_dir = Some(value("--persist-dir")?);
            }
            "--fsync" => {
                opts.fsync = value("--fsync")?
                    .parse()
                    .map_err(|e| format!("--fsync: {e}"))?;
            }
            "--listen" | "-l" => {
                opts.listen = Some(value("--listen")?);
            }
            "--stdin" => {
                opts.stdin_mode = true;
            }
            "--persist-root" => {
                opts.persist_root = Some(value("--persist-root")?);
            }
            "--group-commit" => {
                opts.group_commit = true;
            }
            "--no-group-commit" => {
                opts.group_commit = false;
            }
            "--max-connections" => {
                opts.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--tenant-max-facts" => {
                opts.tenant_max_facts = Some(
                    value("--tenant-max-facts")?
                        .parse()
                        .map_err(|e| format!("--tenant-max-facts: {e}"))?,
                );
            }
            "--tenant-max-depth" => {
                opts.tenant_max_depth = Some(
                    value("--tenant-max-depth")?
                        .parse()
                        .map_err(|e| format!("--tenant-max-depth: {e}"))?,
                );
            }
            "--tenant-queue-cap" => {
                opts.tenant_queue_cap = Some(
                    value("--tenant-queue-cap")?
                        .parse()
                        .map_err(|e| format!("--tenant-queue-cap: {e}"))?,
                );
            }
            "--tenant-in-flight" => {
                opts.tenant_in_flight = Some(
                    value("--tenant-in-flight")?
                        .parse()
                        .map_err(|e| format!("--tenant-in-flight: {e}"))?,
                );
            }
            "--tenant" | "-t" => {
                opts.tenant = Some(value("--tenant")?);
            }
            "--replicate-to" => {
                opts.replicate_to.push(value("--replicate-to")?);
            }
            "--sync-replicas" => {
                opts.sync_replicas = value("--sync-replicas")?
                    .parse()
                    .map_err(|e| format!("--sync-replicas: {e}"))?;
            }
            "--follow" => {
                opts.follow = Some(value("--follow")?);
            }
            "--reconnect" => {
                opts.reconnect = true;
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag}"));
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    Ok(opts)
}

fn usage_error(mode: &str, msg: &str) -> i32 {
    eprintln!("hdl {mode}: {msg}");
    match mode {
        "serve" => eprintln!(
            "usage: hdl serve --listen ADDR [--persist-root DIR] [--fsync always|never|N] \
             [--no-group-commit] [--max-connections N] [--workers N] \
             [--tenant-max-facts N] [--tenant-max-depth N] [--tenant-queue-cap N] \
             [--tenant-in-flight N] [--max-facts N] [--deadline-ms MS] \
             [--replicate-to ADDR ...] [--sync-replicas N] [--follow ADDR]\n\
             \x20      hdl serve --stdin [FILE ...] [--workers N] [--engine top-down|bottom-up|magic] \
             [--deadline-ms MS] [--max-facts N] [--retries N] [--queue-cap N] \
             [--persist-dir DIR] [--fsync always|never|N]"
        ),
        "connect" => eprintln!("usage: hdl connect HOST:PORT [--tenant NAME] [--reconnect]"),
        _ => eprintln!(
            "usage: hdl {mode} [FILE ...] [--workers N] [--engine top-down|bottom-up|magic] \
             [--deadline-ms MS] [--max-facts N] [--retries N] [--queue-cap N] \
             [--persist-dir DIR] [--fsync always|never|N]"
        ),
    }
    2
}

/// Opens the session this invocation works on: durable when
/// `--persist-dir` was given (recovering any existing state there),
/// plain in-memory otherwise. Recovery is narrated on stderr.
fn open_session(opts: &Opts) -> Result<DurableSession, String> {
    let Some(dir) = &opts.persist_dir else {
        return Ok(DurableSession::ephemeral());
    };
    let session = DurableSession::open(dir, opts.fsync)
        .map_err(|e| format!("cannot open persist dir {dir}: {e}"))?;
    if let Some(r) = session.recovery_report() {
        if r.restored_anything() || r.records_truncated > 0 || r.checkpoints_skipped > 0 {
            eprintln!(
                "recovered from {dir}: checkpoint epoch {}, {} records replayed, \
                 {} records truncated ({} bytes), {} corrupt checkpoints skipped",
                r.checkpoint_epoch,
                r.records_replayed,
                r.records_truncated,
                r.bytes_truncated,
                r.checkpoints_skipped
            );
        }
    }
    Ok(session)
}

/// Prints the mutation ack line scripted durable clients key on.
fn ack(session: &DurableSession) {
    if session.is_durable() {
        println!("ok");
        let _ = io::stdout().flush();
    }
}

/// Splits `text` into ground facts; accepts both `f1, f2` and `f1. f2.`
/// (commas inside argument lists are kept, of course). Constants intern
/// into the session's own symbol table.
fn parse_ground_facts(text: &str, session: &mut Session) -> Result<Vec<GroundAtom>, String> {
    let mut pieces = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth = depth.saturating_sub(1),
            ',' | '.' if depth == 0 => {
                pieces.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&text[start..]);
    let mut facts = Vec::new();
    for piece in pieces {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let rb = hdl_core::parse_program(&format!("{piece}."), session.symbols_mut())
            .map_err(|e| e.to_string())?;
        let (rules, mut parsed) = split_facts(rb);
        if !rules.is_empty() || parsed.len() != 1 {
            return Err(format!("`{piece}` is not a ground fact"));
        }
        facts.push(parsed.pop().expect("checked length"));
    }
    if facts.is_empty() {
        return Err("expected one or more ground facts".to_owned());
    }
    Ok(facts)
}

/// Builds the request for one query line: `?- goal.` asks, and
/// `:answers PATTERN` enumerates all matching tuples.
fn request_for(line: &str, opts: &Opts) -> QueryRequest {
    let mut req = match line.strip_prefix(":answers") {
        Some(pattern) => QueryRequest::answers(pattern.trim()),
        None => QueryRequest::ask(line),
    }
    .with_engine(opts.engine);
    if let Some(d) = opts.deadline {
        req = req.with_deadline(d);
    }
    req
}

/// Whether this line is a query for the service (`?- …` ask or
/// `:answers PATTERN`).
fn is_query(line: &str) -> bool {
    line.starts_with("?-") || line.starts_with(":answers ")
}

/// Reads the concatenation of `files` (stdin when empty) as lines.
fn input_lines(files: &[String]) -> Result<Vec<String>, String> {
    if files.is_empty() {
        let mut text = String::new();
        io::stdin()
            .lock()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        return Ok(text.lines().map(str::to_owned).collect());
    }
    let mut lines = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        lines.extend(src.lines().map(str::to_owned));
    }
    Ok(lines)
}

fn is_skippable(line: &str) -> bool {
    line.is_empty() || line.starts_with('%') || line.starts_with("//")
}

/// `hdl batch [FILE ...]` — program lines load in order; every query
/// line is submitted to the worker pool against the snapshot current at
/// its position. Results print in input order; exit is non-zero if any
/// query (or program line) errored.
fn batch_main(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => return usage_error("batch", &msg),
    };
    let lines = match input_lines(&opts.files) {
        Ok(l) => l,
        Err(msg) => return usage_error("batch", &msg),
    };

    let mut session = match open_session(&opts) {
        Ok(s) => s,
        Err(msg) => return usage_error("batch", &msg),
    };
    let service = QueryService::with_config(session.snapshot(), opts.service_config());
    if let Some(r) = session.recovery_report() {
        if r.restored_anything() || r.records_truncated > 0 || r.checkpoints_skipped > 0 {
            service.set_recovery(r.checkpoint_epoch, r.records_replayed, r.records_truncated);
        }
    }
    let mut status = 0;
    let mut dirty = false;
    let mut tickets = Vec::new();
    for line in &lines {
        let line = line.trim();
        if is_skippable(line) {
            continue;
        }
        if is_query(line) {
            if dirty {
                service.publish(session.snapshot());
                dirty = false;
            }
            tickets.push(service.submit(request_for(line, &opts)));
        } else {
            match session.load(line) {
                Ok(()) => dirty = true,
                Err(e) => {
                    eprintln!("error: {e}");
                    status = 1;
                }
            }
        }
    }
    for ticket in tickets {
        let outcome = ticket.wait();
        if matches!(outcome, Outcome::Error(_)) {
            status = 1;
        }
        println!("{}", outcome.render_line());
    }
    eprintln!("--- batch summary ({} workers) ---", service.workers());
    eprintln!("{}", service.stats());
    service.shutdown();
    checkpoint_on_exit(&mut session);
    status
}

/// Compacts the log into a checkpoint when a durable invocation exits
/// cleanly (crashed processes recover from the WAL instead).
fn checkpoint_on_exit(session: &mut DurableSession) {
    if !session.is_durable() {
        return;
    }
    match session.checkpoint() {
        Ok(epoch) => eprintln!("checkpointed epoch {epoch} on shutdown"),
        Err(e) => eprintln!("warning: shutdown checkpoint failed: {e}"),
    }
}

/// `hdl serve` — two modes:
///
/// * `--listen ADDR`: the multi-tenant network server ([`serve_listen`]).
/// * `--stdin` (or bare, deprecated): loads the program files, then
///   answers query lines from stdin through the worker pool, one result
///   line each.
fn serve_main(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => return usage_error("serve", &msg),
    };
    if opts.listen.is_some() {
        if opts.stdin_mode {
            return usage_error("serve", "--listen and --stdin are mutually exclusive");
        }
        return serve_listen(&opts);
    }
    if !opts.stdin_mode {
        eprintln!(
            "warning: bare `hdl serve` is deprecated; use `hdl serve --stdin` for this \
             stdin queue-drain mode, or `hdl serve --listen ADDR` for the network server"
        );
    }
    serve_stdin(&opts)
}

/// The network server: binds `--listen ADDR` (port 0 allowed — the
/// actual address prints to stdout), multiplexes tenant sessions under
/// `--persist-root`, and drains gracefully on SIGTERM/SIGINT or a
/// client `shutdown` op, checkpointing every durable tenant.
fn serve_listen(opts: &Opts) -> i32 {
    if !opts.files.is_empty() {
        return usage_error(
            "serve",
            "--listen takes no program files (tenants load programs over the protocol)",
        );
    }
    let config = ServerConfig {
        listen: opts.listen.clone().expect("checked by caller"),
        persist_root: opts.persist_root.as_ref().map(PathBuf::from),
        fsync: opts.fsync,
        group_commit: opts.group_commit,
        max_connections: opts.max_connections,
        // Every tenant gets its own pool, so the per-tenant default is
        // deliberately small; --workers overrides it explicitly.
        workers_per_tenant: if opts.workers_set { opts.workers } else { 2 },
        quotas: TenantQuotas {
            max_base_facts: opts.tenant_max_facts,
            max_overlay_depth: opts.tenant_max_depth,
            queue_cap: opts.tenant_queue_cap.or(opts.queue_cap),
            max_in_flight: opts.tenant_in_flight.unwrap_or(64),
            query_max_facts: opts.max_facts,
        },
        default_engine: opts.engine,
        default_deadline: opts.deadline,
        replicate_to: opts.replicate_to.clone(),
        sync_replicas: opts.sync_replicas,
        follow: opts.follow.clone(),
    };
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hdl serve: cannot listen: {e}");
            return 1;
        }
    };
    // The resolved address goes to *stdout* so scripts binding port 0
    // can read the real port; narration stays on stderr.
    println!("listening on {}", server.addr());
    let _ = io::stdout().flush();
    eprintln!(
        "hdl server on {} — tenants under {}, group commit {}, fsync {:?}; \
         SIGTERM or a `shutdown` op drains",
        server.addr(),
        opts.persist_root.as_deref().unwrap_or("(ephemeral)"),
        if opts.group_commit { "on" } else { "off" },
        opts.fsync,
    );
    let term = hdl_server::install_termination_flag();
    server.run(Some(term));
    eprintln!("server drained");
    0
}

/// The client's connection to the server, with optional transparent
/// reconnection: when `--reconnect` is set and the link drops mid-step,
/// the client redials with capped exponential backoff (50 ms doubling to
/// 2 s, bounded attempts), re-opens the last-opened tenant, and replays
/// the unacked request. At most one request is ever in flight, so the
/// replay set is exactly that line; mutations in this protocol are
/// idempotent re-applied (a `load` whose ack was lost lands the same
/// facts), so an ack lost to the crash is safe to re-earn.
struct ClientLink {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Reconnect-and-replay on link loss (`--reconnect`).
    reconnect: bool,
    /// Tenant to re-open after a reconnect (tracks `:open`/`open` ops).
    tenant: Option<String>,
}

impl ClientLink {
    const BACKOFF_FLOOR_MS: u64 = 50;
    const BACKOFF_CAP_MS: u64 = 2000;
    const MAX_DIALS: u32 = 10;

    fn dial(addr: &str) -> io::Result<(BufReader<TcpStream>, TcpStream)> {
        let stream = TcpStream::connect(addr)?;
        Ok((BufReader::new(stream.try_clone()?), stream))
    }

    fn connect(addr: &str, reconnect: bool) -> io::Result<ClientLink> {
        let (reader, writer) = Self::dial(addr)?;
        Ok(ClientLink {
            addr: addr.to_owned(),
            reader,
            writer,
            reconnect,
            tenant: None,
        })
    }

    /// One send/receive attempt on the current socket; `None` when the
    /// link is gone.
    fn try_step(&mut self, line: &str) -> Option<String> {
        if writeln!(self.writer, "{line}").is_err() || self.writer.flush().is_err() {
            return None;
        }
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(reply.trim_end().to_owned()),
        }
    }

    /// Redials with capped exponential backoff and restores the session
    /// (re-opens the bound tenant). `false` when every attempt failed.
    fn redial(&mut self) -> bool {
        let mut backoff = Self::BACKOFF_FLOOR_MS;
        for attempt in 1..=Self::MAX_DIALS {
            std::thread::sleep(Duration::from_millis(backoff));
            backoff = (backoff * 2).min(Self::BACKOFF_CAP_MS);
            match Self::dial(&self.addr) {
                Err(_) => continue,
                Ok((reader, writer)) => {
                    self.reader = reader;
                    self.writer = writer;
                    if let Some(tenant) = self.tenant.clone() {
                        let open = Json::obj(vec![
                            ("op", Json::str("open")),
                            ("tenant", Json::str(&tenant)),
                        ]);
                        // The re-open rides inside the redial: its reply
                        // is session plumbing, not the user's answer.
                        match self.try_step(&open.to_string()) {
                            Some(reply) if reply_ok(&reply) => {}
                            _ => continue,
                        }
                    }
                    eprintln!(
                        "hdl connect: reconnected to {} (attempt {attempt})",
                        self.addr
                    );
                    return true;
                }
            }
        }
        false
    }

    /// Sends one request line and returns the reply line, reconnecting
    /// and replaying the line if the link drops and `--reconnect` is on.
    /// `None` = connection gone for good.
    fn step(&mut self, line: &str) -> Option<String> {
        loop {
            if let Some(reply) = self.try_step(line) {
                return Some(reply);
            }
            if !self.reconnect || !self.redial() {
                return None;
            }
            // Loop: replay the unacked line on the fresh connection.
        }
    }

    /// Remembers the tenant an `open` request binds, so a reconnect can
    /// restore it.
    fn note_open(&mut self, request: &str) {
        if let Ok(v) = Json::parse(request) {
            if v.get("op").and_then(Json::as_str) == Some("open") {
                if let Some(name) = v.get("tenant").and_then(Json::as_str) {
                    self.tenant = Some(name.to_owned());
                }
            }
        }
    }
}

/// Whether a reply line is `"ok":true`.
fn reply_ok(reply: &str) -> bool {
    Json::parse(reply)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        == Some(true)
}

/// `hdl connect ADDR [--tenant NAME] [--reconnect]` — a line client for
/// the network server: REPL-style input is translated to protocol
/// requests, raw JSON lines (starting with `{`) pass through verbatim,
/// and every reply prints as its JSON line.
fn connect_main(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => return usage_error("connect", &msg),
    };
    let Some(addr) = opts.files.first() else {
        return usage_error("connect", "expected a server address (host:port)");
    };
    let mut link = match ClientLink::connect(addr, opts.reconnect) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("hdl connect: cannot connect to {addr}: {e}");
            return 1;
        }
    };
    let mut status = 0;
    // Sends one request line, prints the reply, returns whether the
    // reply was `ok` (`None` = connection gone).
    let step = |link: &mut ClientLink, line: String| -> Option<bool> {
        link.note_open(&line);
        let reply = link.step(&line)?;
        println!("{reply}");
        let _ = io::stdout().flush();
        Some(reply_ok(&reply))
    };
    if let Some(tenant) = &opts.tenant {
        let open = Json::obj(vec![
            ("op", Json::str("open")),
            ("tenant", Json::str(tenant)),
        ]);
        match step(&mut link, open.to_string()) {
            None => {
                eprintln!("hdl connect: server closed the connection");
                return 1;
            }
            Some(ok) => {
                if !ok {
                    return 1;
                }
            }
        }
    }
    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if is_skippable(line) {
            continue;
        }
        if line == ":quit" || line == ":q" || line == ":exit" {
            let _ = step(&mut link, "{\"op\":\"close\"}".to_owned());
            break;
        }
        let request = match client_request(line) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("error: {msg}");
                status = 1;
                continue;
            }
        };
        match step(&mut link, request) {
            None => {
                eprintln!("hdl connect: server closed the connection");
                status = 1;
                break;
            }
            Some(ok) => {
                if !ok {
                    status = 1;
                }
            }
        }
    }
    status
}

/// Translates one client input line to a protocol request line.
fn client_request(line: &str) -> Result<String, String> {
    // Raw JSON passes through untouched (power users, scripts).
    if line.starts_with('{') {
        return Ok(line.to_owned());
    }
    let obj = |pairs: Vec<(&str, Json)>| Json::obj(pairs).to_string();
    if let Some(rest) = line.strip_prefix(":open") {
        let name = rest.trim();
        if name.is_empty() {
            return Err(":open takes a tenant name".into());
        }
        return Ok(obj(vec![
            ("op", Json::str("open")),
            ("tenant", Json::str(name)),
        ]));
    }
    if let Some(rest) = line.strip_prefix(":answers") {
        return Ok(obj(vec![
            ("op", Json::str("answers")),
            ("pattern", Json::str(rest.trim())),
        ]));
    }
    if let Some(rest) = line.strip_prefix(":assume") {
        return Ok(obj(vec![
            ("op", Json::str("assume")),
            ("facts", Json::str(rest.trim())),
        ]));
    }
    if let Some(rest) = line.strip_prefix(":retract") {
        return Ok(obj(vec![
            ("op", Json::str("retract")),
            ("fact", Json::str(rest.trim())),
        ]));
    }
    match line {
        ":pop" => return Ok(obj(vec![("op", Json::str("pop"))])),
        ":checkpoint" => return Ok(obj(vec![("op", Json::str("checkpoint"))])),
        ":stats" => return Ok(obj(vec![("op", Json::str("stats"))])),
        ":promote" => return Ok(obj(vec![("op", Json::str("promote"))])),
        ":shutdown" => return Ok(obj(vec![("op", Json::str("shutdown"))])),
        _ => {}
    }
    if line.starts_with(':') {
        return Err(format!(
            "unknown command {line} (:open NAME, :answers PATTERN, :assume FACTS, \
             :retract FACT, :pop, :checkpoint, :stats, :promote, :shutdown, :quit; \
             `{{…}}` raw JSON)"
        ));
    }
    if line.starts_with("?-") {
        return Ok(obj(vec![
            ("op", Json::str("query")),
            ("q", Json::str(line)),
        ]));
    }
    Ok(obj(vec![
        ("op", Json::str("load")),
        ("program", Json::str(line)),
    ]))
}

/// The stdin queue-drain mode: loads the program files, then answers
/// query lines from stdin through the worker pool, one result line each.
fn serve_stdin(opts: &Opts) -> i32 {
    let mut session = match open_session(opts) {
        Ok(s) => s,
        Err(msg) => return usage_error("serve", &msg),
    };
    for path in &opts.files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => return usage_error("serve", &format!("cannot read {path}: {e}")),
        };
        if let Err(e) = session.load(&src) {
            eprintln!("error loading {path}: {e}");
            return 1;
        }
        eprintln!("loaded {path}");
    }
    let service = QueryService::with_config(session.snapshot(), opts.service_config());
    if let Some(r) = session.recovery_report() {
        if r.restored_anything() || r.records_truncated > 0 || r.checkpoints_skipped > 0 {
            service.set_recovery(r.checkpoint_epoch, r.records_replayed, r.records_truncated);
        }
    }
    eprintln!(
        "serving on {} workers — queries on stdin, :answers PATTERN, :assume FACTS, \
         :retract FACT, :materialize, :checkpoint, :stats, :quit",
        service.workers()
    );
    let mut status = 0;
    let stdin = io::stdin();
    let mut out = io::stdout();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        };
        let line = line.trim();
        if is_skippable(line) {
            continue;
        }
        match line {
            ":quit" | ":q" | ":exit" => break,
            ":stats --json" => {
                let maintenance = session
                    .maintenance_stats()
                    .map(|m| m.to_json())
                    .unwrap_or_else(|| "null".into());
                println!(
                    "{{\"service\":{},\"maintenance\":{maintenance}}}",
                    service.stats().to_json()
                );
                let _ = out.flush();
            }
            ":stats" => {
                println!("{}", service.stats());
                if let Some(m) = session.maintenance_stats() {
                    print!("{}", render_maintenance(&m));
                }
            }
            ":materialize" => match session.model() {
                Ok(model) => {
                    println!("materialized {} facts", model.len());
                    let _ = out.flush();
                    service.publish(session.snapshot());
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    status = 1;
                }
            },
            ":checkpoint" => match session.checkpoint() {
                Ok(epoch) => {
                    println!("checkpoint {epoch}");
                    let _ = out.flush();
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    status = 1;
                }
            },
            // Budget trips (cancelled / deadline / memory / partial
            // rows) are reported on stdout but are not process errors.
            _ if is_query(line) => {
                let outcome = service.submit(request_for(line, opts)).wait();
                if matches!(outcome, Outcome::Error(_)) {
                    status = 1;
                }
                println!("{}", outcome.render_line());
                let _ = out.flush();
            }
            _ if line.starts_with(":assume") || line.starts_with(":retract") || line == ":pop" => {
                match serve_mutation(&mut session, line) {
                    Ok(()) => {
                        ack(&session);
                        service.publish(session.snapshot());
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        status = 1;
                    }
                }
            }
            _ if line.starts_with(':') => eprintln!(
                "unknown command {line} (:answers PATTERN, :assume FACTS, :retract FACT, \
                 :pop, :materialize, :checkpoint, :stats, :quit)"
            ),
            _ => match session.load(line) {
                Ok(()) => {
                    ack(&session);
                    service.publish(session.snapshot());
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    status = 1;
                }
            },
        }
    }
    service.shutdown();
    checkpoint_on_exit(&mut session);
    status
}

/// Applies one `:assume FACTS` / `:retract FACT` / `:pop` line.
fn serve_mutation(session: &mut DurableSession, line: &str) -> Result<(), String> {
    if let Some(rest) = line.strip_prefix(":assume") {
        let facts = parse_ground_facts(rest, session)?;
        return session.assume(facts).map_err(|e| e.to_string());
    }
    if let Some(rest) = line.strip_prefix(":retract") {
        let mut facts = parse_ground_facts(rest, session)?;
        if facts.len() != 1 {
            return Err("retract takes exactly one fact".to_owned());
        }
        let fact = facts.pop().expect("checked length");
        return match session.retract_fact(&fact) {
            Ok(true) => Ok(()),
            Ok(false) => Ok(()), // logged either way; replay agrees
            Err(e) => Err(e.to_string()),
        };
    }
    match session.pop_assumption() {
        Ok(Some(_)) => Ok(()),
        Ok(None) => Err("no assumption frame to pop".to_owned()),
        Err(e) => Err(e.to_string()),
    }
}

fn repl_main(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => return usage_error("", &msg),
    };
    let mut session = match open_session(&opts) {
        Ok(s) => s,
        Err(msg) => return usage_error("", &msg),
    };
    session.set_engine(opts.engine);
    session.set_deadline(opts.deadline);
    // In the REPL, --workers drives intra-round parallel rule firing of
    // the bottom-up engine (batch/serve give it to the service pool).
    session.set_parallelism(opts.workers);
    let mut status = 0;
    for path in &opts.files {
        match std::fs::read_to_string(path) {
            Ok(src) => match session.load(&src) {
                Ok(()) => eprintln!("loaded {path}"),
                Err(e) => {
                    eprintln!("error loading {path}: {e}");
                    status = 1;
                }
            },
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                status = 1;
            }
        }
    }
    if status != 0 {
        return status;
    }

    let stdin = io::stdin();
    let interactive = atty_guess();
    if interactive {
        println!("hypothetical Datalog shell — :help for commands");
    }
    let mut out = io::stdout();
    loop {
        if interactive {
            print!("hdl> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if is_skippable(line) {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            if !run_command(&mut session, rest) {
                break;
            }
            continue;
        }
        if line.starts_with("?-") {
            match session.ask(line) {
                Ok(v) => println!("{v}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    status = 1;
                }
            }
            continue;
        }
        match session.load(line) {
            Ok(()) => ack(&session),
            Err(e) => {
                eprintln!("error: {e}");
                status = 1;
            }
        }
    }
    checkpoint_on_exit(&mut session);
    // Interactive sessions exit clean; piped input propagates whether
    // any line errored mid-stream.
    if interactive {
        0
    } else {
        status
    }
}

/// Returns `false` to quit.
fn run_command(session: &mut DurableSession, rest: &str) -> bool {
    let (cmd, arg) = match rest.split_once(' ') {
        Some((c, a)) => (c, a.trim()),
        None => (rest, ""),
    };
    match cmd {
        "quit" | "q" | "exit" => return false,
        "help" | "h" => {
            println!(
                "  fact(a, b).                    assert a fact\n\
                 \x20 head :- body.                  add a rule\n\
                 \x20 ?- query.                      evaluate (hypotheticals: goal[add: f])\n\
                 \x20 :load FILE                     load a program file\n\
                 \x20 :save FILE                     write rules+facts to a file\n\
                 \x20 :rules | :facts                show the loaded program\n\
                 \x20 :answers PATTERN               all tuples matching e.g. tc(X, Y)\n\
                 \x20 :explain ?- QUERY.             proof tree for a provable query\n\
                 \x20 :strata                        linear stratification report\n\
                 \x20 :lint                          diagnostics for the loaded rules\n\
                 \x20 :assume FACTS                  push a hypothesis frame (f1, f2, ...)\n\
                 \x20 :pop                           pop the top hypothesis frame\n\
                 \x20 :retract FACT                  remove a base fact (incremental once materialized)\n\
                 \x20 :materialize                   build the model; later asserts/retracts maintain it\n\
                 \x20 :checkpoint                    compact the write-ahead log (--persist-dir)\n\
                 \x20 :stats [--json]                counters from the last query\n\
                 \x20 :quit"
            );
        }
        "load" => match std::fs::read_to_string(arg) {
            Ok(src) => match session.load(&src) {
                Ok(()) => {
                    ack(session);
                    println!("loaded {arg}");
                }
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => eprintln!("cannot read {arg}: {e}"),
        },
        "assume" => match parse_ground_facts(arg, session) {
            Ok(facts) => match session.assume(facts) {
                Ok(()) => {
                    ack(session);
                    println!("({} assumption frames)", session.assumptions().len());
                }
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => eprintln!("error: {e}"),
        },
        "pop" => match session.pop_assumption() {
            Ok(Some(frame)) => {
                ack(session);
                println!(
                    "popped {} facts ({} frames left)",
                    frame.len(),
                    session.assumptions().len()
                );
            }
            Ok(None) => println!("no assumption frame to pop"),
            Err(e) => eprintln!("error: {e}"),
        },
        "retract" => match parse_ground_facts(arg, session) {
            Ok(facts) if facts.len() == 1 => {
                let fact = &facts[0];
                match session.retract_fact(fact) {
                    Ok(removed) => {
                        ack(session);
                        println!("{}", if removed { "retracted" } else { "no such fact" });
                    }
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            Ok(_) => eprintln!("error: retract takes exactly one fact"),
            Err(e) => eprintln!("error: {e}"),
        },
        "checkpoint" => match session.checkpoint() {
            Ok(epoch) => println!("checkpoint {epoch}"),
            Err(e) => eprintln!("error: {e}"),
        },
        "rules" => print!("{}", session.show_rules()),
        "save" => match std::fs::write(arg, session.dump()) {
            Ok(()) => println!("saved {arg}"),
            Err(e) => eprintln!("cannot write {arg}: {e}"),
        },
        "facts" => print!(
            "{}",
            hdl_core::pretty::database(session.database(), session.symbols())
        ),
        "answers" => match session.answers(arg) {
            Ok(rows) => {
                for row in &rows {
                    println!("{}", row.join(", "));
                }
                println!("({} answers)", rows.len());
            }
            Err(e) => eprintln!("error: {e}"),
        },
        "explain" => match session.explain(arg) {
            Ok(Some(tree)) => print!("{tree}"),
            Ok(None) => println!("not provable (or a negated query)"),
            Err(e) => eprintln!("error: {e}"),
        },
        "lint" => {
            let lints = hdl_core::analysis::lint::lint(session.rulebase(), session.symbols());
            if lints.is_empty() {
                println!("no lints");
            }
            for l in &lints {
                println!(
                    "  {}",
                    hdl_core::analysis::lint::render_lint(l, session.symbols())
                );
            }
        }
        "strata" => match linear_stratification(session.rulebase()) {
            Ok(ls) => {
                println!("linearly stratified: {} strata", ls.num_strata());
                let mut parts: Vec<(String, usize, bool)> = ls
                    .part_of
                    .iter()
                    .map(|(&p, &part)| (session.symbols().name(p).to_owned(), part, ls.in_sigma(p)))
                    .collect();
                parts.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
                for (name, part, sigma) in parts {
                    let seg = if sigma { "Σ" } else { "Δ" };
                    println!(
                        "  {name:<24} partition {part:<3} ({seg}{})",
                        part.div_ceil(2)
                    );
                }
            }
            Err(e) => println!("not linearly stratified: {e}"),
        },
        "stats" => {
            if arg == "--json" {
                println!("{}", repl_stats_json(session));
            } else {
                match session.last_stats() {
                    Some(s) => print!("{}", render_stats(s)),
                    None => println!("no query evaluated yet"),
                }
                if let Some(m) = session.maintenance_stats() {
                    print!("{}", render_maintenance(&m));
                }
            }
        }
        "materialize" => match session.model() {
            Ok(model) => println!("materialized {} facts", model.len()),
            Err(e) => eprintln!("error: {e}"),
        },
        other => eprintln!("unknown command :{other} (try :help)"),
    }
    true
}

/// Renders the materialized-model maintenance counters: how mutations
/// were absorbed (delta continuation, delete-and-rederive, conservative
/// cone recompute, or forced full rebuilds).
fn render_maintenance(m: &hdl_core::MaintenanceStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  model: full_builds     {:>12}   domain_rebuilds {}",
        m.full_builds, m.domain_rebuilds
    );
    let _ = writeln!(
        out,
        "  model: incremental     {:>12}   (+{} asserts, -{} retracts, {} conservative)",
        m.incremental_assertions + m.incremental_retractions + m.conservative_updates,
        m.incremental_assertions,
        m.incremental_retractions,
        m.conservative_updates
    );
    let _ = writeln!(
        out,
        "  model: overdeleted     {:>12}   rederived {}",
        m.overdeleted_facts, m.rederived_facts
    );
    out
}

/// Renders the per-query counters, including the semi-naive fixpoint
/// instrumentation (DESIGN.md §3.11): per-round deltas, argument-index
/// probe/hit rates, and how many rounds fired rules on worker threads.
fn render_stats(s: &hdl_core::engine::EngineStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  goal_expansions        {:>12}   (premise-match attempts)",
        s.goal_expansions
    );
    let _ = writeln!(out, "  databases_created      {:>12}", s.databases_created);
    let _ = writeln!(out, "  memo_hits              {:>12}", s.memo_hits);
    let _ = writeln!(
        out,
        "  calls                  {:>12}   max_depth {}",
        s.calls, s.max_depth
    );
    let _ = writeln!(
        out,
        "  rounds                 {:>12}   parallel_rounds {} (skipped {})",
        s.rounds, s.parallel_rounds, s.parallel_skipped
    );
    if s.magic_rules > 0 || s.demand_facts > 0 {
        let _ = writeln!(
            out,
            "  magic_rules            {:>12}   demand_facts {}",
            s.magic_rules, s.demand_facts
        );
        let _ = writeln!(
            out,
            "  adorned_strata         {:>12}   unbound_fallbacks {}",
            s.adorned_strata, s.unbound_fallbacks
        );
    }
    let _ = writeln!(
        out,
        "  index_probes           {:>12}   index_hits {}",
        s.index_probes, s.index_hits
    );
    if !s.delta_facts_per_round.is_empty() {
        let shown: Vec<String> = s
            .delta_facts_per_round
            .iter()
            .take(16)
            .map(u64::to_string)
            .collect();
        let _ = writeln!(
            out,
            "  delta_facts_per_round  [{}{}]",
            shown.join(", "),
            if s.delta_facts_per_round.len() > 16 {
                ", ..."
            } else {
                ""
            }
        );
    }
    let _ = writeln!(
        out,
        "  overlay                nodes {}, delta_facts {}, materialized_facts {}",
        s.overlay.nodes, s.overlay.delta_facts, s.overlay.materialized_facts
    );
    out
}

/// One line of JSON with every counter the REPL session has: last-query
/// engine stats, model maintenance, recovery, and durability state.
/// Scripted clients parse this instead of the aligned human tables.
fn repl_stats_json(session: &DurableSession) -> String {
    let engine = session
        .last_stats()
        .map(|s| s.to_json())
        .unwrap_or_else(|| "null".into());
    let maintenance = session
        .maintenance_stats()
        .map(|m| m.to_json())
        .unwrap_or_else(|| "null".into());
    let recovery = session
        .recovery_report()
        .map(|r| r.to_json())
        .unwrap_or_else(|| "null".into());
    format!(
        "{{\"engine\":{engine},\"maintenance\":{maintenance},\"recovery\":{recovery},\
         \"durable\":{},\"epoch\":{}}}",
        session.is_durable(),
        session.epoch()
    )
}

/// Crude interactivity check without adding a dependency: honour an
/// explicit override, otherwise assume piped input is non-interactive
/// only when stdin read fails to be a terminal — which std cannot tell
/// us portably, so default to printing prompts unless HDL_NO_PROMPT=1.
fn atty_guess() -> bool {
    std::env::var_os("HDL_NO_PROMPT").is_none()
}
