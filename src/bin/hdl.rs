//! `hdl` — an interactive shell for hypothetical Datalog.
//!
//! ```console
//! $ cargo run --bin hdl [file.hdl ...]
//! hdl> take(tony, his101).
//! hdl> grad(S) :- take(S, his101), take(S, eng201).
//! hdl> ?- grad(tony)[add: take(tony, eng201)].
//! true
//! hdl> :explain ?- grad(tony)[add: take(tony, eng201)].
//! grad(tony)    [rule 0]
//!   ...
//! ```
//!
//! Lines ending in `.` are programs (rules/facts) or queries (`?- …`).
//! Commands: `:load FILE`, `:rules`, `:facts`, `:answers PATTERN`,
//! `:explain QUERY`, `:strata`, `:stats`, `:help`, `:quit`.

use hypothetical_datalog::prelude::*;
use std::io::{self, BufRead, Write};

fn main() {
    let mut session = Session::new();
    let mut status = 0;
    for path in std::env::args().skip(1) {
        match std::fs::read_to_string(&path) {
            Ok(src) => match session.load(&src) {
                Ok(()) => eprintln!("loaded {path}"),
                Err(e) => {
                    eprintln!("error loading {path}: {e}");
                    status = 1;
                }
            },
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                status = 1;
            }
        }
    }
    if status != 0 {
        std::process::exit(status);
    }

    let stdin = io::stdin();
    let interactive = atty_guess();
    if interactive {
        println!("hypothetical Datalog shell — :help for commands");
    }
    let mut out = io::stdout();
    loop {
        if interactive {
            print!("hdl> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with("//") {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            if !run_command(&mut session, rest) {
                break;
            }
            continue;
        }
        if line.starts_with("?-") {
            match session.ask(line) {
                Ok(v) => println!("{v}"),
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        if let Err(e) = session.load(line) {
            eprintln!("error: {e}");
        }
    }
}

/// Returns `false` to quit.
fn run_command(session: &mut Session, rest: &str) -> bool {
    let (cmd, arg) = match rest.split_once(' ') {
        Some((c, a)) => (c, a.trim()),
        None => (rest, ""),
    };
    match cmd {
        "quit" | "q" | "exit" => return false,
        "help" | "h" => {
            println!(
                "  fact(a, b).                    assert a fact\n\
                 \x20 head :- body.                  add a rule\n\
                 \x20 ?- query.                      evaluate (hypotheticals: goal[add: f])\n\
                 \x20 :load FILE                     load a program file\n\
                 \x20 :save FILE                     write rules+facts to a file\n\
                 \x20 :rules | :facts                show the loaded program\n\
                 \x20 :answers PATTERN               all tuples matching e.g. tc(X, Y)\n\
                 \x20 :explain ?- QUERY.             proof tree for a provable query\n\
                 \x20 :strata                        linear stratification report\n\
                 \x20 :lint                          diagnostics for the loaded rules\n\
                 \x20 :stats                         counters from the last query\n\
                 \x20 :quit"
            );
        }
        "load" => match std::fs::read_to_string(arg) {
            Ok(src) => match session.load(&src) {
                Ok(()) => println!("loaded {arg}"),
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => eprintln!("cannot read {arg}: {e}"),
        },
        "rules" => print!("{}", session.show_rules()),
        "save" => match std::fs::write(arg, session.dump()) {
            Ok(()) => println!("saved {arg}"),
            Err(e) => eprintln!("cannot write {arg}: {e}"),
        },
        "facts" => print!(
            "{}",
            hdl_core::pretty::database(session.database(), session.symbols())
        ),
        "answers" => match session.answers(arg) {
            Ok(rows) => {
                for row in &rows {
                    println!("{}", row.join(", "));
                }
                println!("({} answers)", rows.len());
            }
            Err(e) => eprintln!("error: {e}"),
        },
        "explain" => match session.explain(arg) {
            Ok(Some(tree)) => print!("{tree}"),
            Ok(None) => println!("not provable (or a negated query)"),
            Err(e) => eprintln!("error: {e}"),
        },
        "lint" => {
            let lints = hdl_core::analysis::lint::lint(session.rulebase(), session.symbols());
            if lints.is_empty() {
                println!("no lints");
            }
            for l in &lints {
                println!(
                    "  {}",
                    hdl_core::analysis::lint::render_lint(l, session.symbols())
                );
            }
        }
        "strata" => match linear_stratification(session.rulebase()) {
            Ok(ls) => {
                println!("linearly stratified: {} strata", ls.num_strata());
                let mut parts: Vec<(String, usize, bool)> = ls
                    .part_of
                    .iter()
                    .map(|(&p, &part)| (session.symbols().name(p).to_owned(), part, ls.in_sigma(p)))
                    .collect();
                parts.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
                for (name, part, sigma) in parts {
                    let seg = if sigma { "Σ" } else { "Δ" };
                    println!(
                        "  {name:<24} partition {part:<3} ({seg}{})",
                        part.div_ceil(2)
                    );
                }
            }
            Err(e) => println!("not linearly stratified: {e}"),
        },
        "stats" => match session.last_stats() {
            Some(s) => println!("{s:?}"),
            None => println!("no query evaluated yet"),
        },
        other => eprintln!("unknown command :{other} (try :help)"),
    }
    true
}

/// Crude interactivity check without adding a dependency: honour an
/// explicit override, otherwise assume piped input is non-interactive
/// only when stdin read fails to be a terminal — which std cannot tell
/// us portably, so default to printing prompts unless HDL_NO_PROMPT=1.
fn atty_guess() -> bool {
    std::env::var_os("HDL_NO_PROMPT").is_none()
}
