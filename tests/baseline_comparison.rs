//! E10: the plain-Datalog baseline vs the hypothetical engine.
//!
//! On queries both can express (transitive closure, same-generation) the
//! engines must return identical answers. On queries the paper proves
//! inexpressible in Datalog (parity, Hamiltonicity) we demonstrate the
//! hypothetical rulebase computing them — the expressiveness gap §2
//! references ("[3] shows a strong sense in which such rules cannot be
//! expressed in Datalog").

use hdl_base::{Atom, Database, GroundAtom, SymbolTable, Term, Var};
use hdl_datalog::{Literal, Rule};
use hypothetical_datalog::prelude::*;

fn chain_edb(syms: &mut SymbolTable, n: usize) -> Database {
    let e = syms.intern("e");
    let nodes: Vec<_> = (0..n).map(|i| syms.intern(&format!("v{i}"))).collect();
    let mut db = Database::new();
    for w in nodes.windows(2) {
        db.insert(GroundAtom::new(e, vec![w[0], w[1]]));
    }
    db
}

#[test]
fn transitive_closure_agrees_across_systems() {
    let mut syms = SymbolTable::new();
    // Datalog version.
    let tc = syms.intern("tc");
    let e = syms.intern("e");
    let v = |i: u32| Term::Var(Var(i));
    let dl_rules = vec![
        Rule::new(
            Atom::new(tc, vec![v(0), v(1)]),
            vec![Literal::Pos(Atom::new(e, vec![v(0), v(1)]))],
        ),
        Rule::new(
            Atom::new(tc, vec![v(0), v(2)]),
            vec![
                Literal::Pos(Atom::new(e, vec![v(0), v(1)])),
                Literal::Pos(Atom::new(tc, vec![v(1), v(2)])),
            ],
        ),
    ];
    let db = chain_edb(&mut syms, 7);
    let dl_answers = hdl_datalog::naive::query(&dl_rules, &db, tc).unwrap();
    let dl_semi = hdl_datalog::seminaive::query(&dl_rules, &db, tc).unwrap();
    assert_eq!(dl_answers, dl_semi);

    // Hypothetical-engine version of the same program.
    let hyp_rules = parse_program(
        "tc(X, Y) :- e(X, Y).
         tc(X, Z) :- e(X, Y), tc(Y, Z).",
        &mut syms,
    )
    .unwrap();
    let mut bu = BottomUpEngine::new(&hyp_rules, &db).unwrap();
    let pattern = Atom::new(tc, vec![v(0), v(1)]);
    let hyp_answers = bu.answers(&pattern).unwrap();
    assert_eq!(dl_answers, hyp_answers);
    assert_eq!(hyp_answers.len(), 21, "C(7,2) ordered reachable pairs");

    let mut td = TopDownEngine::new(&hyp_rules, &db).unwrap();
    assert_eq!(td.answers(&pattern).unwrap(), dl_answers);
}

#[test]
fn same_generation_agrees_across_systems() {
    let mut syms = SymbolTable::new();
    // sg(X,Y) :- flat(X,Y).   sg(X,Y) :- up(X,A), sg(A,B), down(B,Y).
    let src = "
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, A), sg(A, B), down(B, Y).
    ";
    let hyp_rules = parse_program(src, &mut syms).unwrap();
    let (up, down, flat, sg) = (
        syms.lookup("up").unwrap(),
        syms.lookup("down").unwrap(),
        syms.lookup("flat").unwrap(),
        syms.lookup("sg").unwrap(),
    );
    let v = |i: u32| Term::Var(Var(i));
    let dl_rules = vec![
        Rule::new(
            Atom::new(sg, vec![v(0), v(1)]),
            vec![Literal::Pos(Atom::new(flat, vec![v(0), v(1)]))],
        ),
        Rule::new(
            Atom::new(sg, vec![v(0), v(1)]),
            vec![
                Literal::Pos(Atom::new(up, vec![v(0), v(2)])),
                Literal::Pos(Atom::new(sg, vec![v(2), v(3)])),
                Literal::Pos(Atom::new(down, vec![v(3), v(1)])),
            ],
        ),
    ];
    // A small tree: leaves l1..l4 up to parents p1, p2, flat link p1-p2.
    let mut db = Database::new();
    let c = |syms: &mut SymbolTable, s: &str| syms.intern(s);
    let (l1, l2, l3, l4, p1, p2) = (
        c(&mut syms, "l1"),
        c(&mut syms, "l2"),
        c(&mut syms, "l3"),
        c(&mut syms, "l4"),
        c(&mut syms, "p1"),
        c(&mut syms, "p2"),
    );
    for (a, b) in [(l1, p1), (l2, p1), (l3, p2), (l4, p2)] {
        db.insert(GroundAtom::new(up, vec![a, b]));
        db.insert(GroundAtom::new(down, vec![b, a]));
    }
    db.insert(GroundAtom::new(flat, vec![p1, p2]));

    let dl = hdl_datalog::seminaive::query(&dl_rules, &db, sg).unwrap();
    let mut bu = BottomUpEngine::new(&hyp_rules, &db).unwrap();
    let hyp = bu.answers(&Atom::new(sg, vec![v(0), v(1)])).unwrap();
    assert_eq!(dl, hyp);
    // l1/l2 are same-generation with l3/l4 through the flat link.
    assert!(hyp.contains(&vec![l1, l3]));
    assert!(!hyp.contains(&vec![l1, l2]), "siblings share no flat link");
}

#[test]
fn parity_is_beyond_the_baseline_but_not_the_hypothetical_engine() {
    // There is no Datalog program for parity (it is not expressible in
    // fixpoint logic without order); the hypothetical rulebase of
    // Example 6 computes it. We demonstrate the positive side and pin
    // the hypothetical rulebase's verdicts across sizes.
    for n in 0..6 {
        let mut src = String::from(
            "even :- select(X), odd[add: b(X)].
             odd :- select(X), even[add: b(X)].
             even :- ~select(X).
             select(X) :- a(X), ~b(X).\n",
        );
        for i in 0..n {
            src.push_str(&format!("a(t{i}).\n"));
        }
        let mut syms = SymbolTable::new();
        let program = parse_program(&src, &mut syms).unwrap();
        let (rules, facts) = split_facts(program);
        let db: Database = facts.into_iter().collect();
        let mut eng = TopDownEngine::new(&rules, &db).unwrap();
        let q = parse_query("?- even.", &mut syms).unwrap();
        assert_eq!(eng.holds(&q).unwrap(), n % 2 == 0);
    }
}

#[test]
fn negation_complement_queries_agree() {
    // Complement of transitive closure under stratified negation, both
    // systems.
    let mut syms = SymbolTable::new();
    let src = "
        tc(X, Y) :- e(X, Y).
        tc(X, Z) :- e(X, Y), tc(Y, Z).
        unreach(X, Y) :- node(X), node(Y), ~tc(X, Y).
    ";
    let hyp_rules = parse_program(src, &mut syms).unwrap();
    let (e, node, tc, unreach) = (
        syms.lookup("e").unwrap(),
        syms.lookup("node").unwrap(),
        syms.lookup("tc").unwrap(),
        syms.lookup("unreach").unwrap(),
    );
    let v = |i: u32| Term::Var(Var(i));
    let dl_rules = vec![
        Rule::new(
            Atom::new(tc, vec![v(0), v(1)]),
            vec![Literal::Pos(Atom::new(e, vec![v(0), v(1)]))],
        ),
        Rule::new(
            Atom::new(tc, vec![v(0), v(2)]),
            vec![
                Literal::Pos(Atom::new(e, vec![v(0), v(1)])),
                Literal::Pos(Atom::new(tc, vec![v(1), v(2)])),
            ],
        ),
        Rule::new(
            Atom::new(unreach, vec![v(0), v(1)]),
            vec![
                Literal::Pos(Atom::new(node, vec![v(0)])),
                Literal::Pos(Atom::new(node, vec![v(1)])),
                Literal::Neg(Atom::new(tc, vec![v(0), v(1)])),
            ],
        ),
    ];
    let mut db = chain_edb(&mut syms, 4);
    for i in 0..4 {
        let n = syms.intern(&format!("v{i}"));
        db.insert(GroundAtom::new(node, vec![n]));
    }
    let dl = hdl_datalog::seminaive::query(&dl_rules, &db, unreach).unwrap();
    let mut bu = BottomUpEngine::new(&hyp_rules, &db).unwrap();
    let hyp = bu.answers(&Atom::new(unreach, vec![v(0), v(1)])).unwrap();
    assert_eq!(dl, hyp);
    assert_eq!(hyp.len(), 16 - 6, "16 pairs minus 6 reachable");
}
