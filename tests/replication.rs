//! Two-process crash/failover matrix for primary/follower replication.
//!
//! Each case runs a real `hdl serve --listen … --replicate-to` primary
//! and a real `hdl serve --listen … --follow` follower as separate
//! processes, arms one replication crash site with `HDL_CRASH_AT`
//! (`replicate::ship` aborts the primary before a window leaves;
//! `replicate::apply` aborts the follower with a received window
//! unwritten; `replicate::ack` aborts the follower after the fsync but
//! before the ack), drives pipelined mutations through the primary, and
//! then exercises one of the two recovery paths:
//!
//! - **restart**: bring the crashed process back on the same directory
//!   (and, for followers, the same address) and assert the pair
//!   converges — the follower answers the pinned query set
//!   byte-identically to the primary;
//! - **promote**: leave the primary dead, assert the follower serves a
//!   *prefix of the submission order* read-only (acked ⊆ follower-state
//!   ⊆ submitted, no holes, no invented facts), then `promote` it and
//!   assert it accepts writes without losing that prefix.
//!
//! Everything is black-box over the wire: the only observables are acks,
//! query answers, and process exits — exactly what an operator has.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const HDL: &str = env!("CARGO_BIN_EXE_hdl");

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "hdl-rep-{}-{}",
            std::process::id(),
            tag.replace(':', "_")
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A serve process plus its resolved listen address.
struct Proc {
    child: Child,
    addr: String,
}

impl Proc {
    /// Waits (bounded) for the process to exit; panics on timeout.
    fn wait_exit(&mut self, why: &str) -> bool {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.success();
            }
            assert!(Instant::now() < deadline, "timed out waiting for {why}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `hdl serve --listen` with the given role flags; reads the
/// resolved address off stdout.
fn spawn_serve(root: &Path, listen: &str, role: &[&str], crash_at: Option<&str>) -> Proc {
    let mut cmd = Command::new(HDL);
    cmd.args(["serve", "--listen", listen, "--fsync", "always"])
        .args(["--persist-root", root.to_str().unwrap()])
        .args(role)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match crash_at {
        Some(spec) => cmd.env("HDL_CRASH_AT", spec),
        None => cmd.env_remove("HDL_CRASH_AT"),
    };
    let mut child = cmd.spawn().expect("spawn hdl serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let line = BufReader::new(stdout)
        .lines()
        .next()
        .expect("server prints its address")
        .expect("read address line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("expected `listening on ADDR`, got: {line}"))
        .to_owned();
    Proc { child, addr }
}

fn spawn_primary(root: &Path, follower_addr: &str, crash_at: Option<&str>) -> Proc {
    spawn_serve(
        root,
        "127.0.0.1:0",
        &["--replicate-to", follower_addr],
        crash_at,
    )
}

fn spawn_follower(root: &Path, listen: &str, crash_at: Option<&str>) -> Proc {
    // The --follow value is the primary's address for operator-facing
    // messages; the data path is inbound (the primary dials us), so a
    // placeholder keeps the spawn order simple.
    spawn_serve(root, listen, &["--follow", "primary.invalid:0"], crash_at)
}

/// A line client that tolerates the server dying under it.
struct NetClient {
    reader: Option<BufReader<TcpStream>>,
    alive: bool,
    submitted: usize,
    acked: usize,
}

impl NetClient {
    fn open(addr: &str, tenant: &str) -> NetClient {
        let mut c = NetClient {
            reader: None,
            alive: false,
            submitted: 0,
            acked: 0,
        };
        let Ok(stream) = TcpStream::connect(addr) else {
            return c;
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        c.reader = Some(BufReader::new(stream));
        c.alive = true;
        let open = format!("{{\"op\":\"open\",\"tenant\":\"{tenant}\"}}\n");
        if !c.send_raw(&open) || !c.recv().is_some_and(|r| r.contains("\"ok\":true")) {
            c.alive = false;
        }
        c
    }

    fn send_raw(&mut self, data: &str) -> bool {
        match self.reader.as_mut() {
            Some(reader) => reader.get_mut().write_all(data.as_bytes()).is_ok(),
            None => false,
        }
    }

    fn recv(&mut self) -> Option<String> {
        let reader = self.reader.as_mut()?;
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(line),
        }
    }

    /// Sends one request line and returns the reply line.
    fn round_trip(&mut self, line: &str) -> Option<String> {
        if !self.send_raw(&format!("{line}\n")) {
            return None;
        }
        self.recv()
    }

    /// Pipelines a window of `load` ops for facts `f(x<from>..)`,
    /// counting submissions and acks until the socket dies.
    fn burst(&mut self, from: usize, len: usize) {
        let mut window = String::new();
        for i in from..from + len {
            window.push_str(&format!("{{\"op\":\"load\",\"program\":\"f(x{i}).\"}}\n"));
        }
        self.submitted += len;
        if !self.send_raw(&window) {
            self.alive = false;
            return;
        }
        for _ in 0..len {
            match self.recv() {
                Some(reply) if reply.contains("\"ok\":true") => self.acked += 1,
                _ => {
                    self.alive = false;
                    return;
                }
            }
        }
    }
}

/// Polls `f(x<i>)` on `addr` until it answers true (bounded); returns
/// whether it converged.
fn wait_until_true(addr: &str, tenant: &str, i: usize, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        let mut c = NetClient::open(addr, tenant);
        if c.alive {
            let q = format!("{{\"op\":\"query\",\"q\":\"f(x{i})\"}}");
            if c.round_trip(&q)
                .is_some_and(|r| r.contains("\"result\":\"true\""))
            {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// The presence vector of `f(x0)..f(x<n>)` on one server — the raw reply
/// lines, for byte-identical comparison — plus the booleans.
fn presence(addr: &str, tenant: &str, n: usize) -> (Vec<String>, Vec<bool>) {
    let mut c = NetClient::open(addr, tenant);
    assert!(c.alive, "cannot open {tenant} on {addr}");
    let mut lines = Vec::with_capacity(n);
    let mut present = Vec::with_capacity(n);
    for i in 0..n {
        let q = format!("{{\"op\":\"query\",\"q\":\"f(x{i})\"}}");
        let reply = c
            .round_trip(&q)
            .unwrap_or_else(|| panic!("query f(x{i}) on {addr} got no reply"));
        present.push(reply.contains("\"result\":\"true\""));
        lines.push(reply.trim_end().to_owned());
    }
    (lines, present)
}

/// Asserts `present` is a hole-free prefix and returns its length.
fn prefix_len(present: &[bool], context: &str) -> usize {
    let len = present.iter().take_while(|&&p| p).count();
    assert!(
        present[len..].iter().all(|&p| !p),
        "{context}: follower state has a hole — not a prefix of submission order: {present:?}"
    );
    len
}

const ROUNDS: usize = 6;
const WINDOW: usize = 8;

/// Drives bursts through the primary. With a `victim`, keeps bursting
/// past the scripted rounds until that process exits (so an armed crash
/// counting its nth hit always gets enough windows), bounded by a cap.
fn drive(addr: &str, mut victim: Option<&mut Proc>) -> NetClient {
    let mut c = NetClient::open(addr, "t");
    assert!(c.alive, "cannot open tenant on the primary");
    let mut round = 0;
    loop {
        let done = match victim.as_deref_mut() {
            Some(v) => v.child.try_wait().expect("try_wait").is_some(),
            None => round >= ROUNDS,
        };
        if done || !c.alive || round >= 200 {
            break;
        }
        c.burst(round * WINDOW, WINDOW);
        round += 1;
        // Give the async shipper a moment between bursts so crash hits
        // land across different windows, not all coalesced into one.
        std::thread::sleep(Duration::from_millis(30));
    }
    c
}

/// Kill the primary at `replicate::ship:<nth>` (it aborts before sending
/// a window), then either restart it or promote the follower.
fn run_ship_case(nth: u64, promote: bool) {
    let tag = format!("ship-{nth}-{}", if promote { "promote" } else { "restart" });
    let p_root = TempDir::new(&format!("{tag}-p"));
    let f_root = TempDir::new(&format!("{tag}-f"));
    let follower = spawn_follower(&f_root.0, "127.0.0.1:0", None);
    let mut primary = spawn_primary(
        &p_root.0,
        &follower.addr,
        Some(&format!("replicate::ship:{nth}")),
    );

    let p_addr = primary.addr.clone();
    let client = drive(&p_addr, Some(&mut primary));
    assert!(
        !primary.wait_exit("armed primary crash"),
        "{tag}: the armed ship crash never fired"
    );
    let submitted = client.submitted;
    let acked = client.acked;
    drop(client);
    assert!(submitted > 0, "{tag}: nothing was submitted");

    // The follower keeps serving reads through the outage; whatever it
    // has is a hole-free prefix of the submission order, and mutations
    // are refused with the structured read_only error.
    let (_, present) = presence(&follower.addr, "t", submitted);
    let before = prefix_len(&present, &tag);
    let mut c = NetClient::open(&follower.addr, "t");
    let denied = c
        .round_trip("{\"op\":\"load\",\"program\":\"f(rogue).\"}")
        .expect("read_only reply");
    assert!(
        denied.contains("\"kind\":\"read_only\""),
        "{tag}: follower accepted a mutation during the outage: {denied}"
    );
    let stats = c.round_trip("{\"op\":\"stats\"}").expect("stats reply");
    assert!(
        stats.contains("\"role\":\"follower\""),
        "{tag}: follower stats carry no role: {stats}"
    );
    drop(c);

    if promote {
        // Failover: promote the follower and write through it.
        let mut c = NetClient::open(&follower.addr, "t");
        let reply = c.round_trip("{\"op\":\"promote\"}").expect("promote reply");
        assert!(
            reply.contains("\"ok\":true"),
            "{tag}: promote failed: {reply}"
        );
        drop(c);
        let mut c = NetClient::open(&follower.addr, "t");
        let reply = c
            .round_trip("{\"op\":\"load\",\"program\":\"f(after_failover).\"}")
            .expect("post-promote load");
        assert!(
            reply.contains("\"ok\":true"),
            "{tag}: promoted follower refused a write: {reply}"
        );
        let q = c
            .round_trip("{\"op\":\"query\",\"q\":\"f(after_failover)\"}")
            .expect("post-promote query");
        assert!(q.contains("\"result\":\"true\""), "{tag}: {q}");
        // The pre-failover prefix survived promotion intact.
        let (_, present) = presence(&follower.addr, "t", submitted);
        let after = prefix_len(&present, &format!("{tag} post-promote"));
        assert!(
            after >= before,
            "{tag}: promotion lost replicated facts ({before} -> {after})"
        );
    } else {
        // Restart the primary on the same directory: acked mutations
        // recovered, shipping resumes, and the pair converges to
        // byte-identical answers.
        let mut primary = spawn_primary(&p_root.0, &follower.addr, None);
        let (p_lines, p_present) = presence(&primary.addr, "t", submitted);
        let recovered = prefix_len(&p_present, &format!("{tag} primary restart"));
        assert!(
            recovered >= acked,
            "{tag}: restart lost acked mutations ({acked} acked, {recovered} recovered)"
        );
        if recovered > 0 {
            assert!(
                wait_until_true(&follower.addr, "t", recovered - 1, 20),
                "{tag}: follower never caught up after primary restart"
            );
        }
        let (f_lines, _) = presence(&follower.addr, "t", submitted);
        assert_eq!(
            p_lines, f_lines,
            "{tag}: primary and follower answers diverge after catch-up"
        );
        shutdown(&mut primary);
    }
}

/// Kill the follower at a follower-side site (`replicate::apply:<nth>`
/// or `replicate::ack:<nth>`), restart it on the same address and
/// directory, and assert the pair converges byte-identically. When
/// `promote_after`, additionally kill the primary afterwards and promote
/// the recovered follower.
fn run_follower_crash_case(site: &str, nth: u64, promote_after: bool) {
    let tag = format!(
        "{site}-{nth}{}",
        if promote_after { "-promote" } else { "" }
    );
    let p_root = TempDir::new(&format!("{tag}-p"));
    let f_root = TempDir::new(&format!("{tag}-f"));
    let mut follower = spawn_follower(&f_root.0, "127.0.0.1:0", Some(&format!("{site}:{nth}")));
    let f_addr = follower.addr.clone();
    let mut primary = spawn_primary(&p_root.0, &f_addr, None);

    let client = drive(&primary.addr, Some(&mut follower));
    let submitted = client.submitted;
    let acked = client.acked;
    drop(client);
    assert_eq!(acked, submitted, "{tag}: the primary must ack everything");
    assert!(
        !follower.wait_exit("armed follower crash"),
        "{tag}: the armed follower crash never fired"
    );

    // Restart the follower on the same address; the primary's shipper
    // reconnects with backoff and renegotiates the resume position from
    // the follower's fsynced prefix.
    let follower = spawn_follower(&f_root.0, &f_addr, None);
    assert_eq!(follower.addr, f_addr, "{tag}: follower rebind moved ports");
    assert!(
        wait_until_true(&follower.addr, "t", submitted - 1, 30),
        "{tag}: follower never converged after restart"
    );
    let (p_lines, _) = presence(&primary.addr, "t", submitted);
    let (f_lines, f_present) = presence(&follower.addr, "t", submitted);
    assert_eq!(
        p_lines, f_lines,
        "{tag}: answers diverge after follower recovery"
    );
    assert_eq!(
        prefix_len(&f_present, &tag),
        submitted,
        "{tag}: full convergence expected once the primary is idle"
    );

    if promote_after {
        primary.kill();
        let mut c = NetClient::open(&follower.addr, "t");
        let reply = c.round_trip("{\"op\":\"promote\"}").expect("promote reply");
        assert!(
            reply.contains("\"ok\":true"),
            "{tag}: promote failed: {reply}"
        );
        drop(c);
        let mut c = NetClient::open(&follower.addr, "t");
        let reply = c
            .round_trip("{\"op\":\"load\",\"program\":\"f(after_failover).\"}")
            .expect("post-promote load");
        assert!(reply.contains("\"ok\":true"), "{tag}: {reply}");
        let (_, present) = presence(&follower.addr, "t", submitted);
        assert_eq!(
            prefix_len(&present, &format!("{tag} post-promote")),
            submitted,
            "{tag}: promotion lost converged facts"
        );
    } else {
        shutdown(&mut primary);
    }
}

/// Drains a server cleanly via the shutdown op.
fn shutdown(proc_: &mut Proc) {
    let mut c = NetClient::open(&proc_.addr, "t");
    let _ = c.round_trip("{\"op\":\"shutdown\"}");
    drop(c);
    assert!(proc_.wait_exit("graceful drain"), "drain exited non-zero");
}

#[test]
fn primary_crash_at_ship_follower_keeps_serving_then_promotes() {
    run_ship_case(1, true);
}

#[test]
fn primary_crash_at_ship_mid_stream_then_promotes() {
    run_ship_case(3, true);
}

#[test]
fn primary_crash_at_ship_then_restarts_and_converges() {
    run_ship_case(2, false);
}

#[test]
fn follower_crash_at_apply_restarts_and_converges() {
    run_follower_crash_case("replicate::apply", 1, false);
}

#[test]
fn follower_crash_at_apply_mid_stream_restarts_and_converges() {
    run_follower_crash_case("replicate::apply", 3, false);
}

#[test]
fn follower_crash_at_ack_restarts_and_converges() {
    run_follower_crash_case("replicate::ack", 2, false);
}

#[test]
fn follower_crash_at_ack_then_failover_promotes_cleanly() {
    run_follower_crash_case("replicate::ack", 1, true);
}

/// The no-crash control: a healthy pair converges, the follower reports
/// replication stats on both ends, and both drain cleanly.
#[test]
fn uncrashed_pair_converges_and_drains() {
    let p_root = TempDir::new("control-p");
    let f_root = TempDir::new("control-f");
    let follower = spawn_follower(&f_root.0, "127.0.0.1:0", None);
    let mut primary = spawn_primary(&p_root.0, &follower.addr, None);

    let client = drive(&primary.addr, None);
    let submitted = client.submitted;
    assert_eq!(client.acked, submitted);
    drop(client);

    assert!(
        wait_until_true(&follower.addr, "t", submitted - 1, 20),
        "control: follower never converged"
    );
    let (p_lines, _) = presence(&primary.addr, "t", submitted);
    let (f_lines, _) = presence(&follower.addr, "t", submitted);
    assert_eq!(p_lines, f_lines, "control: answers diverge");

    let mut c = NetClient::open(&primary.addr, "t");
    let stats = c.round_trip("{\"op\":\"stats\"}").expect("primary stats");
    assert!(
        stats.contains("\"role\":\"primary\"") && stats.contains("\"connected\":true"),
        "control: primary stats missing replication section: {stats}"
    );
    drop(c);
    shutdown(&mut primary);
}
