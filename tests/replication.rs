//! Crash/failover matrix for primary/follower replication.
//!
//! Each case runs a real `hdl serve --listen … --replicate-to` primary
//! and one or two real `hdl serve --listen … --follow` followers as
//! separate processes, arms one crash site with `HDL_CRASH_AT`
//! (`replicate::ship` aborts the primary before a window leaves;
//! `replicate::apply` aborts the follower with a received window
//! unwritten; `replicate::ack` aborts the follower after the fsync but
//! before the ack; `persist::wal_append`/`persist::wal_fsync` abort the
//! primary inside its local commit), drives pipelined mutations through
//! the primary, and then exercises one of the recovery paths:
//!
//! - **restart**: bring the crashed process back on the same directory
//!   (and, for followers, the same address) and assert the pair
//!   converges — the follower answers the pinned query set
//!   byte-identically to the primary;
//! - **promote**: leave the primary dead, assert the follower serves a
//!   *prefix of the submission order* read-only (acked ⊆ follower-state
//!   ⊆ submitted, no holes, no invented facts), then `promote` it and
//!   assert it accepts writes without losing that prefix.
//!
//! The three-process quorum matrix (`--sync-replicas 2`) tightens the
//! async contract: a sync-acked mutation must already be present on
//! EVERY quorum follower the instant the primary dies — no catch-up
//! grace. The fencing cases prove a restarted old primary latches
//! read-only once it contacts the promoted follower's higher epoch,
//! and stays fenced across its own restarts (persisted FENCE latch).
//!
//! Everything is black-box over the wire: the only observables are acks,
//! query answers, and process exits — exactly what an operator has.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const HDL: &str = env!("CARGO_BIN_EXE_hdl");

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "hdl-rep-{}-{}",
            std::process::id(),
            tag.replace(':', "_")
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A serve process plus its resolved listen address.
struct Proc {
    child: Child,
    addr: String,
}

impl Proc {
    /// Waits (bounded) for the process to exit; panics on timeout.
    fn wait_exit(&mut self, why: &str) -> bool {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.success();
            }
            assert!(Instant::now() < deadline, "timed out waiting for {why}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `hdl serve --listen` with the given role flags; reads the
/// resolved address off stdout.
fn spawn_serve(root: &Path, listen: &str, role: &[&str], crash_at: Option<&str>) -> Proc {
    let mut cmd = Command::new(HDL);
    cmd.args(["serve", "--listen", listen, "--fsync", "always"])
        .args(["--persist-root", root.to_str().unwrap()])
        .args(role)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match crash_at {
        Some(spec) => cmd.env("HDL_CRASH_AT", spec),
        None => cmd.env_remove("HDL_CRASH_AT"),
    };
    let mut child = cmd.spawn().expect("spawn hdl serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let line = BufReader::new(stdout)
        .lines()
        .next()
        .expect("server prints its address")
        .expect("read address line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("expected `listening on ADDR`, got: {line}"))
        .to_owned();
    Proc { child, addr }
}

fn spawn_primary(root: &Path, follower_addr: &str, crash_at: Option<&str>) -> Proc {
    spawn_serve(
        root,
        "127.0.0.1:0",
        &["--replicate-to", follower_addr],
        crash_at,
    )
}

fn spawn_follower(root: &Path, listen: &str, crash_at: Option<&str>) -> Proc {
    // The --follow value is the primary's address for operator-facing
    // messages; the data path is inbound (the primary dials us), so a
    // placeholder keeps the spawn order simple.
    spawn_serve(root, listen, &["--follow", "primary.invalid:0"], crash_at)
}

/// Spawns a primary shipping to every `targets` address with a
/// server-wide sync quorum of `sync` acks per mutation.
fn spawn_quorum_primary(
    root: &Path,
    targets: &[&str],
    sync: usize,
    crash_at: Option<&str>,
) -> Proc {
    let sync_s = sync.to_string();
    let mut role: Vec<&str> = Vec::new();
    for target in targets {
        role.push("--replicate-to");
        role.push(target);
    }
    role.push("--sync-replicas");
    role.push(&sync_s);
    spawn_serve(root, "127.0.0.1:0", &role, crash_at)
}

/// A line client that tolerates the server dying under it.
struct NetClient {
    reader: Option<BufReader<TcpStream>>,
    alive: bool,
    submitted: usize,
    acked: usize,
}

impl NetClient {
    fn open(addr: &str, tenant: &str) -> NetClient {
        let mut c = NetClient {
            reader: None,
            alive: false,
            submitted: 0,
            acked: 0,
        };
        let Ok(stream) = TcpStream::connect(addr) else {
            return c;
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        c.reader = Some(BufReader::new(stream));
        c.alive = true;
        let open = format!("{{\"op\":\"open\",\"tenant\":\"{tenant}\"}}\n");
        if !c.send_raw(&open) || !c.recv().is_some_and(|r| r.contains("\"ok\":true")) {
            c.alive = false;
        }
        c
    }

    fn send_raw(&mut self, data: &str) -> bool {
        match self.reader.as_mut() {
            Some(reader) => reader.get_mut().write_all(data.as_bytes()).is_ok(),
            None => false,
        }
    }

    fn recv(&mut self) -> Option<String> {
        let reader = self.reader.as_mut()?;
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(line),
        }
    }

    /// Sends one request line and returns the reply line.
    fn round_trip(&mut self, line: &str) -> Option<String> {
        if !self.send_raw(&format!("{line}\n")) {
            return None;
        }
        self.recv()
    }

    /// Pipelines a window of `load` ops for facts `f(x<from>..)`,
    /// counting submissions and acks until the socket dies.
    fn burst(&mut self, from: usize, len: usize) {
        let mut window = String::new();
        for i in from..from + len {
            window.push_str(&format!("{{\"op\":\"load\",\"program\":\"f(x{i}).\"}}\n"));
        }
        self.submitted += len;
        if !self.send_raw(&window) {
            self.alive = false;
            return;
        }
        for _ in 0..len {
            match self.recv() {
                Some(reply) if reply.contains("\"ok\":true") => self.acked += 1,
                _ => {
                    self.alive = false;
                    return;
                }
            }
        }
    }
}

/// Polls `f(x<i>)` on `addr` until it answers true (bounded); returns
/// whether it converged.
fn wait_until_true(addr: &str, tenant: &str, i: usize, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        let mut c = NetClient::open(addr, tenant);
        if c.alive {
            let q = format!("{{\"op\":\"query\",\"q\":\"f(x{i})\"}}");
            if c.round_trip(&q)
                .is_some_and(|r| r.contains("\"result\":\"true\""))
            {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// The presence vector of `f(x0)..f(x<n>)` on one server — the raw reply
/// lines, for byte-identical comparison — plus the booleans.
fn presence(addr: &str, tenant: &str, n: usize) -> (Vec<String>, Vec<bool>) {
    let mut c = NetClient::open(addr, tenant);
    assert!(c.alive, "cannot open {tenant} on {addr}");
    let mut lines = Vec::with_capacity(n);
    let mut present = Vec::with_capacity(n);
    for i in 0..n {
        let q = format!("{{\"op\":\"query\",\"q\":\"f(x{i})\"}}");
        let reply = c
            .round_trip(&q)
            .unwrap_or_else(|| panic!("query f(x{i}) on {addr} got no reply"));
        present.push(reply.contains("\"result\":\"true\""));
        lines.push(reply.trim_end().to_owned());
    }
    (lines, present)
}

/// Asserts `present` is a hole-free prefix and returns its length.
fn prefix_len(present: &[bool], context: &str) -> usize {
    let len = present.iter().take_while(|&&p| p).count();
    assert!(
        present[len..].iter().all(|&p| !p),
        "{context}: follower state has a hole — not a prefix of submission order: {present:?}"
    );
    len
}

const ROUNDS: usize = 6;
const WINDOW: usize = 8;

/// Drives bursts through the primary. With a `victim`, keeps bursting
/// past the scripted rounds until that process exits (so an armed crash
/// counting its nth hit always gets enough windows), bounded by a cap.
fn drive(addr: &str, mut victim: Option<&mut Proc>) -> NetClient {
    let mut c = NetClient::open(addr, "t");
    assert!(c.alive, "cannot open tenant on the primary");
    let mut round = 0;
    loop {
        let done = match victim.as_deref_mut() {
            Some(v) => v.child.try_wait().expect("try_wait").is_some(),
            None => round >= ROUNDS,
        };
        if done || !c.alive || round >= 200 {
            break;
        }
        c.burst(round * WINDOW, WINDOW);
        round += 1;
        // Give the async shipper a moment between bursts so crash hits
        // land across different windows, not all coalesced into one.
        std::thread::sleep(Duration::from_millis(30));
    }
    c
}

/// Kill the primary at `replicate::ship:<nth>` (it aborts before sending
/// a window), then either restart it or promote the follower.
fn run_ship_case(nth: u64, promote: bool) {
    let tag = format!("ship-{nth}-{}", if promote { "promote" } else { "restart" });
    let p_root = TempDir::new(&format!("{tag}-p"));
    let f_root = TempDir::new(&format!("{tag}-f"));
    let follower = spawn_follower(&f_root.0, "127.0.0.1:0", None);
    let mut primary = spawn_primary(
        &p_root.0,
        &follower.addr,
        Some(&format!("replicate::ship:{nth}")),
    );

    let p_addr = primary.addr.clone();
    let client = drive(&p_addr, Some(&mut primary));
    assert!(
        !primary.wait_exit("armed primary crash"),
        "{tag}: the armed ship crash never fired"
    );
    let submitted = client.submitted;
    let acked = client.acked;
    drop(client);
    assert!(submitted > 0, "{tag}: nothing was submitted");

    // The follower keeps serving reads through the outage; whatever it
    // has is a hole-free prefix of the submission order, and mutations
    // are refused with the structured read_only error.
    let (_, present) = presence(&follower.addr, "t", submitted);
    let before = prefix_len(&present, &tag);
    let mut c = NetClient::open(&follower.addr, "t");
    let denied = c
        .round_trip("{\"op\":\"load\",\"program\":\"f(rogue).\"}")
        .expect("read_only reply");
    assert!(
        denied.contains("\"kind\":\"read_only\""),
        "{tag}: follower accepted a mutation during the outage: {denied}"
    );
    let stats = c.round_trip("{\"op\":\"stats\"}").expect("stats reply");
    assert!(
        stats.contains("\"role\":\"follower\""),
        "{tag}: follower stats carry no role: {stats}"
    );
    drop(c);

    if promote {
        // Failover: promote the follower and write through it.
        let mut c = NetClient::open(&follower.addr, "t");
        let reply = c.round_trip("{\"op\":\"promote\"}").expect("promote reply");
        assert!(
            reply.contains("\"ok\":true"),
            "{tag}: promote failed: {reply}"
        );
        drop(c);
        let mut c = NetClient::open(&follower.addr, "t");
        let reply = c
            .round_trip("{\"op\":\"load\",\"program\":\"f(after_failover).\"}")
            .expect("post-promote load");
        assert!(
            reply.contains("\"ok\":true"),
            "{tag}: promoted follower refused a write: {reply}"
        );
        let q = c
            .round_trip("{\"op\":\"query\",\"q\":\"f(after_failover)\"}")
            .expect("post-promote query");
        assert!(q.contains("\"result\":\"true\""), "{tag}: {q}");
        // The pre-failover prefix survived promotion intact.
        let (_, present) = presence(&follower.addr, "t", submitted);
        let after = prefix_len(&present, &format!("{tag} post-promote"));
        assert!(
            after >= before,
            "{tag}: promotion lost replicated facts ({before} -> {after})"
        );
    } else {
        // Restart the primary on the same directory: acked mutations
        // recovered, shipping resumes, and the pair converges to
        // byte-identical answers.
        let mut primary = spawn_primary(&p_root.0, &follower.addr, None);
        let (p_lines, p_present) = presence(&primary.addr, "t", submitted);
        let recovered = prefix_len(&p_present, &format!("{tag} primary restart"));
        assert!(
            recovered >= acked,
            "{tag}: restart lost acked mutations ({acked} acked, {recovered} recovered)"
        );
        if recovered > 0 {
            assert!(
                wait_until_true(&follower.addr, "t", recovered - 1, 20),
                "{tag}: follower never caught up after primary restart"
            );
        }
        let (f_lines, _) = presence(&follower.addr, "t", submitted);
        assert_eq!(
            p_lines, f_lines,
            "{tag}: primary and follower answers diverge after catch-up"
        );
        shutdown(&mut primary);
    }
}

/// Kill the follower at a follower-side site (`replicate::apply:<nth>`
/// or `replicate::ack:<nth>`), restart it on the same address and
/// directory, and assert the pair converges byte-identically. When
/// `promote_after`, additionally kill the primary afterwards and promote
/// the recovered follower.
fn run_follower_crash_case(site: &str, nth: u64, promote_after: bool) {
    let tag = format!(
        "{site}-{nth}{}",
        if promote_after { "-promote" } else { "" }
    );
    let p_root = TempDir::new(&format!("{tag}-p"));
    let f_root = TempDir::new(&format!("{tag}-f"));
    let mut follower = spawn_follower(&f_root.0, "127.0.0.1:0", Some(&format!("{site}:{nth}")));
    let f_addr = follower.addr.clone();
    let mut primary = spawn_primary(&p_root.0, &f_addr, None);

    let client = drive(&primary.addr, Some(&mut follower));
    let submitted = client.submitted;
    let acked = client.acked;
    drop(client);
    assert_eq!(acked, submitted, "{tag}: the primary must ack everything");
    assert!(
        !follower.wait_exit("armed follower crash"),
        "{tag}: the armed follower crash never fired"
    );

    // Restart the follower on the same address; the primary's shipper
    // reconnects with backoff and renegotiates the resume position from
    // the follower's fsynced prefix.
    let follower = spawn_follower(&f_root.0, &f_addr, None);
    assert_eq!(follower.addr, f_addr, "{tag}: follower rebind moved ports");
    assert!(
        wait_until_true(&follower.addr, "t", submitted - 1, 30),
        "{tag}: follower never converged after restart"
    );
    let (p_lines, _) = presence(&primary.addr, "t", submitted);
    let (f_lines, f_present) = presence(&follower.addr, "t", submitted);
    assert_eq!(
        p_lines, f_lines,
        "{tag}: answers diverge after follower recovery"
    );
    assert_eq!(
        prefix_len(&f_present, &tag),
        submitted,
        "{tag}: full convergence expected once the primary is idle"
    );

    if promote_after {
        primary.kill();
        let mut c = NetClient::open(&follower.addr, "t");
        let reply = c.round_trip("{\"op\":\"promote\"}").expect("promote reply");
        assert!(
            reply.contains("\"ok\":true"),
            "{tag}: promote failed: {reply}"
        );
        drop(c);
        let mut c = NetClient::open(&follower.addr, "t");
        let reply = c
            .round_trip("{\"op\":\"load\",\"program\":\"f(after_failover).\"}")
            .expect("post-promote load");
        assert!(reply.contains("\"ok\":true"), "{tag}: {reply}");
        let (_, present) = presence(&follower.addr, "t", submitted);
        assert_eq!(
            prefix_len(&present, &format!("{tag} post-promote")),
            submitted,
            "{tag}: promotion lost converged facts"
        );
    } else {
        shutdown(&mut primary);
    }
}

/// Drains a server cleanly via the shutdown op.
fn shutdown(proc_: &mut Proc) {
    let mut c = NetClient::open(&proc_.addr, "t");
    let _ = c.round_trip("{\"op\":\"shutdown\"}");
    drop(c);
    assert!(proc_.wait_exit("graceful drain"), "drain exited non-zero");
}

#[test]
fn primary_crash_at_ship_follower_keeps_serving_then_promotes() {
    run_ship_case(1, true);
}

#[test]
fn primary_crash_at_ship_mid_stream_then_promotes() {
    run_ship_case(3, true);
}

#[test]
fn primary_crash_at_ship_then_restarts_and_converges() {
    run_ship_case(2, false);
}

#[test]
fn follower_crash_at_apply_restarts_and_converges() {
    run_follower_crash_case("replicate::apply", 1, false);
}

#[test]
fn follower_crash_at_apply_mid_stream_restarts_and_converges() {
    run_follower_crash_case("replicate::apply", 3, false);
}

#[test]
fn follower_crash_at_ack_restarts_and_converges() {
    run_follower_crash_case("replicate::ack", 2, false);
}

#[test]
fn follower_crash_at_ack_then_failover_promotes_cleanly() {
    run_follower_crash_case("replicate::ack", 1, true);
}

// ---------------------------------------------------------------------
// Three-process quorum matrix: primary → two sync followers
// (`--sync-replicas 2`), killed at a primary-side crash site. The async
// cases above allow the follower to lag the acks; a sync ack was only
// sent after BOTH followers acknowledged the covering position, so the
// moment the primary dies every client-acked mutation must already be
// present on every follower — no catch-up grace, no waiting.
// ---------------------------------------------------------------------

/// One cell of the quorum matrix, folded into the CI artifact.
struct QuorumCell {
    site: &'static str,
    nth: u64,
    submitted: usize,
    acked: usize,
    prefixes: [usize; 2],
}

/// Primary-side crash sites: the shipper about to send a window
/// (`replicate::ship` counts per target, so odd hits leave the two
/// followers asymmetric), and the local WAL append/fsync inside the
/// very commit the client is waiting on.
const QUORUM_MATRIX: &[(&str, u64)] = &[
    ("replicate::ship", 1),
    ("replicate::ship", 3),
    ("persist::wal_append", 5),
    ("persist::wal_fsync", 3),
];

fn run_quorum_case(site: &'static str, nth: u64) -> QuorumCell {
    let tag = format!("quorum-{site}-{nth}");
    let p_root = TempDir::new(&format!("{tag}-p"));
    let f1_root = TempDir::new(&format!("{tag}-f1"));
    let f2_root = TempDir::new(&format!("{tag}-f2"));
    let f1 = spawn_follower(&f1_root.0, "127.0.0.1:0", None);
    let f2 = spawn_follower(&f2_root.0, "127.0.0.1:0", None);
    let mut primary = spawn_quorum_primary(
        &p_root.0,
        &[&f1.addr, &f2.addr],
        2,
        Some(&format!("{site}:{nth}")),
    );

    let p_addr = primary.addr.clone();
    let client = drive(&p_addr, Some(&mut primary));
    assert!(
        !primary.wait_exit("armed quorum crash"),
        "{tag}: the armed crash never fired"
    );
    let (submitted, acked) = (client.submitted, client.acked);
    drop(client);
    assert!(submitted > 0, "{tag}: nothing was submitted");

    let mut prefixes = [0usize; 2];
    for (slot, (name, f)) in [("f1", &f1), ("f2", &f2)].into_iter().enumerate() {
        let (_, present) = presence(&f.addr, "t", submitted);
        let got = prefix_len(&present, &format!("{tag} {name}"));
        assert!(
            got >= acked,
            "{tag}: {name} is missing sync-acked mutations ({acked} acked, {got} present)"
        );
        prefixes[slot] = got;
    }
    QuorumCell {
        site,
        nth,
        submitted,
        acked,
        prefixes,
    }
}

/// The full quorum matrix, run sequentially so the cells fold into one
/// CI artifact (`target/replication-matrix.json`), mirroring the
/// crash-recovery report.
#[test]
fn quorum_matrix_sync_acked_on_every_follower() {
    let mut cells = Vec::new();
    for &(site, nth) in QUORUM_MATRIX {
        cells.push(run_quorum_case(site, nth));
    }
    // Coverage sanity: a matrix where every cell crashed before a
    // single sync ack would prove nothing about the ack contract.
    assert!(
        cells.iter().any(|c| c.acked > 0),
        "quorum matrix: no cell got a sync ack before its crash"
    );
    let mut json = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"site\": \"{}\", \"nth\": {}, \"submitted\": {}, \"acked\": {}, \
             \"follower_prefixes\": [{}, {}]}}{}\n",
            c.site,
            c.nth,
            c.submitted,
            c.acked,
            c.prefixes[0],
            c.prefixes[1],
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/replication-matrix.json");
    std::fs::write(&path, json).unwrap();
}

/// A sync tenant whose quorum can never be met (the lone target never
/// answers) gets the bounded-degradation contract: after the
/// replication-wait deadline the mutation is answered with
/// `kind:"degraded_ack"` carrying the replicated/required counts —
/// applied and locally durable, but under-replicated — instead of
/// hanging the client or rolling anything back.
#[test]
fn sync_ack_degrades_when_quorum_is_unreachable() {
    let root = TempDir::new("degraded");
    // Port 1 on loopback: connection refused instantly, redialed with
    // backoff — the quorum stays permanently out of reach.
    let primary = spawn_quorum_primary(&root.0, &["127.0.0.1:1"], 1, None);
    let mut c = NetClient::open(&primary.addr, "t");
    assert!(c.alive, "cannot open tenant on the sync primary");
    let start = Instant::now();
    let reply = c
        .round_trip("{\"op\":\"load\",\"program\":\"f(x0).\"}")
        .expect("degraded reply");
    assert!(
        reply.contains("\"kind\":\"degraded_ack\"")
            && reply.contains("\"replicated\":0")
            && reply.contains("\"required\":1"),
        "expected a structured degraded ack: {reply}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(15),
        "degraded ack was not bounded: {:?}",
        start.elapsed()
    );
    // Degraded, not rolled back: the mutation applied locally.
    let q = c
        .round_trip("{\"op\":\"query\",\"q\":\"f(x0)\"}")
        .expect("query after degraded ack");
    assert!(
        q.contains("\"result\":\"true\""),
        "degraded mutation vanished: {q}"
    );
}

/// After a failover, the restarted old primary must fence itself with
/// no operator help: its shipper contacts the promoted follower,
/// observes the higher fencing epoch, latches read-only (mutations
/// refused with `kind:"fenced"`, reads still served), and the latch
/// survives its own restarts through the persisted FENCE file.
#[test]
fn fenced_old_primary_refuses_writes_after_promote() {
    let p_root = TempDir::new("fence-p");
    let f1_root = TempDir::new("fence-f1");
    let f2_root = TempDir::new("fence-f2");
    let f1 = spawn_follower(&f1_root.0, "127.0.0.1:0", None);
    let f2 = spawn_follower(&f2_root.0, "127.0.0.1:0", None);
    let mut primary = spawn_quorum_primary(&p_root.0, &[&f1.addr, &f2.addr], 2, None);

    // Per-tenant sync override over the wire: re-open with a lower
    // quorum (echoed back), then with one exceeding the target set
    // (refused), then restore the full quorum.
    let mut c = NetClient::open(&primary.addr, "t");
    let reply = c
        .round_trip("{\"op\":\"open\",\"tenant\":\"t\",\"sync\":1}")
        .expect("open with sync override");
    assert!(
        reply.contains("\"ok\":true") && reply.contains("\"sync\":1"),
        "sync override not accepted/echoed: {reply}"
    );
    let reply = c
        .round_trip("{\"op\":\"open\",\"tenant\":\"t\",\"sync\":3}")
        .expect("open with oversized quorum");
    assert!(
        !reply.contains("\"ok\":true"),
        "a quorum larger than the target set must be refused: {reply}"
    );
    let reply = c
        .round_trip("{\"op\":\"open\",\"tenant\":\"t\",\"sync\":2}")
        .expect("restore sync quorum");
    assert!(
        reply.contains("\"sync\":2"),
        "sync restore not echoed: {reply}"
    );
    drop(c);

    let client = drive(&primary.addr, None);
    let (submitted, acked) = (client.submitted, client.acked);
    drop(client);
    assert!(acked > 0, "fence: nothing was sync-acked while healthy");
    primary.kill();

    // Promote one follower; its fencing epoch moves past the dead
    // primary's and the reply reports it.
    let mut c = NetClient::open(&f1.addr, "t");
    let reply = c.round_trip("{\"op\":\"promote\"}").expect("promote reply");
    assert!(
        reply.contains("\"ok\":true") && reply.contains("\"fence_epoch\""),
        "promote must bump and report the fencing epoch: {reply}"
    );
    drop(c);

    // Restart the old primary on its old directory, still shipping to
    // both targets. It boots writable (the documented race window) but
    // must latch as soon as its shipper exchanges one frame with the
    // promoted node — poll mutations until they come back refused.
    let mut restarted = spawn_quorum_primary(&p_root.0, &[&f1.addr, &f2.addr], 2, None);
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut fenced = false;
    let mut i = 0;
    while Instant::now() < deadline && !fenced {
        let mut c = NetClient::open(&restarted.addr, "t");
        let probe = format!("{{\"op\":\"load\",\"program\":\"rogue(r{i}).\"}}");
        if let Some(reply) = c.round_trip(&probe) {
            fenced = reply.contains("\"kind\":\"fenced\"");
        }
        i += 1;
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(fenced, "restarted old primary never latched fenced");

    // Fenced is not dead: reads still serve, stats show the latch, and
    // every further mutation op is refused.
    let mut c = NetClient::open(&restarted.addr, "t");
    let q = c
        .round_trip("{\"op\":\"query\",\"q\":\"f(x0)\"}")
        .expect("fenced read");
    assert!(
        q.contains("\"result\":\"true\""),
        "fenced primary lost reads: {q}"
    );
    let denied = c
        .round_trip("{\"op\":\"assume\",\"facts\":\"g(a)\"}")
        .expect("fenced assume");
    assert!(
        denied.contains("\"kind\":\"fenced\""),
        "assume escaped the fence: {denied}"
    );
    let stats = c.round_trip("{\"op\":\"stats\"}").expect("fenced stats");
    assert!(
        stats.contains("\"fenced\":true"),
        "stats hide the fence latch: {stats}"
    );
    drop(c);

    // The latch is persisted: a second restart boots fenced and refuses
    // the very first mutation with no peer contact needed.
    restarted.kill();
    let rebooted = spawn_quorum_primary(&p_root.0, &[&f1.addr, &f2.addr], 2, None);
    let mut c = NetClient::open(&rebooted.addr, "t");
    let denied = c
        .round_trip("{\"op\":\"load\",\"program\":\"rogue(boot).\"}")
        .expect("boot-fenced load");
    assert!(
        denied.contains("\"kind\":\"fenced\""),
        "fence latch did not survive a restart: {denied}"
    );
    drop(c);

    // Meanwhile the promoted follower owns writes and kept the prefix.
    let mut c = NetClient::open(&f1.addr, "t");
    let reply = c
        .round_trip("{\"op\":\"load\",\"program\":\"f(after_failover).\"}")
        .expect("promoted write");
    assert!(
        reply.contains("\"ok\":true"),
        "promoted follower refused a write: {reply}"
    );
    drop(c);
    let (_, present) = presence(&f1.addr, "t", submitted);
    assert!(
        prefix_len(&present, "fence promoted") >= acked,
        "failover lost sync-acked facts"
    );
}

/// `hdl connect --reconnect` across a failover: the link client holds a
/// session on the follower, promotes it over that same connection,
/// loses the promoted server to a `kill -9`, and must transparently
/// redial the restarted server, re-open its tenant, and replay the one
/// unacked line. The replay contract is at-least-once: a `load` whose
/// ack was lost lands the same facts when replayed (set semantics), so
/// no double-apply is observable — asserted on the final state.
#[test]
fn reconnect_client_replays_across_promote() {
    let p_root = TempDir::new("reconnect-p");
    let f_root = TempDir::new("reconnect-f");
    let mut follower = spawn_follower(&f_root.0, "127.0.0.1:0", None);
    let f_addr = follower.addr.clone();
    let mut primary = spawn_primary(&p_root.0, &f_addr, None);

    // Seed facts through the primary; wait for the follower to hold
    // them before the link client binds.
    let mut seed = NetClient::open(&primary.addr, "t");
    assert!(seed.alive, "cannot open tenant on the primary");
    seed.burst(0, 4);
    assert_eq!(seed.acked, 4, "seed burst not fully acked");
    drop(seed);
    assert!(
        wait_until_true(&f_addr, "t", 3, 20),
        "follower never converged on the seed"
    );

    let mut link = Command::new(HDL)
        .args(["connect", &f_addr, "--tenant", "t", "--reconnect"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hdl connect");
    let mut input = link.stdin.take().expect("piped stdin");
    let mut output = BufReader::new(link.stdout.take().expect("piped stdout")).lines();
    // The --tenant flag sends an open before any input; its reply is
    // the first stdout line.
    let open_reply = output
        .next()
        .expect("open reply line")
        .expect("read open reply");
    assert!(
        open_reply.contains("\"ok\":true"),
        "hdl connect open failed: {open_reply}"
    );
    let mut reply_of = |line: &str| -> String {
        writeln!(input, "{line}").expect("write to hdl connect");
        input.flush().expect("flush hdl connect stdin");
        output.next().expect("reply line").expect("read reply")
    };

    // Reads work against the follower binding.
    let reply = reply_of("?- f(x3).");
    assert!(
        reply.contains("\"result\":\"true\""),
        "follower read failed: {reply}"
    );

    // Failover: kill the primary, promote over this same connection,
    // and write through it.
    primary.kill();
    let reply = reply_of(":promote");
    assert!(reply.contains("\"ok\":true"), "promote failed: {reply}");
    let reply = reply_of("f(x4).");
    assert!(
        reply.contains("\"ok\":true"),
        "promoted server refused a write over the held connection: {reply}"
    );

    // Kill the promoted server and bring it straight back on the same
    // address and directory (a plain primary now). The next request
    // finds a dead socket, redials, re-opens the tenant, and replays
    // the unacked line against the restarted server.
    follower.kill();
    let mut restarted = spawn_serve(&f_root.0, &f_addr, &[], None);
    assert_eq!(restarted.addr, f_addr, "restart moved ports");
    let reply = reply_of("f(x5).");
    assert!(
        reply.contains("\"ok\":true"),
        "replayed line after reconnect was not acked: {reply}"
    );

    // At-least-once is observably exactly-once for loads: the replayed
    // fact is present, the pre-failover state survived, and nothing
    // extra was invented.
    for (q, want) in [
        ("?- f(x5).", true),
        ("?- f(x4).", true),
        ("?- f(x3).", true),
        ("?- f(rogue).", false),
    ] {
        let reply = reply_of(q);
        let expect = if want {
            "\"result\":\"true\""
        } else {
            "\"result\":\"false\""
        };
        assert!(reply.contains(expect), "{q}: unexpected reply {reply}");
    }
    let _ = reply_of(":quit");
    drop(input);
    let status = link.wait().expect("hdl connect exit");
    assert!(status.success(), "hdl connect exited non-zero: {status}");
    shutdown(&mut restarted);
}

/// The no-crash control: a healthy pair converges, the follower reports
/// replication stats on both ends, and both drain cleanly.
#[test]
fn uncrashed_pair_converges_and_drains() {
    let p_root = TempDir::new("control-p");
    let f_root = TempDir::new("control-f");
    let follower = spawn_follower(&f_root.0, "127.0.0.1:0", None);
    let mut primary = spawn_primary(&p_root.0, &follower.addr, None);

    let client = drive(&primary.addr, None);
    let submitted = client.submitted;
    assert_eq!(client.acked, submitted);
    drop(client);

    assert!(
        wait_until_true(&follower.addr, "t", submitted - 1, 20),
        "control: follower never converged"
    );
    let (p_lines, _) = presence(&primary.addr, "t", submitted);
    let (f_lines, _) = presence(&follower.addr, "t", submitted);
    assert_eq!(p_lines, f_lines, "control: answers diverge");

    let mut c = NetClient::open(&primary.addr, "t");
    let stats = c.round_trip("{\"op\":\"stats\"}").expect("primary stats");
    assert!(
        stats.contains("\"role\":\"primary\"") && stats.contains("\"connected\":true"),
        "control: primary stats missing replication section: {stats}"
    );
    drop(c);
    shutdown(&mut primary);
}
