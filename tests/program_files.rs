//! The shipped `.hdl` program files load and answer their documented
//! queries (the same files the `hdl` REPL advertises).

use hypothetical_datalog::prelude::*;

fn load(name: &str) -> Session {
    let path = format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let mut s = Session::new();
    s.load(&src).expect("program file loads");
    s
}

#[test]
fn university_program() {
    let mut s = load("university.hdl");
    assert!(s.ask("?- grad(alice).").unwrap());
    assert!(!s.ask("?- grad(tony).").unwrap());
    assert!(s.ask("?- grad(tony)[add: take(tony, eng201)].").unwrap());
    assert!(s.ask("?- grad(tony)[add: take(tony, C)].").unwrap());
    let proof = s.explain("?- grad(alice).").unwrap().expect("provable");
    assert!(proof.contains("grad(alice)"));
}

#[test]
fn parity_program() {
    let mut s = load("parity.hdl");
    // The file ships 4 tuples.
    assert!(s.ask("?- even.").unwrap());
    assert!(!s.ask("?- odd.").unwrap());
    // One more tuple flips it.
    s.load("a(t4).").unwrap();
    assert!(!s.ask("?- even.").unwrap());
    assert!(s.ask("?- odd.").unwrap());
}

#[test]
fn hamiltonian_program() {
    let mut s = load("hamiltonian.hdl");
    // The shipped 4-cycle has a Hamiltonian path.
    assert!(s.ask("?- yes.").unwrap());
    assert!(!s.ask("?- no.").unwrap());
    let ls = linear_stratification(s.rulebase()).unwrap();
    assert_eq!(ls.num_strata(), 2, "the `no` rule adds a stratum");
}

#[test]
fn nationality_program() {
    let mut s = load("nationality.hdl");
    assert!(!s.ask("?- eligible(george).").unwrap(), "george is dead");
    assert!(
        s.ask("?- eligible(harold).").unwrap(),
        "his father would be eligible were he alive"
    );
    assert!(s.ask("?- eligible(william).").unwrap());
    let proof = s
        .explain("?- eligible(harold).")
        .unwrap()
        .expect("provable");
    assert!(proof.contains("[add: alive(george)]"), "{proof}");
}

#[test]
fn contracts_program() {
    let mut s = load("contracts.hdl");
    assert!(s.ask("?- actionable(acme_deal).").unwrap());
    assert!(
        !s.ask("?- actionable(beta_deal).").unwrap(),
        "no disputed writing to admit"
    );
    assert!(s.ask("?- advise_settlement(acme_deal).").unwrap());
    assert!(
        !s.ask("?- breach(acme_deal).").unwrap(),
        "not without the writing"
    );
    let proof = s.explain("?- actionable(acme_deal).").unwrap().unwrap();
    assert!(proof.contains("[add: in_evidence(acme_deal, late_penalty_clause)]"));
}

#[test]
fn resilience_program() {
    // The del: showcase: critical-link analysis by hypothetical
    // deletion, composed with negation and add:.
    let mut s = load("resilience.hdl");
    assert!(s.ask("?- reach(ctrl, h3)[del: link(sw1, sw2)].").unwrap());
    assert!(
        !s.ask("?- reach(ctrl, h2)[del: link(sw1, sw2)].").unwrap(),
        "h2 hangs off sw2 alone"
    );
    assert!(s.ask("?- critical(sw1, sw2).").unwrap());
    assert!(
        !s.ask("?- critical(sw1, sw3).").unwrap(),
        "sw2 routes around"
    );
    assert!(s.ask("?- fragile.").unwrap());
    assert!(s.ask("?- safe(h3).").unwrap());
    assert!(!s.ask("?- safe(h2).").unwrap());
    // A redundant link makes h2 safe; a masked fact re-added deeper in
    // the overlay chain is visible again (del-then-add identity).
    assert!(s.ask("?- safe(h2)[add: link(sw3, sw2)].").unwrap());
    assert!(s
        .ask("?- reach(ctrl, h2)[del: link(sw1, sw2), add: link(sw1, sw2)].")
        .unwrap());
    // The file round-trips through the pretty-printer: the dump (rules
    // plus facts) reloads into a fresh session that answers the same.
    let printed = s.dump();
    assert!(printed.contains("[del: link(X1, X2)]"), "{printed}");
    let mut s2 = Session::new();
    s2.load(&printed).expect("pretty output reloads");
    assert!(s2.ask("?- critical(sw1, sw2).").unwrap());
    assert!(!s2.ask("?- safe(h2).").unwrap());
    assert!(s2.ask("?- safe(h2)[add: link(sw3, sw2)].").unwrap());
}

#[test]
fn malformed_programs_fail_with_structured_errors() {
    // Every file under examples/programs/bad/ is invalid at some stage:
    // lexing, parsing, arity checking, or stratification. Loading (or,
    // for late-stage failures, querying) must produce a structured
    // error with a non-empty message — never a panic, never silent
    // acceptance of the whole corpus entry.
    let dir = format!("{}/examples/programs/bad", env!("CARGO_MANIFEST_DIR"));
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "hdl"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 8,
        "corpus went missing: only {} files in {dir}",
        entries.len()
    );
    for path in entries {
        let src = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let mut s = Session::new();
        let err = match s.load(&src) {
            Err(e) => e,
            // Late-stage failures (e.g. unstratified negation) load
            // fine and must surface when an engine is built.
            Ok(()) => s
                .ask("?- bad_corpus_probe.")
                .expect_err(&format!("{name}: loaded AND answered cleanly")),
        };
        assert!(
            !err.to_string().trim().is_empty(),
            "{name}: empty error message"
        );
    }
}

#[test]
fn service_batch_file_answers_in_order() {
    // The same file CI pipes through `hdl batch`, replayed through the
    // service API: program lines publish snapshots, query lines run on
    // the pool against the snapshot current at their position.
    let path = format!(
        "{}/examples/programs/service_batch.hdl",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(&path).unwrap();
    let mut session = Session::new();
    let service = QueryService::new(session.snapshot(), 2);
    let mut dirty = false;
    let mut tickets = Vec::new();
    for line in src.lines().map(str::trim) {
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        if line.starts_with("?-") {
            if dirty {
                service.publish(session.snapshot());
                dirty = false;
            }
            tickets.push(service.submit(QueryRequest::ask(line)));
        } else {
            session.load(line).expect("program line loads");
            dirty = true;
        }
    }
    let outcomes: Vec<Outcome> = tickets.into_iter().map(Ticket::wait).collect();
    assert_eq!(
        outcomes,
        vec![
            Outcome::True,  // grad(alice)
            Outcome::False, // grad(tony) before the mid-stream load
            Outcome::True,  // hypothetical add
            Outcome::True,  // repeated goal
            Outcome::True,  // grad(tony) after the mid-stream load
        ]
    );
    assert_eq!(service.stats().snapshots_published, 2);
    // Replaying a finished query is answered from the shared cache.
    let replay = service.submit(QueryRequest::ask("?- grad(tony)."));
    assert_eq!(replay.wait(), Outcome::True);
    assert!(service.stats().cache_hits >= 1, "{:?}", service.stats());
}
