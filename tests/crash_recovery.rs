//! Kill-at-failpoint crash matrix for the durable query service.
//!
//! For every crash site in the persistence layer, this harness runs the
//! real `hdl serve` binary against a persist dir, feeds it a pinned
//! mutation script with `HDL_CRASH_AT=<site>:<n>` armed so the process
//! aborts mid-syscall-sequence (torn WAL record, unfsynced tail,
//! partial or unrenamed checkpoint), then restarts it and checks that
//! the recovered process answers a pinned query set **byte-identically**
//! to an uncrashed twin that applied exactly the acked mutation prefix.
//!
//! The durability contract being enforced:
//!
//! - every mutation acked (`ok` / `checkpoint <e>` on stdout) before the
//!   crash is present after recovery — no silent loss;
//! - nothing *past* the crashed mutation appears — no invention;
//! - the crashed mutation itself may legally surface only at the
//!   `wal_fsync` site (the record was complete in the page cache when
//!   the process died; a process crash is not a power cut);
//! - recovery never panics, and `:stats` reports what it restored.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const HDL: &str = env!("CARGO_BIN_EXE_hdl");

/// One ack line per entry: program lines and `:assume`/`:retract`/`:pop`
/// print `ok`; `:checkpoint` prints `checkpoint <epoch>`. Interleaves
/// every mutation kind with two checkpoints so both WAL-replay and
/// snapshot-restore paths carry real weight.
const SCRIPT: &[&str] = &[
    "edge(a, b).",
    "tc(X, Y) :- edge(X, Y).",
    "tc(X, Z) :- edge(X, Y), tc(Y, Z).",
    "edge(b, c).",
    ":assume edge(c, d)",
    ":checkpoint",
    "edge(c, a).",
    ":retract edge(a, b)",
    ":assume edge(d, e)",
    ":pop",
    ":checkpoint",
    "edge(a, d).",
];

/// The pinned query set recovered processes are compared on. Boolean
/// asks only: the output is fully deterministic, one line each.
const QUERIES: &[&str] = &[
    "?- edge(a, b).",
    "?- edge(c, a).",
    "?- edge(c, d).",
    "?- edge(d, e).",
    "?- tc(a, b).",
    "?- tc(a, c).",
    "?- tc(a, d).",
    "?- tc(b, a).",
    "?- tc(c, d).",
    "?- tc(c, a).",
];

/// (site, hit indices to crash at). The indices are chosen to land the
/// abort inside different mutations — early, mid-script around the
/// first checkpoint, and in the shutdown checkpoint — but the harness
/// derives the durable prefix from the acks, so the exact mapping need
/// not be pinned here.
const MATRIX: &[(&str, &[u64])] = &[
    ("persist::wal_append", &[1, 2, 5, 9, 14]),
    ("persist::wal_fsync", &[1, 3, 6, 10]),
    ("persist::checkpoint_write", &[1, 2, 3]),
    ("persist::checkpoint_rename", &[1, 2, 3]),
];

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "hdl-crash-{}-{}",
            std::process::id(),
            tag.replace(':', "_")
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Run {
    stdout: String,
    stderr: String,
    success: bool,
}

/// Runs `hdl serve` feeding `input` on stdin; `crash_at` arms the
/// abort, `persist` selects the directory (None = ephemeral twin).
fn serve(persist: Option<&Path>, crash_at: Option<&str>, input: &str) -> Run {
    let mut cmd = Command::new(HDL);
    cmd.arg("serve").args(["--stdin", "--workers", "2"]);
    if let Some(dir) = persist {
        cmd.args(["--persist-dir", dir.to_str().unwrap()]);
        cmd.args(["--fsync", "always"]);
    }
    match crash_at {
        Some(spec) => cmd.env("HDL_CRASH_AT", spec),
        None => cmd.env_remove("HDL_CRASH_AT"),
    };
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hdl serve");
    // The child may abort mid-script; a broken pipe here is expected.
    let _ = child.stdin.take().unwrap().write_all(input.as_bytes());
    let out = child.wait_with_output().expect("collect child output");
    Run {
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        success: out.status.success(),
    }
}

fn assert_no_panic(run: &Run, context: &str) {
    for needle in ["panicked at", "RUST_BACKTRACE", "stack overflow"] {
        assert!(
            !run.stderr.contains(needle) && !run.stdout.contains(needle),
            "{context}: panic leaked\n--- stdout\n{}\n--- stderr\n{}",
            run.stdout,
            run.stderr
        );
    }
}

fn is_ack(line: &str) -> bool {
    line == "ok" || line.starts_with("checkpoint ")
}

/// Answer lines of an uncrashed twin that applies `prefix` (checkpoint
/// entries dropped — they are not state) and then runs the query set.
fn twin_answers(prefix: &[&str]) -> Vec<String> {
    let mut input = String::new();
    for entry in prefix {
        if *entry == ":checkpoint" {
            continue;
        }
        input.push_str(entry);
        input.push('\n');
    }
    for q in QUERIES {
        input.push_str(q);
        input.push('\n');
    }
    input.push_str(":quit\n");
    let run = serve(None, None, &input);
    assert_no_panic(&run, "twin");
    assert!(run.success, "twin failed:\n{}", run.stderr);
    let answers: Vec<String> = run.stdout.lines().map(str::to_owned).collect();
    assert_eq!(answers.len(), QUERIES.len(), "twin output:\n{}", run.stdout);
    answers
}

struct CaseReport {
    site: String,
    nth: u64,
    acked: usize,
    crashed: bool,
    matched: &'static str,
}

fn run_case(site: &str, nth: u64) -> CaseReport {
    let tag = format!("{site}-{nth}");
    let dir = TempDir::new(&tag);

    // Phase 1: run the script into the persist dir until the armed
    // abort fires (or, for shutdown-checkpoint hits, until after EOF).
    let mut input: String = SCRIPT.join("\n");
    input.push_str("\n:quit\n");
    let crashed = serve(Some(&dir.0), Some(&format!("{site}:{nth}")), &input);
    assert_no_panic(&crashed, &tag);
    assert!(
        !crashed.success,
        "{tag}: the armed crash never fired (script too short for this hit index?)"
    );
    let acked = crashed.stdout.lines().filter(|l| is_ack(l)).count();
    assert!(
        acked <= SCRIPT.len(),
        "{tag}: more acks than script entries"
    );

    // Phase 2: restart on the same dir and collect the pinned answers.
    let mut query_input = String::new();
    for q in QUERIES {
        query_input.push_str(q);
        query_input.push('\n');
    }
    query_input.push_str(":stats\n:quit\n");
    let recovered = serve(Some(&dir.0), None, &query_input);
    assert_no_panic(&recovered, &format!("{tag} recovery"));
    assert!(
        recovered.success,
        "{tag}: recovery exited non-zero\n{}",
        recovered.stderr
    );
    let lines: Vec<&str> = recovered.stdout.lines().collect();
    assert!(
        lines.len() > QUERIES.len(),
        "{tag}: missing answers or stats\n{}",
        recovered.stdout
    );
    let answers: Vec<String> = lines[..QUERIES.len()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let stats = lines[QUERIES.len()..].join("\n");
    assert!(
        stats.contains("recovery "),
        "{tag}: :stats shows no recovery report\n{stats}"
    );

    // Phase 3: the recovered answers must be byte-identical to a twin
    // that applied exactly the acked prefix. The in-flight mutation may
    // additionally have survived only at the wal_fsync site (complete
    // record in the page cache; never acked, but never corrupt either).
    let expected = twin_answers(&SCRIPT[..acked]);
    let matched = if answers == expected {
        "acked-prefix"
    } else {
        let in_flight = SCRIPT.get(acked).copied();
        let fsync_overshoot = site == "persist::wal_fsync"
            && in_flight.is_some_and(|entry| entry != ":checkpoint")
            && answers == twin_answers(&SCRIPT[..acked + 1]);
        assert!(
            fsync_overshoot,
            "{tag}: recovered answers diverge from the {acked}-mutation twin\n\
             recovered: {answers:?}\nexpected:  {expected:?}\n\
             crashed stdout:\n{}",
            crashed.stdout
        );
        "acked-prefix+1"
    };

    CaseReport {
        site: site.to_string(),
        nth,
        acked,
        crashed: !crashed.success,
        matched,
    }
}

#[test]
fn crash_matrix_recovers_byte_identically() {
    let mut reports = Vec::new();
    for (site, hits) in MATRIX {
        for &nth in *hits {
            reports.push(run_case(site, nth));
        }
    }

    // Sanity on matrix coverage: both a zero-ack early crash and a
    // late crash past the second checkpoint must have occurred.
    assert!(reports.iter().any(|r| r.acked == 0));
    assert!(reports.iter().any(|r| r.acked == SCRIPT.len()));
    assert!(reports.iter().all(|r| r.crashed));

    // Persist the matrix outcome for the CI artifact.
    let mut json = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"site\": \"{}\", \"nth\": {}, \"acked\": {}, \"crashed\": {}, \"matched\": \"{}\"}}{}\n",
            r.site,
            r.nth,
            r.acked,
            r.crashed,
            r.matched,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let report_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("target/crash-recovery-report.json");
    std::fs::write(&report_path, json).unwrap();
}

// ---------------------------------------------------------------------
// Group-commit crash tests: kill the *network* server mid-batch.
//
// The stdin matrix above exercises per-mutation durability. The tests
// below arm the same failpoints against `hdl serve --listen` with group
// commit on, so the abort fires inside the shared committer thread while
// a whole window of staged records — possibly spanning tenants — is
// being appended or fsynced. The contract per tenant:
//
//   acked ⊆ recovered ⊆ submitted, and recovered is a *prefix* of the
//   submission order — no holes, no invented facts.
//
// Unacked overshoot is legal at both sites (complete records can survive
// in the page cache; a process crash is not a power cut); losing an
// acked mutation or recovering out of order is not.
// ---------------------------------------------------------------------

/// Spawns `hdl serve --listen 127.0.0.1:0` on `root` and returns the
/// child plus the resolved address from its stdout.
fn spawn_listen(root: &Path, crash_at: Option<&str>) -> (Child, String) {
    let mut cmd = Command::new(HDL);
    cmd.args(["serve", "--listen", "127.0.0.1:0", "--fsync", "always"])
        .args(["--persist-root", root.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match crash_at {
        Some(spec) => cmd.env("HDL_CRASH_AT", spec),
        None => cmd.env_remove("HDL_CRASH_AT"),
    };
    let mut child = cmd.spawn().expect("spawn hdl serve --listen");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("server prints its address")
        .expect("read address line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("expected `listening on ADDR`, got: {line}"))
        .to_owned();
    (child, addr)
}

/// A tenant connection that tolerates the server dying under it — or
/// being dead already by the time it connects.
struct NetClient {
    reader: Option<BufReader<TcpStream>>,
    alive: bool,
    submitted: usize,
    acked: usize,
}

impl NetClient {
    fn open(addr: &str, tenant: &str) -> NetClient {
        let mut c = NetClient {
            reader: None,
            alive: false,
            submitted: 0,
            acked: 0,
        };
        let Ok(stream) = TcpStream::connect(addr) else {
            return c;
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        c.reader = Some(BufReader::new(stream));
        c.alive = true;
        let open = format!("{{\"op\":\"open\",\"tenant\":\"{tenant}\"}}\n");
        if !c.send_raw(&open) || !c.recv().is_some_and(|r| r.contains("\"ok\":true")) {
            c.alive = false;
        }
        c
    }

    fn send_raw(&mut self, data: &str) -> bool {
        match self.reader.as_mut() {
            Some(reader) => reader.get_mut().write_all(data.as_bytes()).is_ok(),
            None => false,
        }
    }

    fn recv(&mut self) -> Option<String> {
        let reader = self.reader.as_mut()?;
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(line),
        }
    }

    /// Pipelines one window of `load` mutations for facts
    /// `f(<tenant><from>..)` and counts acks until the socket dies.
    /// Every written line counts as submitted whether or not it arrived
    /// — submitted is an upper bound by construction.
    fn burst(&mut self, tenant: &str, from: usize, len: usize) {
        let mut window = String::new();
        for i in from..from + len {
            window.push_str(&format!(
                "{{\"op\":\"load\",\"program\":\"f({tenant}x{i}).\"}}\n"
            ));
        }
        self.submitted += len;
        if !self.send_raw(&window) {
            self.alive = false;
            return;
        }
        for _ in 0..len {
            match self.recv() {
                Some(reply) if reply.contains("\"ok\":true") => self.acked += 1,
                _ => {
                    self.alive = false;
                    return;
                }
            }
        }
    }
}

fn run_group_commit_case(site: &str, nth: u64) {
    let tag = format!("net-{site}-{nth}");
    let dir = TempDir::new(&tag);
    let tenants = ["ta", "tb"];

    // Phase 1: two tenants pipeline load windows into a group-commit
    // server armed to abort mid-batch in the committer thread.
    let (mut child, addr) = spawn_listen(&dir.0, Some(&format!("{site}:{nth}")));
    let mut clients: Vec<NetClient> = tenants.iter().map(|t| NetClient::open(&addr, t)).collect();
    const WINDOW: usize = 8;
    for round in 0..40 {
        let mut any = false;
        for (c, t) in clients.iter_mut().zip(tenants) {
            if c.alive {
                any = true;
                c.burst(t, round * WINDOW, WINDOW);
            }
        }
        if !any {
            break;
        }
    }
    let counts: Vec<(usize, usize)> = clients.iter().map(|c| (c.submitted, c.acked)).collect();
    drop(clients);
    let status = child.wait().expect("wait for crashed server");
    assert!(
        !status.success(),
        "{tag}: the armed crash never fired under sustained load"
    );

    // Phase 2: restart clean and check each tenant's recovered facts.
    let (mut child, addr) = spawn_listen(&dir.0, None);
    for (t, &(submitted, acked)) in tenants.iter().zip(&counts) {
        let mut c = NetClient::open(&addr, t);
        assert!(c.alive, "{tag}: {t} failed to reopen after recovery");
        let mut present = Vec::with_capacity(submitted);
        for i in 0..submitted {
            let q = format!("{{\"op\":\"query\",\"q\":\"f({t}x{i})\"}}\n");
            assert!(c.send_raw(&q), "{tag}: {t} query {i} write failed");
            let reply = c
                .recv()
                .unwrap_or_else(|| panic!("{tag}: {t} query {i} got no reply"));
            present.push(reply.contains("\"result\":\"true\""));
        }
        let recovered = present.iter().take_while(|&&p| p).count();
        assert!(
            present[recovered..].iter().all(|&p| !p),
            "{tag}: {t} recovered with a hole — not a prefix of submission order: {present:?}"
        );
        assert!(
            recovered >= acked,
            "{tag}: {t} lost acked mutations — acked {acked}, recovered {recovered}"
        );
        assert!(
            recovered <= submitted,
            "{tag}: {t} invented facts — submitted {submitted}, recovered {recovered}"
        );
    }

    // Drain the recovery server cleanly.
    let mut c = NetClient::open(&addr, "ta");
    let _ = c.send_raw("{\"op\":\"shutdown\"}\n");
    let _ = c.recv();
    drop(c);
    let status = child.wait().expect("wait for recovery server");
    assert!(status.success(), "{tag}: recovery server failed to drain");
}

/// Kill the group-commit server mid-append: the committer thread aborts
/// while writing a staged window's records into tenant WALs.
#[test]
fn group_commit_crash_mid_append_preserves_acked_prefix() {
    for nth in [3, 11, 29] {
        run_group_commit_case("persist::wal_append", nth);
    }
}

/// Kill the group-commit server mid-fsync: whole windows were appended
/// but the shared durability pass dies before (or between) syncs.
#[test]
fn group_commit_crash_mid_fsync_preserves_acked_prefix() {
    for nth in [1, 4, 9] {
        run_group_commit_case("persist::wal_fsync", nth);
    }
}

/// A clean shutdown after the full script leaves a state that a plain
/// restart reproduces exactly — the no-crash control for the matrix.
#[test]
fn uncrashed_control_roundtrips() {
    let dir = TempDir::new("control");
    let mut input: String = SCRIPT.join("\n");
    input.push_str("\n:quit\n");
    let first = serve(Some(&dir.0), None, &input);
    assert_no_panic(&first, "control");
    assert!(first.success, "control run failed:\n{}", first.stderr);
    let acked = first.stdout.lines().filter(|l| is_ack(l)).count();
    assert_eq!(acked, SCRIPT.len(), "control: every entry must ack");

    let mut query_input = String::new();
    for q in QUERIES {
        query_input.push_str(q);
        query_input.push('\n');
    }
    query_input.push_str(":quit\n");
    let restarted = serve(Some(&dir.0), None, &query_input);
    assert_no_panic(&restarted, "control restart");
    let answers: Vec<String> = restarted.stdout.lines().map(str::to_owned).collect();
    assert_eq!(answers, twin_answers(SCRIPT));
}
