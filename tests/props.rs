//! Property-based tests over randomly generated programs.
//!
//! Core invariants:
//! - the three hypothetical engines agree on every query;
//! - negation-free inference is monotone in the database (§3.1 notes the
//!   base system is monotonic — negation is what breaks it);
//! - parse ∘ pretty is the identity on rulebases;
//! - naive and semi-naive Datalog produce identical models;
//! - the §5.1 encoding agrees with the machine simulator on random
//!   nondeterministic machines.

use hdl_base::{Database, GroundAtom, SymbolTable};
use hdl_core::ast::Rulebase;
use hdl_core::engine::{BottomUpEngine, Limits, ProveEngine, TopDownEngine};
use hdl_core::parser::{parse_program, parse_query};
use proptest::prelude::*;

/// Tight limits so pathological random programs fail fast instead of
/// dominating the test budget; limited cases are skipped, not compared.
fn small_limits() -> Limits {
    Limits {
        // The unit is premise-match attempts (finer-grained than the old
        // per-firing count), so the ceiling is correspondingly higher.
        max_expansions: 2_000_000,
        max_databases: 3_000,
    }
}

// ---------------------------------------------------------------------
// Random program generation (negation-free fragment + stratified NAF).
// ---------------------------------------------------------------------

/// A premise sketch for the generator.
#[derive(Clone, Debug)]
enum PremiseSketch {
    Pos(usize, Vec<u8>), // predicate, args (var index 0..2 or 100+const)
    Neg(usize, Vec<u8>), // only to strictly-lower-level preds
    Hyp(usize, Vec<u8>, usize, Vec<u8>), // goal pred/args, add pred/args
    /// `goal[add: …, del: …]` with a nonempty del list. The goal edge is
    /// negation-like (stratify.rs), so like `Neg` the goal predicate is
    /// restricted to strictly-lower levels.
    HypDel {
        goal: (usize, Vec<u8>),
        add: Option<(usize, Vec<u8>)>,
        del: (usize, Vec<u8>),
    },
}

#[derive(Clone, Debug)]
struct RuleSketch {
    head: (usize, Vec<u8>),
    body: Vec<PremiseSketch>,
}

const NUM_PREDS: usize = 4;
const NUM_CONSTS: usize = 3;

fn arg_strategy() -> impl Strategy<Value = u8> {
    // 0..2 = variables X0..X2, 100..102 = constants c0..c2.
    prop_oneof![0u8..3, 100u8..(100 + NUM_CONSTS as u8)]
}

fn args_strategy(arity: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(arg_strategy(), arity)
}

/// Predicate `i` has arity `i % 2 + 1` ∈ {1, 2}.
fn arity(pred: usize) -> usize {
    pred % 2 + 1
}

/// Levels make negation stratified by construction: predicate `i` has
/// level `i`, and `~q` may only appear in rules for heads with a
/// strictly greater level.
fn premise_strategy(head_pred: usize, allow_neg: bool) -> BoxedStrategy<PremiseSketch> {
    let pos = (0..NUM_PREDS)
        .prop_flat_map(|p| args_strategy(arity(p)).prop_map(move |a| PremiseSketch::Pos(p, a)));
    let hyp = (0..NUM_PREDS, 0..NUM_PREDS).prop_flat_map(|(g, ad)| {
        (args_strategy(arity(g)), args_strategy(arity(ad)))
            .prop_map(move |(ga, aa)| PremiseSketch::Hyp(g, ga, ad, aa))
    });
    if allow_neg && head_pred > 0 {
        let neg = (0..head_pred)
            .prop_flat_map(|p| args_strategy(arity(p)).prop_map(move |a| PremiseSketch::Neg(p, a)));
        let hyp_del = (
            0..head_pred,
            prop_oneof![Just(None), (0..NUM_PREDS).prop_map(Some)],
            0..NUM_PREDS,
        )
            .prop_flat_map(|(g, ad, dl)| {
                let add = match ad {
                    Some(p) => args_strategy(arity(p))
                        .prop_map(move |a| Some((p, a)))
                        .boxed(),
                    None => Just(None).boxed(),
                };
                (args_strategy(arity(g)), add, args_strategy(arity(dl))).prop_map(
                    move |(ga, add, da)| PremiseSketch::HypDel {
                        goal: (g, ga),
                        add,
                        del: (dl, da),
                    },
                )
            });
        prop_oneof![4 => pos, 2 => hyp, 2 => neg, 1 => hyp_del].boxed()
    } else {
        prop_oneof![4 => pos, 2 => hyp].boxed()
    }
}

fn rule_strategy(allow_neg: bool) -> impl Strategy<Value = RuleSketch> {
    (0..NUM_PREDS).prop_flat_map(move |head_pred| {
        let head = args_strategy(arity(head_pred)).prop_map(move |a| (head_pred, a));
        let body = proptest::collection::vec(premise_strategy(head_pred, allow_neg), 1..=3);
        (head, body).prop_map(|(head, body)| RuleSketch { head, body })
    })
}

fn program_strategy(allow_neg: bool) -> impl Strategy<Value = Vec<RuleSketch>> {
    proptest::collection::vec(rule_strategy(allow_neg), 1..=4)
}

fn facts_strategy() -> impl Strategy<Value = Vec<(usize, Vec<u8>)>> {
    proptest::collection::vec(
        (0..NUM_PREDS).prop_flat_map(|p| {
            proptest::collection::vec(100u8..(100 + NUM_CONSTS as u8), arity(p))
                .prop_map(move |a| (p, a))
        }),
        0..=5,
    )
}

fn render_arg(a: u8) -> String {
    if a >= 100 {
        format!("c{}", a - 100)
    } else {
        format!("X{a}")
    }
}

fn render_atom(pred: usize, args: &[u8]) -> String {
    let rendered: Vec<String> = args.iter().map(|&a| render_arg(a)).collect();
    format!("q{pred}({})", rendered.join(", "))
}

fn render_program(rules: &[RuleSketch]) -> String {
    let mut out = String::new();
    for r in rules {
        out.push_str(&render_atom(r.head.0, &r.head.1));
        out.push_str(" :- ");
        let premises: Vec<String> = r
            .body
            .iter()
            .map(|p| match p {
                PremiseSketch::Pos(pr, a) => render_atom(*pr, a),
                PremiseSketch::Neg(pr, a) => format!("~{}", render_atom(*pr, a)),
                PremiseSketch::Hyp(g, ga, ad, aa) => {
                    format!("{}[add: {}]", render_atom(*g, ga), render_atom(*ad, aa))
                }
                PremiseSketch::HypDel { goal, add, del } => match add {
                    Some((ap, aa)) => format!(
                        "{}[add: {}, del: {}]",
                        render_atom(goal.0, &goal.1),
                        render_atom(*ap, aa),
                        render_atom(del.0, &del.1)
                    ),
                    None => format!(
                        "{}[del: {}]",
                        render_atom(goal.0, &goal.1),
                        render_atom(del.0, &del.1)
                    ),
                },
            })
            .collect();
        out.push_str(&premises.join(", "));
        out.push_str(".\n");
    }
    out
}

fn build(rules: &[RuleSketch], facts: &[(usize, Vec<u8>)]) -> (Rulebase, Database, SymbolTable) {
    let src = render_program(rules);
    let mut syms = SymbolTable::new();
    let rb = parse_program(&src, &mut syms).expect("generated program parses");
    let mut db = Database::new();
    for (p, args) in facts {
        let pred = syms.intern(&format!("q{p}"));
        let consts: Vec<_> = args
            .iter()
            .map(|&a| syms.intern(&format!("c{}", a - 100)))
            .collect();
        db.insert(GroundAtom::new(pred, consts));
    }
    // Make sure every constant exists even with no facts.
    for c in 0..NUM_CONSTS {
        syms.intern(&format!("c{c}"));
    }
    (rb, db, syms)
}

/// All ground queries we compare engines on.
fn ground_queries(syms: &mut SymbolTable) -> Vec<hdl_core::ast::Premise> {
    let mut out = Vec::new();
    for p in 0..NUM_PREDS {
        let combos: Vec<Vec<usize>> = if arity(p) == 1 {
            (0..NUM_CONSTS).map(|c| vec![c]).collect()
        } else {
            (0..NUM_CONSTS)
                .flat_map(|a| (0..NUM_CONSTS).map(move |b| vec![a, b]))
                .collect()
        };
        for combo in combos {
            let rendered: Vec<String> = combo.iter().map(|c| format!("c{c}")).collect();
            let q = format!("?- q{p}({}).", rendered.join(", "));
            out.push(parse_query(&q, syms).expect("query parses"));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three engines agree on every ground query, for negation-free
    /// random hypothetical programs.
    #[test]
    fn engines_agree_negation_free(
        rules in program_strategy(false),
        facts in facts_strategy(),
    ) {
        let (rb, db, mut syms) = build(&rules, &facts);
        let queries = ground_queries(&mut syms);

        let mut bu = BottomUpEngine::new(&rb, &db).unwrap().with_limits(small_limits());
        let mut td = TopDownEngine::new(&rb, &db).unwrap().with_limits(small_limits());
        let pe = ProveEngine::new(&rb, &db).map(|e| e.with_limits(small_limits()));
        let mut pe = pe.ok();

        for q in &queries {
            let (Ok(a), Ok(b)) = (bu.holds(q), td.holds(q)) else {
                return Ok(()); // resource-limited case: skip
            };
            prop_assert_eq!(a, b, "bottom-up vs top-down on {:?}\n{}", q, render_program(&rules));
            if let Some(pe) = pe.as_mut() {
                let Ok(c) = pe.holds(q) else { return Ok(()) };
                prop_assert_eq!(a, c, "bottom-up vs prove on {:?}\n{}", q, render_program(&rules));
            }
        }
    }

    /// Engines agree on random programs *with stratified negation*.
    #[test]
    fn engines_agree_with_stratified_negation(
        rules in program_strategy(true),
        facts in facts_strategy(),
    ) {
        let (rb, db, mut syms) = build(&rules, &facts);
        // Levels keep direct negation downward, but upward positive edges
        // can still close a cycle through negation; both engines must
        // then reject consistently, and we skip the case.
        let bu = BottomUpEngine::new(&rb, &db);
        let td = TopDownEngine::new(&rb, &db);
        prop_assert_eq!(bu.is_err(), td.is_err(), "engines disagree on stratifiability");
        let (Ok(bu), Ok(td)) = (bu, td) else { return Ok(()) };
        let mut bu = bu.with_limits(small_limits());
        let mut td = td.with_limits(small_limits());
        let mut pe = ProveEngine::new(&rb, &db).map(|e| e.with_limits(small_limits())).ok();
        for q in ground_queries(&mut syms) {
            let (Ok(a), Ok(b)) = (bu.holds(&q), td.holds(&q)) else { return Ok(()) };
            prop_assert_eq!(a, b, "bottom-up vs top-down on {:?}\n{}", q, render_program(&rules));
            if let Some(pe) = pe.as_mut() {
                let Ok(c) = pe.holds(&q) else { return Ok(()) };
                prop_assert_eq!(a, c, "vs prove on {:?}\n{}", q, render_program(&rules));
            }
        }
    }

    /// Monotonicity: without negation, growing the database never loses
    /// derivations (the paper's §3.1 motivation for adding NAF).
    #[test]
    fn negation_free_inference_is_monotone(
        rules in program_strategy(false),
        facts in facts_strategy(),
        extra in facts_strategy(),
    ) {
        let (rb, db, mut syms) = build(&rules, &facts);
        let mut bigger = db.clone();
        for (p, args) in &extra {
            let pred = syms.intern(&format!("q{p}"));
            let consts: Vec<_> = args.iter().map(|&a| syms.intern(&format!("c{}", a - 100))).collect();
            bigger.insert(GroundAtom::new(pred, consts));
        }
        let mut small = TopDownEngine::new(&rb, &db).unwrap().with_limits(small_limits());
        let mut big = TopDownEngine::new(&rb, &bigger).unwrap().with_limits(small_limits());
        for q in ground_queries(&mut syms) {
            let (Ok(a), Ok(b)) = (small.holds(&q), big.holds(&q)) else { return Ok(()) };
            prop_assert!(!a || b, "derivation lost after growing DB: {:?}\n{}", q, render_program(&rules));
        }
    }

    /// Assuming `f` in and hypothetically deleting it again is the
    /// identity: for every ground query `g` and every engine,
    /// `g[del: f]` over `DB ∪ {f}` answers exactly like `g` over `DB`
    /// (with `f` absent from `DB`). Constants are anchored in a spare
    /// EDB predicate so both sides ground negation over the same domain.
    #[test]
    fn assume_then_del_is_identity_on_all_engines(
        rules in program_strategy(true),
        facts in facts_strategy(),
        f in (0..NUM_PREDS).prop_flat_map(|p| {
            proptest::collection::vec(100u8..(100 + NUM_CONSTS as u8), arity(p))
                .prop_map(move |a| (p, a))
        }),
    ) {
        let (rb, mut db, mut syms) = build(&rules, &facts);
        let anch = syms.intern("anch");
        for c in 0..NUM_CONSTS {
            let cc = syms.intern(&format!("c{c}"));
            db.insert(GroundAtom::new(anch, vec![cc]));
        }
        let fact = {
            let pred = syms.intern(&format!("q{}", f.0));
            let args: Vec<_> = f.1.iter().map(|&a| syms.intern(&format!("c{}", a - 100))).collect();
            GroundAtom::new(pred, args)
        };
        db.remove(&fact); // the "original" database never holds f
        let mut db_plus = db.clone();
        db_plus.insert(fact.clone()); // f assumed in

        let Ok(bu) = BottomUpEngine::new(&rb, &db) else { return Ok(()) };
        let mut bu = bu.with_limits(small_limits());
        let mut bu_plus = BottomUpEngine::new(&rb, &db_plus).unwrap().with_limits(small_limits());
        let mut td = TopDownEngine::new(&rb, &db).unwrap().with_limits(small_limits());
        let mut td_plus = TopDownEngine::new(&rb, &db_plus).unwrap().with_limits(small_limits());
        let mut pe = ProveEngine::new(&rb, &db).map(|e| e.with_limits(small_limits())).ok();
        let mut pe_plus = ProveEngine::new(&rb, &db_plus).map(|e| e.with_limits(small_limits())).ok();

        let fact_txt = render_atom(f.0, &f.1);
        for p in 0..NUM_PREDS {
            let combos: Vec<Vec<usize>> = if arity(p) == 1 {
                (0..NUM_CONSTS).map(|c| vec![c]).collect()
            } else {
                (0..NUM_CONSTS)
                    .flat_map(|a| (0..NUM_CONSTS).map(move |b| vec![a, b]))
                    .collect()
            };
            for combo in combos {
                let rendered: Vec<String> = combo.iter().map(|c| format!("c{c}")).collect();
                let base = format!("q{p}({})", rendered.join(", "));
                let plain = parse_query(&format!("?- {base}."), &mut syms).unwrap();
                let del = parse_query(&format!("?- {base}[del: {fact_txt}]."), &mut syms).unwrap();
                let (Ok(a), Ok(b)) = (bu.holds(&plain), bu_plus.holds(&del)) else { return Ok(()) };
                prop_assert_eq!(
                    a, b,
                    "bottom-up: {} vs [del: {}]\n{}",
                    base, fact_txt, render_program(&rules)
                );
                let (Ok(a), Ok(b)) = (td.holds(&plain), td_plus.holds(&del)) else { return Ok(()) };
                prop_assert_eq!(
                    a, b,
                    "top-down: {} vs [del: {}]\n{}",
                    base, fact_txt, render_program(&rules)
                );
                if let (Some(pe), Some(pe_plus)) = (pe.as_mut(), pe_plus.as_mut()) {
                    let (Ok(a), Ok(b)) = (pe.holds(&plain), pe_plus.holds(&del)) else { return Ok(()) };
                    prop_assert_eq!(
                        a, b,
                        "prove: {} vs [del: {}]\n{}",
                        base, fact_txt, render_program(&rules)
                    );
                }
            }
        }
    }

    /// parse ∘ pretty = identity on generated rulebases.
    #[test]
    fn pretty_parse_roundtrip(rules in program_strategy(true)) {
        let src = render_program(&rules);
        let mut syms = SymbolTable::new();
        let rb = parse_program(&src, &mut syms).unwrap();
        let printed = hdl_core::pretty::rulebase(&rb, &syms);
        let mut syms2 = SymbolTable::new();
        let rb2 = parse_program(&printed, &mut syms2).unwrap();
        let printed2 = hdl_core::pretty::rulebase(&rb2, &syms2);
        prop_assert_eq!(printed, printed2);
        prop_assert_eq!(rb.len(), rb2.len());
    }
}

// ---------------------------------------------------------------------
// Fresh constants in query-level overlays: Definition 3 evaluates the
// goal in `(DB ∖ C̄) ∪ B̄`, so constants introduced by a query's `add:`
// atoms join the domain rule groundings range over — even when nothing
// in the program or database mentions them. The generated corpus above
// never produces such queries (its hypothetical premises only reuse
// program constants), which is exactly how the ROADMAP domain bug
// survived 482 cases; these strategies produce them deliberately.
// ---------------------------------------------------------------------

mod fresh_constant_overlays {
    use super::*;
    use hdl_core::parser::parse_query;

    /// `c…` are program constants, `z…` are fresh to the whole world.
    fn render_const(a: u8) -> String {
        if a >= 200 {
            format!("z{}", a - 200)
        } else {
            format!("c{}", a - 100)
        }
    }

    /// Ground argument lists drawn from known and fresh constants.
    fn ground_args(n: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(prop_oneof![100u8..(100 + NUM_CONSTS as u8), 200u8..202], n)
    }

    #[derive(Clone, Debug)]
    struct HypQuery {
        goal: (usize, Vec<u8>),
        add: (usize, Vec<u8>),
        del: Option<(usize, Vec<u8>)>,
    }

    fn hyp_query_strategy() -> impl Strategy<Value = HypQuery> {
        (
            0..NUM_PREDS,
            0..NUM_PREDS,
            prop_oneof![Just(None), (0..NUM_PREDS).prop_map(Some)],
        )
            .prop_flat_map(|(g, ad, dl)| {
                let del = match dl {
                    Some(p) => ground_args(arity(p))
                        .prop_map(move |a| Some((p, a)))
                        .boxed(),
                    None => Just(None).boxed(),
                };
                (ground_args(arity(g)), ground_args(arity(ad)), del).prop_map(
                    move |(ga, aa, del)| HypQuery {
                        goal: (g, ga),
                        add: (ad, aa),
                        del,
                    },
                )
            })
    }

    fn render_query(q: &HypQuery) -> String {
        let atom = |p: usize, args: &[u8]| {
            let rendered: Vec<String> = args.iter().map(|&a| render_const(a)).collect();
            format!("q{p}({})", rendered.join(", "))
        };
        match &q.del {
            Some((dp, da)) => format!(
                "?- {}[add: {}, del: {}].",
                atom(q.goal.0, &q.goal.1),
                atom(q.add.0, &q.add.1),
                atom(*dp, da)
            ),
            None => format!(
                "?- {}[add: {}].",
                atom(q.goal.0, &q.goal.1),
                atom(q.add.0, &q.add.1)
            ),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Top-down ≡ bottom-up ≡ PROVE on hypothetical queries whose
        /// `add:`/`del:` atoms introduce constants the program has never
        /// seen. Several queries run against the *same* engine instances,
        /// so memoized state invalidation on domain growth is exercised
        /// too.
        #[test]
        fn engines_agree_when_queries_introduce_fresh_constants(
            rules in program_strategy(true),
            facts in facts_strategy(),
            queries in proptest::collection::vec(hyp_query_strategy(), 1..=6),
        ) {
            let (rb, db, mut syms) = build(&rules, &facts);
            let bu = BottomUpEngine::new(&rb, &db);
            let td = TopDownEngine::new(&rb, &db);
            prop_assert_eq!(bu.is_err(), td.is_err(), "engines disagree on stratifiability");
            let (Ok(bu), Ok(td)) = (bu, td) else { return Ok(()) };
            let mut bu = bu.with_limits(small_limits());
            let mut td = td.with_limits(small_limits());
            let mut pe = ProveEngine::new(&rb, &db).map(|e| e.with_limits(small_limits())).ok();
            for sketch in &queries {
                let text = render_query(sketch);
                let q = parse_query(&text, &mut syms).expect("query parses");
                let (Ok(a), Ok(b)) = (bu.holds(&q), td.holds(&q)) else { return Ok(()) };
                prop_assert_eq!(
                    a, b,
                    "bottom-up vs top-down on {}\n{}",
                    text, render_program(&rules)
                );
                if let Some(pe) = pe.as_mut() {
                    let Ok(c) = pe.holds(&q) else { return Ok(()) };
                    prop_assert_eq!(
                        a, c,
                        "bottom-up vs prove on {}\n{}",
                        text, render_program(&rules)
                    );
                }
            }
        }
    }

    /// The ROADMAP repro, pinned: `?- tc(a, c)[add: edge(b, c)].` must
    /// answer true on every engine — `c` is fresh to the program, and
    /// before the domain fix the top-down and PROVE engines refused to
    /// instantiate the recursive rule at it (answering false while
    /// bottom-up said true).
    #[test]
    fn fresh_add_constant_repro_answers_true_on_all_engines() {
        let src = "edge(a, b).\n\
                   tc(X, Y) :- edge(X, Y).\n\
                   tc(X, Z) :- edge(X, Y), tc(Y, Z).\n";
        let mut syms = SymbolTable::new();
        let program = parse_program(src, &mut syms).unwrap();
        let (rb, facts) = hdl_core::parser::split_facts(program);
        let db: Database = facts.into_iter().collect();
        let q = parse_query("?- tc(a, c)[add: edge(b, c)].", &mut syms).unwrap();

        let mut td = TopDownEngine::new(&rb, &db).unwrap();
        assert!(td.holds(&q).unwrap(), "top-down");
        let mut bu = BottomUpEngine::new(&rb, &db).unwrap();
        assert!(bu.holds(&q).unwrap(), "bottom-up");
        let mut pe = ProveEngine::new(&rb, &db).unwrap();
        assert!(pe.holds(&q).unwrap(), "prove");

        // The fresh constant also reaches negation-over-domain: with
        // r(z) assumed in, `p(z) :- anch-free ~q(z)` style goals must
        // agree too. (q is underivable, so p(z) holds exactly when z is
        // in the evaluation domain of the overlay world.)
        let src2 = "p(X) :- r(X), ~q(X).\nq(sentinel).\n";
        let mut syms2 = SymbolTable::new();
        let program2 = parse_program(src2, &mut syms2).unwrap();
        let (rb2, facts2) = hdl_core::parser::split_facts(program2);
        let db2: Database = facts2.into_iter().collect();
        let q2 = parse_query("?- p(zzz)[add: r(zzz)].", &mut syms2).unwrap();
        let mut td2 = TopDownEngine::new(&rb2, &db2).unwrap();
        let mut bu2 = BottomUpEngine::new(&rb2, &db2).unwrap();
        let mut pe2 = ProveEngine::new(&rb2, &db2).unwrap();
        let (a, b, c) = (
            td2.holds(&q2).unwrap(),
            bu2.holds(&q2).unwrap(),
            pe2.holds(&q2).unwrap(),
        );
        assert!(a && b && c, "td={a} bu={b} prove={c}");
    }
}

// ---------------------------------------------------------------------
// Datalog baseline: naive ≡ semi-naive.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn naive_equals_seminaive(
        rules in program_strategy(true),
        facts in facts_strategy(),
    ) {
        // Reuse the generator but strip hypothetical premises: replace
        // them with their goal atom (an arbitrary but deterministic
        // datalog-ification).
        let src = render_program(&rules);
        let mut syms = SymbolTable::new();
        let rb = parse_program(&src, &mut syms).unwrap();
        let mut dl_rules = Vec::new();
        for r in rb.iter() {
            let body = r
                .premises
                .iter()
                .map(|p| match p {
                    hdl_core::ast::Premise::Atom(a) => hdl_datalog::Literal::Pos(a.clone()),
                    hdl_core::ast::Premise::Neg(a) => hdl_datalog::Literal::Neg(a.clone()),
                    hdl_core::ast::Premise::Hyp { goal, .. } => {
                        hdl_datalog::Literal::Pos(goal.clone())
                    }
                })
                .collect();
            dl_rules.push(hdl_datalog::Rule::new(r.head.clone(), body));
        }
        // The hyp→pos rewrite can create new negative cycles; skip those.
        if hdl_datalog::stratify(&dl_rules).is_err() {
            return Ok(());
        }
        let mut db = Database::new();
        for (p, args) in &facts {
            let pred = syms.intern(&format!("q{p}"));
            let consts: Vec<_> = args.iter().map(|&a| syms.intern(&format!("c{}", a - 100))).collect();
            db.insert(GroundAtom::new(pred, consts));
        }
        let a = hdl_datalog::naive::evaluate(&dl_rules, &db).unwrap();
        let b = hdl_datalog::seminaive::evaluate(&dl_rules, &db).unwrap();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Semi-naive, parallel bottom-up closure ≡ retained naive reference.
// ---------------------------------------------------------------------

mod seminaive_equivalence {
    use super::*;
    use hdl_core::engine::NaiveEngine;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The semi-naive, index-driven closure — delta-rotation plus
        /// worker-thread rule firing — derives exactly the perfect model
        /// of the retained naive reference on random hypothetical
        /// programs (including `add:` branching), at every pool size.
        #[test]
        fn parallel_seminaive_model_matches_naive_reference(
            rules in program_strategy(true),
            facts in facts_strategy(),
            workers in 1usize..=4,
        ) {
            let (rb, db, _) = build(&rules, &facts);
            let Ok(naive) = NaiveEngine::new(&rb, &db) else { return Ok(()) };
            let mut naive = naive.with_limits(small_limits());
            let mut semi = BottomUpEngine::new(&rb, &db)
                .unwrap()
                .with_limits(small_limits())
                .with_parallelism(workers);
            let (m_naive, m_semi) = (naive.model(), semi.model());
            let (Ok(m_naive), Ok(m_semi)) = (m_naive, m_semi) else {
                return Ok(()); // resource-limited case: skip
            };
            prop_assert_eq!(
                m_naive,
                m_semi,
                "workers={}\n{}",
                workers,
                render_program(&rules)
            );
        }

        /// `PROVE_Δᵢ`'s semi-naive fixpoint answers identically with and
        /// without worker threads on random linearly stratified programs.
        #[test]
        fn prove_delta_parallelism_is_transparent(
            rules in program_strategy(true),
            facts in facts_strategy(),
        ) {
            let (rb, db, mut syms) = build(&rules, &facts);
            let Ok(seq) = ProveEngine::new(&rb, &db) else { return Ok(()) };
            let mut seq = seq.with_limits(small_limits());
            let mut par = ProveEngine::new(&rb, &db)
                .unwrap()
                .with_limits(small_limits())
                .with_parallelism(4);
            for q in ground_queries(&mut syms) {
                let (Ok(a), Ok(b)) = (seq.holds(&q), par.holds(&q)) else {
                    return Ok(());
                };
                prop_assert_eq!(a, b, "on {:?}\n{}", q, render_program(&rules));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Incremental retraction ≡ full recomputation (DRed differential).
// ---------------------------------------------------------------------

mod incremental_maintenance {
    use super::*;
    use hdl_core::engine::NaiveEngine;
    use hdl_core::MaterializedModel;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// A [`MaterializedModel`] maintained through a random
        /// retract/assert script equals the naive-reference model
        /// recomputed from scratch after every mutation, on random
        /// programs with stratified negation and `del:` premises —
        /// whichever maintenance path each step takes (fact-level DRed,
        /// conservative cone recompute, or domain rebuild).
        #[test]
        fn maintained_model_equals_naive_recompute(
            rules in program_strategy(true),
            facts in facts_strategy(),
            extra in facts_strategy(),
        ) {
            let (rb, mut db, mut syms) = build(&rules, &facts);
            // Pre-screen: skip unstratifiable programs and cases the
            // budget rejects (the maintenance API itself is unlimited).
            let Ok(screen) = NaiveEngine::new(&rb, &db) else { return Ok(()) };
            if screen.with_limits(small_limits()).model().is_err() {
                return Ok(());
            }
            let mut m = MaterializedModel::build(&rb, &db).unwrap();

            // Script: retract every original fact, then assert every
            // extra one — exercising both directions, including
            // retractions that shrink the constant domain and
            // assertions that grow it.
            let mut script: Vec<(usize, Vec<u8>, bool)> = Vec::new();
            for (p, args) in &facts {
                script.push((*p, args.clone(), false));
            }
            for (p, args) in &extra {
                script.push((*p, args.clone(), true));
            }
            for (p, args, insert) in script {
                let pred = syms.intern(&format!("q{p}"));
                let consts: Vec<_> = args
                    .iter()
                    .map(|&a| syms.intern(&format!("c{}", a - 100)))
                    .collect();
                let fact = GroundAtom::new(pred, consts);
                if insert {
                    if !db.insert(fact.clone()) {
                        continue;
                    }
                } else if !db.remove(&fact) {
                    continue;
                }
                // Budget-screen the post-mutation model before letting
                // the (unlimited) maintenance path at it.
                let Ok(expected) = NaiveEngine::new(&rb, &db)
                    .unwrap()
                    .with_limits(small_limits())
                    .model()
                else {
                    return Ok(());
                };
                if insert {
                    m.assert_fact(&rb, &db, &fact).unwrap();
                } else {
                    m.retract_fact(&rb, &db, &fact).unwrap();
                }
                prop_assert_eq!(
                    m.model(),
                    &expected,
                    "after {} of {:?}\n{}",
                    if insert { "assert" } else { "retract" },
                    fact,
                    render_program(&rules)
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Random machines: §5.1 encoding ≡ direct simulation.
// ---------------------------------------------------------------------

mod machines {
    use super::*;
    use hdl_turing::{Action, Cascade, Machine, Move, State, Sym};

    #[derive(Clone, Debug)]
    pub struct MachineSketch {
        pub accepting: Vec<u8>,
        pub transitions: Vec<(u8, u8, u8, u8, u8)>, // (state, read, write, move, next)
    }

    const STATES: u8 = 3;
    const SYMBOLS: u8 = 2;

    pub fn machine_strategy() -> impl Strategy<Value = MachineSketch> {
        let accepting = proptest::collection::vec(0..STATES, 0..=1);
        let transitions = proptest::collection::vec(
            (0..STATES, 0..SYMBOLS, 0..SYMBOLS, 0..2u8, 0..STATES),
            1..=5,
        );
        (accepting, transitions).prop_map(|(accepting, transitions)| MachineSketch {
            accepting,
            transitions,
        })
    }

    pub fn realize(sk: &MachineSketch) -> Machine {
        let mut m = Machine::new("random", STATES, SYMBOLS);
        for &a in &sk.accepting {
            m.accepting.push(State(a));
        }
        for &(q, r, w, mv, n) in &sk.transitions {
            m.add_transition(
                State(q),
                Sym(r),
                Action {
                    write: Sym(w),
                    work_move: if mv == 0 { Move::Left } else { Move::Right },
                    oracle_write: None,
                    next: State(n),
                },
            );
        }
        m
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn encoding_matches_simulator_on_random_machines(
            sk in machine_strategy(),
            input in proptest::collection::vec(0u8..2, 0..=3),
        ) {
            let machine = realize(&sk);
            let cascade = Cascade::new(vec![machine]).unwrap();
            let input: Vec<Sym> = input.into_iter().map(Sym).collect();
            let bound = 5;
            let direct = cascade.accepts(&input, bound);
            let enc = hdl_encodings::tm::encode(&cascade, &input, bound).unwrap();
            let mut engine = TopDownEngine::new(&enc.rulebase, &enc.database)
                .unwrap()
                .with_limits(super::small_limits());
            let Ok(derived) = engine.holds(&enc.accept_query()) else { return Ok(()) };
            prop_assert_eq!(derived, direct, "machine {:?} input {:?}", sk, input);
        }
    }
}

// ---------------------------------------------------------------------
// Grounding (Definition 3 made literal) agrees with direct evaluation.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grounded_program_agrees_with_direct_evaluation(
        rules in program_strategy(true),
        facts in facts_strategy(),
    ) {
        use hdl_core::transform::{eliminate_inner_negation, ground_program};
        let (rb, db, mut syms) = build(&rules, &facts);
        let Ok(direct) = TopDownEngine::new(&rb, &db) else { return Ok(()) };
        let mut direct = direct.with_limits(small_limits());
        let normalized = eliminate_inner_negation(&rb, &mut syms);
        let Ok(grounded) = ground_program(&normalized, &db, 100_000) else {
            return Ok(());
        };
        let Ok(via_ground) = BottomUpEngine::new(&grounded, &db) else { return Ok(()) };
        let mut via_ground = via_ground.with_limits(small_limits());
        for q in ground_queries(&mut syms) {
            let (Ok(a), Ok(b)) = (direct.holds(&q), via_ground.holds(&q)) else {
                return Ok(());
            };
            prop_assert_eq!(a, b, "grounding disagreement on {:?}\n{}", q, render_program(&rules));
        }
    }
}

// ---------------------------------------------------------------------
// Overlay storage: a DbView over the parent+delta DAG answers exactly
// like a Database built by inserting the same facts directly.
// ---------------------------------------------------------------------

mod overlay_views {
    use super::*;
    use hdl_base::{Atom, Bindings, DbStore, Term, Var};

    fn realize(syms: &mut SymbolTable, facts: &[(usize, Vec<u8>)]) -> Vec<GroundAtom> {
        facts
            .iter()
            .map(|(p, args)| {
                let pred = syms.intern(&format!("q{p}"));
                let consts: Vec<_> = args
                    .iter()
                    .map(|&a| syms.intern(&format!("c{}", a - 100)))
                    .collect();
                GroundAtom::new(pred, consts)
            })
            .collect()
    }

    /// Enough extension batches that chains regularly cross
    /// [`hdl_base::FLATTEN_THRESHOLD`], exercising both representations.
    fn batches_strategy() -> impl Strategy<Value = Vec<Vec<(usize, Vec<u8>)>>> {
        proptest::collection::vec(super::facts_strategy(), 1..=12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `DbView` membership and matching agree with a `Database` built
        /// by inserting the same facts directly, across extension chains.
        #[test]
        fn view_answers_match_materialized_database(
            base in super::facts_strategy(),
            batches in batches_strategy(),
        ) {
            let mut syms = SymbolTable::new();
            let mut store = DbStore::new();
            let mut reference = Database::new();
            for f in realize(&mut syms, &base) {
                reference.insert(f);
            }
            let mut db = store.intern_database(&reference);
            for batch in &batches {
                let ids: Vec<_> = realize(&mut syms, batch)
                    .into_iter()
                    .map(|f| {
                        reference.insert(f.clone());
                        store.intern_fact(f)
                    })
                    .collect();
                db = store.extend(db, &ids);
            }
            let view = store.view(db);
            prop_assert_eq!(view.len(), reference.len());
            for fact in reference.iter_facts() {
                prop_assert!(view.contains(&fact), "missing {:?}", fact);
            }
            // Matching agrees for fully-open and half-ground patterns over
            // every predicate (covers facts_of, for_each_match, and the
            // empty-relation case for predicates with no facts).
            for p in 0..super::NUM_PREDS {
                let pred = syms.intern(&format!("q{p}"));
                let ar = super::arity(p);
                let open: Vec<Term> = (0..ar as u32).map(|i| Term::Var(Var(i))).collect();
                let mut half = open.clone();
                half[0] = Term::Const(syms.intern("c0"));
                for pattern in [Atom::new(pred, open), Atom::new(pred, half)] {
                    let mut got = view.all_matches(&pattern, &mut Bindings::new(ar));
                    let mut want = reference.all_matches(&pattern, &mut Bindings::new(ar));
                    got.sort();
                    want.sort();
                    prop_assert_eq!(got, want, "pattern over q{}", p);
                }
            }
        }

        /// Extending a database by facts it already holds is the identity
        /// on `DbId` — the degenerate-hypothesis invariant the engines'
        /// `(FactId, DbId)` memo keys rely on.
        #[test]
        fn extend_by_present_facts_returns_same_id(
            base in super::facts_strategy(),
            extra in super::facts_strategy(),
            picks in proptest::collection::vec(0usize..64, 1..=4),
        ) {
            let mut syms = SymbolTable::new();
            let mut store = DbStore::new();
            let mut reference = Database::new();
            for f in realize(&mut syms, &base) {
                reference.insert(f);
            }
            let mut db = store.intern_database(&reference);
            let ids: Vec<_> = realize(&mut syms, &extra)
                .into_iter()
                .map(|f| store.intern_fact(f))
                .collect();
            if !ids.is_empty() {
                db = store.extend(db, &ids);
            }
            // Re-adding any subset of what the view already holds must not
            // mint a new node.
            let present: Vec<_> = store.view(db).fact_ids().collect();
            if present.is_empty() {
                return Ok(());
            }
            let re_add: Vec<_> = picks.iter().map(|&i| present[i % present.len()]).collect();
            let nodes_before = store.len();
            prop_assert_eq!(store.extend(db, &re_add), db);
            prop_assert_eq!(store.len(), nodes_before);
        }
    }
}

// ---------------------------------------------------------------------
// Durability: checkpoint encode→decode is the identity on session
// state, and replaying a WAL reconstructs exactly the session that
// wrote it.
// ---------------------------------------------------------------------

mod persistence {
    use super::*;
    use hdl_core::session::Session;
    use hdl_persist::{decode_checkpoint, encode_checkpoint, DurableSession, FsyncPolicy};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Minimal scratch directory, removed on drop (no tempfile dep).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("hdl-props-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn render_fact(p: usize, args: &[u8]) -> String {
        super::render_atom(p, args)
    }

    /// Ground-fact-only batches (constants, no variables).
    fn ground_batch_strategy() -> impl Strategy<Value = Vec<(usize, Vec<u8>)>> {
        super::facts_strategy()
    }

    /// A mutation applied identically to both sessions under test.
    #[derive(Clone, Debug)]
    enum Op {
        Load(Vec<(usize, Vec<u8>)>),
        Assume(Vec<(usize, Vec<u8>)>),
        Retract(usize, Vec<u8>),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => ground_batch_strategy().prop_map(Op::Load),
            3 => ground_batch_strategy().prop_map(Op::Assume),
            2 => (0..NUM_PREDS).prop_flat_map(|p| {
                proptest::collection::vec(100u8..(100 + NUM_CONSTS as u8), arity(p))
                    .prop_map(move |a| Op::Retract(p, a))
            }),
            2 => Just(Op::Pop),
        ]
    }

    /// Parses one ground fact into `session`'s symbol space.
    fn fact_in(session: &mut Session, p: usize, args: &[u8]) -> GroundAtom {
        let src = format!("{}.", render_fact(p, args));
        let program = parse_program(&src, session.symbols_mut()).unwrap();
        let (_, mut facts) = hdl_core::parser::split_facts(program);
        facts.pop().unwrap()
    }

    fn apply(session: &mut Session, op: &Op) {
        match op {
            Op::Load(batch) => {
                if batch.is_empty() {
                    return;
                }
                let src: String = batch
                    .iter()
                    .map(|(p, a)| format!("{}.\n", render_fact(*p, a)))
                    .collect();
                session.load(&src).unwrap();
            }
            Op::Assume(batch) => {
                let facts: Vec<_> = batch.iter().map(|(p, a)| fact_in(session, *p, a)).collect();
                session.assume(facts).unwrap();
            }
            Op::Retract(p, a) => {
                let fact = fact_in(session, *p, a);
                session.retract_fact(&fact).unwrap();
            }
            Op::Pop => {
                session.pop_assumption().unwrap();
            }
        }
    }

    /// Every ground query, rendered textually so each session resolves
    /// it in its own symbol space.
    fn query_texts() -> Vec<String> {
        let mut out = Vec::new();
        for p in 0..NUM_PREDS {
            let combos: Vec<Vec<usize>> = if arity(p) == 1 {
                (0..NUM_CONSTS).map(|c| vec![c]).collect()
            } else {
                (0..NUM_CONSTS)
                    .flat_map(|a| (0..NUM_CONSTS).map(move |b| vec![a, b]))
                    .collect()
            };
            for combo in combos {
                let rendered: Vec<String> = combo.iter().map(|c| format!("c{c}")).collect();
                out.push(format!("?- q{p}({}).", rendered.join(", ")));
            }
        }
        out
    }

    /// Cumulative fact set at each chain depth (base, then one entry per
    /// frame), as a canonical sorted list. Comparing cumulative sets
    /// rather than raw frames absorbs the store's canonical collapse of
    /// frames that add nothing new.
    fn cumulative_sets(base: &Database, frames: &[Vec<GroundAtom>]) -> Vec<Vec<GroundAtom>> {
        let mut acc: Vec<GroundAtom> = base.iter_facts().collect();
        let mut out = Vec::with_capacity(frames.len() + 1);
        acc.sort();
        acc.dedup();
        out.push(acc.clone());
        for frame in frames {
            acc.extend(frame.iter().cloned());
            acc.sort();
            acc.dedup();
            out.push(acc.clone());
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// `decode_checkpoint ∘ encode_checkpoint` is the identity on
        /// (symbols, rulebase, base, frames) for random overlay DAGs.
        #[test]
        fn checkpoint_roundtrip_identity(
            rules in program_strategy(true),
            base in facts_strategy(),
            frames in proptest::collection::vec(ground_batch_strategy(), 0..=6),
            epoch in 0u64..1000,
            watermark in 0u64..1000,
        ) {
            let (rb, db, mut syms) = build(&rules, &base);
            let frame_atoms: Vec<Vec<GroundAtom>> = frames
                .iter()
                .map(|batch| {
                    batch
                        .iter()
                        .map(|(p, args)| {
                            let pred = syms.intern(&format!("q{p}"));
                            let consts: Vec<_> = args
                                .iter()
                                .map(|&a| syms.intern(&format!("c{}", a - 100)))
                                .collect();
                            GroundAtom::new(pred, consts)
                        })
                        .collect()
                })
                .collect();

            let bytes = encode_checkpoint(epoch, watermark, &syms, &rb, &db, &frame_atoms);
            let state = decode_checkpoint(&bytes).expect("roundtrip decodes");

            prop_assert_eq!(state.epoch, epoch);
            prop_assert_eq!(state.watermark, watermark);
            prop_assert_eq!(state.symbols.len(), syms.len());
            let printed = hdl_core::pretty::rulebase(&rb, &syms);
            let reprinted = hdl_core::pretty::rulebase(&state.rulebase, &state.symbols);
            prop_assert_eq!(printed, reprinted);
            prop_assert_eq!(state.frames.len(), frame_atoms.len());
            prop_assert_eq!(
                cumulative_sets(&state.base, &state.frames),
                cumulative_sets(&db, &frame_atoms)
            );
        }

        /// A session recovered from its WAL answers every ground query
        /// exactly like a twin built by applying the same mutations
        /// directly, and carries the same assumption-frame structure.
        #[test]
        fn wal_replay_equals_direct_build(
            rules in program_strategy(false),
            ops in proptest::collection::vec(op_strategy(), 0..=8),
        ) {
            let dir = TempDir::new();
            let mut durable =
                DurableSession::open(&dir.0, FsyncPolicy::Never).unwrap();
            let mut direct = Session::new();

            let src = render_program(&rules);
            durable.load(&src).unwrap();
            direct.load(&src).unwrap();
            for op in &ops {
                apply(&mut durable, op);
                apply(&mut direct, op);
            }

            drop(durable); // no checkpoint: recovery must replay the WAL
            let mut recovered =
                DurableSession::open(&dir.0, FsyncPolicy::Never).unwrap();
            prop_assert!(
                recovered.recovery_report().is_some_and(|r| r.restored_anything())
            );

            prop_assert_eq!(
                recovered.assumptions().len(),
                direct.assumptions().len()
            );
            let mut rec_frames: Vec<Vec<String>> = Vec::new();
            for frames in [recovered.assumptions(), direct.assumptions()] {
                rec_frames.push(frames.iter().map(|f| f.len().to_string()).collect());
            }
            prop_assert_eq!(&rec_frames[0], &rec_frames[1]);
            for q in query_texts() {
                let a = recovered.ask(&q).unwrap();
                let b = direct.ask(&q).unwrap();
                prop_assert_eq!(a, b, "divergence on {} after {:?}", q, ops);
            }
        }

        /// Checkpoint-then-recover is also the identity: after a
        /// checkpoint the WAL is empty, so this exercises the snapshot
        /// path rather than replay.
        #[test]
        fn checkpoint_recover_equals_direct_build(
            rules in program_strategy(false),
            ops in proptest::collection::vec(op_strategy(), 0..=6),
        ) {
            let dir = TempDir::new();
            let mut durable =
                DurableSession::open(&dir.0, FsyncPolicy::Never).unwrap();
            let mut direct = Session::new();
            let src = render_program(&rules);
            durable.load(&src).unwrap();
            direct.load(&src).unwrap();
            for op in &ops {
                apply(&mut durable, op);
                apply(&mut direct, op);
            }
            durable.checkpoint().unwrap();
            drop(durable);

            let mut recovered =
                DurableSession::open(&dir.0, FsyncPolicy::Never).unwrap();
            let report = recovered.recovery_report().cloned().unwrap();
            prop_assert_eq!(report.records_replayed, 0, "WAL should be empty");
            for q in query_texts() {
                let a = recovered.ask(&q).unwrap();
                let b = direct.ask(&q).unwrap();
                prop_assert_eq!(a, b, "divergence on {} after {:?}", q, ops);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Linear-stratified-by-construction programs: all three engines,
// including PROVE, must agree (PROVE must also *accept* the program).
// ---------------------------------------------------------------------

mod linear_programs {
    use super::*;

    /// One stratum of the generated program: predicate `a_i` with a
    /// linear hypothetical self-recursion reading EDB guard `g_i`, a base
    /// rule negating the stratum below, and an EDB-driven base case.
    #[derive(Clone, Debug)]
    pub struct StratumSketch {
        /// Whether the hypothetical recursion rule is present.
        pub recursive: bool,
        /// Whether the base rule requires the guard fact.
        pub guarded_base: bool,
        /// Which guard facts are present in the EDB.
        pub guard_fact: bool,
        pub base_fact: bool,
    }

    fn stratum_strategy() -> impl Strategy<Value = StratumSketch> {
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
            |(recursive, guarded_base, guard_fact, base_fact)| StratumSketch {
                recursive,
                guarded_base,
                guard_fact,
                base_fact,
            },
        )
    }

    fn render(strata: &[StratumSketch]) -> String {
        let mut src = String::new();
        for (i, st) in strata.iter().enumerate() {
            let lvl = i + 1;
            if st.recursive {
                src.push_str(&format!("a{lvl} :- g{lvl}, a{lvl}[add: c{lvl}].\n"));
            }
            let base_guard = if st.guarded_base {
                format!("b{lvl}, ")
            } else {
                String::new()
            };
            if lvl == 1 {
                src.push_str(&format!("a1 :- {base_guard}seed.\n"));
            } else {
                src.push_str(&format!(
                    "a{lvl} :- {base_guard}~a{prev}.\n",
                    prev = lvl - 1
                ));
            }
            if st.guard_fact {
                src.push_str(&format!("g{lvl}.\n"));
            }
            if st.base_fact {
                src.push_str(&format!("b{lvl}.\n"));
            }
        }
        src.push_str("seed.\n");
        src
    }

    /// Reference semantics computed by hand: a1 = (b1 if guarded) ∧ seed;
    /// a_i = base_i ∧ ¬a_{i-1} (the recursive rule never derives anything
    /// new here because its premise is the same-stratum atom itself).
    fn expected(strata: &[StratumSketch]) -> Vec<bool> {
        let mut out = Vec::new();
        let mut below = false;
        for (i, st) in strata.iter().enumerate() {
            let base_ok = !st.guarded_base || st.base_fact;
            let v = if i == 0 { base_ok } else { base_ok && !below };
            out.push(v);
            below = v;
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn all_three_engines_agree_on_layered_programs(
            strata in proptest::collection::vec(stratum_strategy(), 1..=4)
        ) {
            let src = render(&strata);
            let mut syms = SymbolTable::new();
            let program = parse_program(&src, &mut syms).unwrap();
            let (rb, facts) = hdl_core::parser::split_facts(program);
            let db: Database = facts.into_iter().collect();

            let mut bu = BottomUpEngine::new(&rb, &db).unwrap();
            let mut td = TopDownEngine::new(&rb, &db).unwrap();
            let mut pe = ProveEngine::new(&rb, &db)
                .expect("layered programs are linearly stratified");

            let want = expected(&strata);
            for (i, &w) in want.iter().enumerate() {
                let q = parse_query(&format!("?- a{}.", i + 1), &mut syms).unwrap();
                let b = bu.holds(&q).unwrap();
                let t = td.holds(&q).unwrap();
                let p = pe.holds(&q).unwrap();
                prop_assert_eq!(b, w, "bottom-up vs expected on a{}\n{}", i + 1, src);
                prop_assert_eq!(t, w, "top-down vs expected on a{}\n{}", i + 1, src);
                prop_assert_eq!(p, w, "prove vs expected on a{}\n{}", i + 1, src);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Demand-driven (magic-sets) engine ≡ naive reference.
// ---------------------------------------------------------------------

mod magic_equivalence {
    use super::*;
    use hdl_core::engine::{MagicEngine, NaiveEngine};

    /// `c…` are program constants, `z…` are fresh to the whole world
    /// (the PR-8 Definition-3 generator shape).
    fn render_const(a: u8) -> String {
        if a >= 200 {
            format!("z{}", a - 200)
        } else {
            format!("c{}", a - 100)
        }
    }

    fn ground_args(n: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(prop_oneof![100u8..(100 + NUM_CONSTS as u8), 200u8..202], n)
    }

    #[derive(Clone, Debug)]
    struct HypQuery {
        goal: (usize, Vec<u8>),
        add: (usize, Vec<u8>),
        del: Option<(usize, Vec<u8>)>,
    }

    fn hyp_query_strategy() -> impl Strategy<Value = HypQuery> {
        (
            0..NUM_PREDS,
            0..NUM_PREDS,
            prop_oneof![Just(None), (0..NUM_PREDS).prop_map(Some)],
        )
            .prop_flat_map(|(g, ad, dl)| {
                let del = match dl {
                    Some(p) => ground_args(arity(p))
                        .prop_map(move |a| Some((p, a)))
                        .boxed(),
                    None => Just(None).boxed(),
                };
                (ground_args(arity(g)), ground_args(arity(ad)), del).prop_map(
                    move |(ga, aa, del)| HypQuery {
                        goal: (g, ga),
                        add: (ad, aa),
                        del,
                    },
                )
            })
    }

    fn render_query(q: &HypQuery) -> String {
        let atom = |p: usize, args: &[u8]| {
            let rendered: Vec<String> = args.iter().map(|&a| render_const(a)).collect();
            format!("q{p}({})", rendered.join(", "))
        };
        match &q.del {
            Some((dp, da)) => format!(
                "?- {}[add: {}, del: {}].",
                atom(q.goal.0, &q.goal.1),
                atom(q.add.0, &q.add.1),
                atom(*dp, da)
            ),
            None => format!(
                "?- {}[add: {}].",
                atom(q.goal.0, &q.goal.1),
                atom(q.add.0, &q.add.1)
            ),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The demand rewrite answers exactly like the naive reference
        /// on every ground query, over random programs with stratified
        /// negation and `del:`-carrying hypothetical premises.
        #[test]
        fn magic_matches_naive_on_ground_queries(
            rules in program_strategy(true),
            facts in facts_strategy(),
        ) {
            let (rb, db, mut syms) = build(&rules, &facts);
            let Ok(naive) = NaiveEngine::new(&rb, &db) else { return Ok(()) };
            let mut naive = naive.with_limits(small_limits());
            let mut magic = MagicEngine::new(&rb, &db)
                .unwrap()
                .with_limits(small_limits());
            for q in ground_queries(&mut syms) {
                let (Ok(a), Ok(b)) = (naive.holds(&q), magic.holds(&q)) else {
                    return Ok(()); // resource-limited case: skip
                };
                prop_assert_eq!(a, b, "naive vs magic on {:?}\n{}", q, render_program(&rules));
            }
        }

        /// Answer enumeration agrees row-for-row on free and half-bound
        /// patterns of every predicate.
        #[test]
        fn magic_matches_naive_on_answer_patterns(
            rules in program_strategy(true),
            facts in facts_strategy(),
        ) {
            let (rb, db, mut syms) = build(&rules, &facts);
            let Ok(naive) = NaiveEngine::new(&rb, &db) else { return Ok(()) };
            let mut naive = naive.with_limits(small_limits());
            let mut magic = MagicEngine::new(&rb, &db)
                .unwrap()
                .with_limits(small_limits());
            for p in 0..NUM_PREDS {
                let free = if arity(p) == 1 { "X0" } else { "X0, X1" };
                let half = if arity(p) == 1 { "c0".to_owned() } else { "c0, X0".to_owned() };
                for pat in [format!("q{p}({free})"), format!("q{p}({half})")] {
                    let q = parse_query(&format!("?- {pat}."), &mut syms).unwrap();
                    let hdl_core::ast::Premise::Atom(atom) = &q else { unreachable!() };
                    let (Ok(a), Ok(b)) = (naive.answers(atom), magic.answers(atom)) else {
                        return Ok(());
                    };
                    prop_assert_eq!(a, b, "naive vs magic rows on {}\n{}", pat, render_program(&rules));
                }
            }
        }

        /// Magic ≡ naive on hypothetical queries whose `add:`/`del:`
        /// atoms introduce constants the program has never seen, several
        /// queries against the same engine instances (domain growth and
        /// overlay-threaded demand seeds are both exercised).
        #[test]
        fn magic_matches_naive_on_fresh_constant_overlays(
            rules in program_strategy(true),
            facts in facts_strategy(),
            queries in proptest::collection::vec(hyp_query_strategy(), 1..=6),
        ) {
            let (rb, db, mut syms) = build(&rules, &facts);
            let Ok(naive) = NaiveEngine::new(&rb, &db) else { return Ok(()) };
            let mut naive = naive.with_limits(small_limits());
            let mut magic = MagicEngine::new(&rb, &db)
                .unwrap()
                .with_limits(small_limits());
            for hq in &queries {
                let q = parse_query(&render_query(hq), &mut syms).unwrap();
                let (Ok(a), Ok(b)) = (naive.holds(&q), magic.holds(&q)) else {
                    return Ok(());
                };
                prop_assert_eq!(
                    a, b,
                    "naive vs magic on {}\n{}",
                    render_query(hq),
                    render_program(&rules)
                );
            }
        }
    }

    /// Pinned regression: a stratum the adornment analysis cannot bound
    /// (`~picked(Y)` with inner-existential `Y`) must fall back to
    /// unrestricted evaluation — same answers, `unbound_fallbacks`
    /// recorded — never silently drop answers.
    #[test]
    fn unbound_stratum_falls_back_instead_of_dropping_answers() {
        let src = "
            item(c0). item(c1). item(c2).
            sel(c1).
            picked(X0) :- sel(X0).
            open(X0) :- item(X0), ~picked(X1).
        ";
        let mut syms = SymbolTable::new();
        let rb = parse_program(src, &mut syms).unwrap();
        let (rb, facts) = hdl_core::parser::split_facts(rb);
        let db: Database = facts.into_iter().collect();
        let mut naive = NaiveEngine::new(&rb, &db).unwrap();
        let mut magic = MagicEngine::new(&rb, &db).unwrap();
        let pat = {
            let q = parse_query("?- open(X0).", &mut syms).unwrap();
            let hdl_core::ast::Premise::Atom(atom) = q else {
                unreachable!()
            };
            atom
        };
        assert_eq!(
            magic.answers(&pat).unwrap(),
            naive.answers(&pat).unwrap(),
            "fallback must preserve the full answer set"
        );
        assert!(
            magic.stats().unbound_fallbacks > 0,
            "the unboundable stratum must be recorded as a fallback: {:?}",
            magic.stats()
        );
    }
}
