//! End-to-end tests for the network server through the real `hdl`
//! binary: `hdl serve --listen` with port 0, multi-tenant sessions over
//! TCP, quota trips, admission control, the `hdl connect` client, and
//! graceful drain (client `shutdown` op and SIGTERM) with
//! checkpoint-on-shutdown recovery.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const HDL: &str = env!("CARGO_BIN_EXE_hdl");

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("hdl-serve-net-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A running `hdl serve --listen 127.0.0.1:0` child plus the address it
/// printed. Kills the child on drop so a failed assertion cannot leak a
/// listener.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(extra: &[&str]) -> ServerProc {
        let mut cmd = Command::new(HDL);
        cmd.arg("serve")
            .arg("--listen")
            .arg("127.0.0.1:0")
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .env_remove("HDL_CRASH_AT");
        let mut child = cmd.spawn().expect("spawn hdl serve");
        // Port 0 support: the resolved address is the first stdout line.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("server prints its address")
            .expect("read address line");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("expected `listening on ADDR`, got: {line}"))
            .to_owned();
        assert!(
            !addr.ends_with(":0"),
            "port 0 must resolve to a real port: {addr}"
        );
        ServerProc { child, addr }
    }

    /// Waits for exit and returns (status ok, stderr text).
    fn wait(mut self) -> (bool, String) {
        let mut stderr = String::new();
        let status = self.child.wait().expect("wait for server");
        if let Some(mut pipe) = self.child.stderr.take() {
            let _ = pipe.read_to_string(&mut stderr);
        }
        // Disarm the drop kill: the process is already gone.
        (status.success(), stderr)
    }

    fn sigterm(&self) {
        let pid = self.child.id().to_string();
        let status = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("send SIGTERM");
        assert!(status.success(), "kill -TERM failed");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) -> String {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send newline");
        self.recv().expect("server replied")
    }

    fn recv(&mut self) -> Option<String> {
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(reply.trim_end().to_owned()),
        }
    }
}

fn assert_ok(reply: &str, context: &str) {
    assert!(
        reply.contains("\"ok\":true") || reply.contains("\"ok\": true"),
        "{context}: expected ok reply, got {reply}"
    );
}

/// One server, two tenants, quotas, and the `hdl connect` CLI —
/// drained by a client `shutdown` op at the end.
#[test]
fn multi_tenant_sessions_quotas_and_connect_cli() {
    let root = TempDir::new("mt");
    let server = ServerProc::start(&[
        "--persist-root",
        root.0.to_str().unwrap(),
        "--tenant-max-facts",
        "3",
    ]);

    // Tenant isolation: facts loaded into `alpha` are invisible to
    // `beta`, and vice versa.
    let mut a = Client::connect(&server.addr);
    let mut b = Client::connect(&server.addr);
    assert_ok(
        &a.send("{\"op\":\"open\",\"tenant\":\"alpha\"}"),
        "open alpha",
    );
    assert_ok(
        &b.send("{\"op\":\"open\",\"tenant\":\"beta\"}"),
        "open beta",
    );
    assert_ok(
        &a.send("{\"op\":\"load\",\"program\":\"p(a).\"}"),
        "load alpha",
    );
    assert_ok(
        &b.send("{\"op\":\"load\",\"program\":\"p(b).\"}"),
        "load beta",
    );
    assert!(a
        .send("{\"op\":\"query\",\"q\":\"p(a)\"}")
        .contains("\"result\":\"true\""));
    assert!(a
        .send("{\"op\":\"query\",\"q\":\"p(b)\"}")
        .contains("\"result\":\"false\""));
    assert!(b
        .send("{\"op\":\"query\",\"q\":\"p(b)\"}")
        .contains("\"result\":\"true\""));
    assert!(b
        .send("{\"op\":\"query\",\"q\":\"p(a)\"}")
        .contains("\"result\":\"false\""));

    // Quota trip: alpha holds 1 of its 3 allowed base facts; a 3-fact
    // load would exceed the cap and is refused before applying.
    let trip = a.send("{\"op\":\"load\",\"program\":\"q(x). q(y). q(z).\"}");
    assert!(trip.contains("\"kind\":\"quota\""), "quota trip: {trip}");
    assert!(a
        .send("{\"op\":\"query\",\"q\":\"q(x)\"}")
        .contains("\"result\":\"false\""));

    // Durable epochs: an explicit checkpoint bumps alpha to epoch 1.
    let cp = a.send("{\"op\":\"checkpoint\"}");
    assert_ok(&cp, "checkpoint");
    assert!(cp.contains("\"epoch\":1"), "checkpoint epoch: {cp}");

    // `hdl connect` is a working client: REPL lines translate to
    // protocol requests and replies echo as JSON lines.
    let mut cli = Command::new(HDL)
        .args(["connect", &server.addr, "--tenant", "alpha"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hdl connect");
    cli.stdin
        .take()
        .expect("piped stdin")
        .write_all(b"?- p(a).\n:quit\n")
        .expect("write to hdl connect");
    let out = cli.wait_with_output().expect("hdl connect runs");
    assert!(out.status.success(), "hdl connect exit: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"result\":\"true\""),
        "hdl connect query output: {stdout}"
    );

    // Graceful drain via the protocol: `shutdown` acks, the server
    // checkpoints every durable tenant and exits 0.
    let bye = a.send("{\"op\":\"shutdown\"}");
    assert!(bye.contains("\"draining\":true"), "shutdown ack: {bye}");
    let (ok, stderr) = server.wait();
    assert!(ok, "server exits 0 after shutdown op; stderr: {stderr}");
    assert!(
        stderr.contains("checkpointed epoch") && stderr.contains("server drained"),
        "drain narration: {stderr}"
    );
}

/// Malformed input never kills the server: truncated JSON, binary
/// garbage interleaved with real requests, and invalid UTF-8 all get
/// structured `parse` errors (one per non-empty line, in order) while
/// well-formed requests on the same connection keep working.
#[test]
fn garbage_lines_get_structured_errors_and_never_panic() {
    let server = ServerProc::start(&[]);

    // Interleave garbage with valid requests in one pipelined write and
    // check the reply stream line-by-line.
    let mut c = Client::connect(&server.addr);
    let burst = concat!(
        "{\"op\":\"hello\"}\n",
        "{\"op\":\"hel\n", // truncated mid-string
        "not json at all\n",
        "{\"op\":\"query\",\"q\":\"p(a)\"}\n", // valid but no tenant
        "{\"op\": 42}\n",                      // op of the wrong type
        "[1,2,3]\n",                           // not an object
        "{\"op\":\"hello\"}\n",
    );
    let stream = c.reader.get_mut();
    stream.write_all(burst.as_bytes()).expect("send burst");
    let expect = [
        "\"ok\":true",
        "\"kind\":\"parse\"",
        "\"kind\":\"parse\"",
        "\"kind\":\"no-tenant\"",
        "\"kind\":\"parse\"",
        "\"kind\":\"parse\"",
        "\"ok\":true",
    ];
    for (i, want) in expect.iter().enumerate() {
        let reply = c.recv().unwrap_or_else(|| panic!("reply {i} missing"));
        assert!(
            reply.contains(want),
            "reply {i}: expected {want}, got {reply}"
        );
    }

    // Raw binary garbage (every byte value, invalid UTF-8 included)
    // followed by a newline: one structured parse error, no panic.
    let mut raw = TcpStream::connect(&server.addr).expect("connect raw");
    let mut junk: Vec<u8> = (1..=255u8).filter(|&b| b != b'\n').collect();
    junk.push(b'\n');
    raw.write_all(&junk).expect("send junk");
    let mut reader = BufReader::new(raw);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read junk reply");
    assert!(
        reply.contains("\"kind\":\"parse\""),
        "binary junk reply: {reply}"
    );

    // Truncated request with no newline, then a hard disconnect: the
    // server must treat it as EOF and keep serving everyone else.
    let mut torn = TcpStream::connect(&server.addr).expect("connect torn");
    torn.write_all(b"{\"op\":\"open\",\"tenant")
        .expect("send torn");
    drop(torn);

    let mut after = Client::connect(&server.addr);
    assert_ok(&after.send("{\"op\":\"hello\"}"), "server survives abuse");
    after.send("{\"op\":\"shutdown\"}");
    let (ok, stderr) = server.wait();
    assert!(ok, "clean exit after garbage; stderr: {stderr}");
    assert!(
        !stderr.contains("panicked"),
        "server panicked on garbage input: {stderr}"
    );
}

/// A pipeline deeper than the server's sweep window is still answered
/// completely and in order — the window bounds a batch, not a client.
#[test]
fn pipeline_deeper_than_window_is_fully_answered() {
    let root = TempDir::new("deep-pipe");
    let server = ServerProc::start(&["--persist-root", root.0.to_str().unwrap()]);
    let mut c = Client::connect(&server.addr);
    assert_ok(&c.send("{\"op\":\"open\",\"tenant\":\"deep\"}"), "open");

    // 3x the PIPELINE_WINDOW of 256, written in one syscall.
    let depth = 768;
    let mut burst = String::new();
    for i in 0..depth {
        burst.push_str(&format!(
            "{{\"op\":\"load\",\"program\":\"d(x{i}).\",\"id\":{i}}}\n"
        ));
    }
    let stream = c.reader.get_mut();
    stream
        .write_all(burst.as_bytes())
        .expect("send deep pipeline");
    for i in 0..depth {
        let reply = c.recv().unwrap_or_else(|| panic!("ack {i} missing"));
        assert!(
            reply.contains("\"ok\":true") && reply.contains(&format!("\"id\":{i}")),
            "ack {i} out of order or failed: {reply}"
        );
    }
    assert!(c
        .send(&format!("{{\"op\":\"query\",\"q\":\"d(x{})\"}}", depth - 1))
        .contains("\"result\":\"true\""));

    c.send("{\"op\":\"shutdown\"}");
    let (ok, _) = server.wait();
    assert!(ok);
}

/// A request line above the server's cap draws a structured `protocol`
/// error and a hang-up instead of unbounded buffering; a slow-trickle
/// client (one byte per write) is served normally.
#[test]
fn oversized_lines_are_refused_and_slow_trickle_is_served() {
    let server = ServerProc::start(&[]);

    // Stream far past the 64 MiB line cap without ever sending a
    // newline. The server must cut in with a protocol error; depending
    // on timing our writes may also fail once it hangs up — both are
    // fine, a panic or an OOM is not.
    let mut big = TcpStream::connect(&server.addr).expect("connect big");
    big.set_nodelay(true).expect("nodelay");
    let chunk = vec![b'a'; 1 << 20];
    for _ in 0..70 {
        if big.write_all(&chunk).is_err() {
            break; // server already hung up on us mid-stream
        }
    }
    let mut reader = BufReader::new(big);
    let mut reply = String::new();
    if reader.read_line(&mut reply).is_ok() && !reply.is_empty() {
        assert!(
            reply.contains("\"kind\":\"protocol\"") && reply.contains("exceeds"),
            "oversize reply: {reply}"
        );
    }
    let mut end = String::new();
    let _ = reader.read_line(&mut end);
    assert!(end.is_empty(), "connection must close after oversize line");

    // Slow trickle: a valid request dribbled one byte at a time still
    // gets its reply.
    let mut slow = Client::connect(&server.addr);
    let request = b"{\"op\":\"hello\"}\n";
    for &byte in request {
        slow.reader
            .get_mut()
            .write_all(&[byte])
            .expect("trickle byte");
        std::thread::sleep(Duration::from_millis(2));
    }
    let reply = slow.recv().expect("trickle reply");
    assert_ok(&reply, "slow trickle served");

    let mut c = Client::connect(&server.addr);
    c.send("{\"op\":\"shutdown\"}");
    let (ok, stderr) = server.wait();
    assert!(ok, "clean exit; stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "panic under abuse: {stderr}");
}

/// Admission control: connections past `--max-connections` are refused
/// with a structured `overloaded` line and closed.
#[test]
fn admission_control_refuses_past_max_connections() {
    let server = ServerProc::start(&["--max-connections", "1"]);
    let mut held = Client::connect(&server.addr);
    assert_ok(
        &held.send("{\"op\":\"hello\"}"),
        "first connection admitted",
    );

    let mut refused = Client::connect(&server.addr);
    let refusal = refused.recv().expect("refusal line");
    assert!(
        refusal.contains("\"kind\":\"overloaded\""),
        "expected overloaded refusal, got {refusal}"
    );
    assert!(refused.recv().is_none(), "refused connection closes");

    held.send("{\"op\":\"shutdown\"}");
    let (ok, _) = server.wait();
    assert!(ok, "clean exit after shutdown");
}

/// SIGTERM drains: in-flight state is checkpointed and a restarted
/// server recovers every acked mutation at the bumped epoch.
#[test]
fn sigterm_drains_checkpoints_and_recovery_restores_tenants() {
    let root = TempDir::new("sigterm");
    let flags: &[&str] = &["--persist-root", root.0.to_str().unwrap()];
    let server = ServerProc::start(flags);
    let mut c = Client::connect(&server.addr);
    assert_ok(&c.send("{\"op\":\"open\",\"tenant\":\"world\"}"), "open");
    assert_ok(
        &c.send("{\"op\":\"load\",\"program\":\"edge(a, b). tc(X, Y) :- edge(X, Y).\"}"),
        "load",
    );
    assert_ok(
        &c.send("{\"op\":\"assume\",\"facts\":\"edge(b, c)\"}"),
        "assume",
    );

    server.sigterm();
    let (ok, stderr) = server.wait();
    assert!(ok, "clean exit on SIGTERM; stderr: {stderr}");
    assert!(
        stderr.contains("world: checkpointed epoch 1 on shutdown"),
        "shutdown checkpoint: {stderr}"
    );

    // A fresh server over the same root recovers the tenant — base
    // facts, rules, and the assumption frame — at the new epoch.
    let server = ServerProc::start(flags);
    let mut c = Client::connect(&server.addr);
    let open = c.send("{\"op\":\"open\",\"tenant\":\"world\"}");
    assert_ok(&open, "reopen");
    assert!(open.contains("\"epoch\":1"), "recovered epoch: {open}");
    assert!(c
        .send("{\"op\":\"query\",\"q\":\"tc(a, b)\"}")
        .contains("\"result\":\"true\""));
    assert!(c
        .send("{\"op\":\"query\",\"q\":\"edge(b, c)\"}")
        .contains("\"result\":\"true\""));
    let pop = c.send("{\"op\":\"pop\"}");
    assert_ok(&pop, "assumption frame survived recovery");
    c.send("{\"op\":\"shutdown\"}");
    let (ok, _) = server.wait();
    assert!(ok);
}
