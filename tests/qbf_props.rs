//! Property test for the QBF encoding (E11): on random prenex-CNF
//! formulas with up to three quantifier blocks, the compiled rulebase
//! must agree with the direct evaluator, on the top-down engine and on
//! the paper's PROVE procedures.

use hdl_core::engine::{ProveEngine, TopDownEngine};
use hdl_encodings::qbf::{encode_qbf, Lit, Qbf, Quant};
use proptest::prelude::*;

fn lit_strategy(num_vars: usize) -> impl Strategy<Value = Lit> {
    (0..num_vars, any::<bool>()).prop_map(|(var, positive)| Lit { var, positive })
}

fn clauses_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Vec<Lit>>> {
    proptest::collection::vec(
        proptest::collection::vec(lit_strategy(num_vars), 1..=3),
        0..=4,
    )
}

/// Splits `0..num_vars` into 1..=3 consecutive blocks with alternating or
/// arbitrary quantifiers.
fn prefix_strategy(num_vars: usize) -> impl Strategy<Value = Vec<(Quant, Vec<usize>)>> {
    (1..=3usize, proptest::collection::vec(any::<bool>(), 3)).prop_map(move |(blocks, quants)| {
        let blocks = blocks.min(num_vars);
        let per = num_vars / blocks;
        let mut out = Vec::new();
        let mut start = 0;
        for (b, &q) in quants.iter().enumerate().take(blocks) {
            let end = if b == blocks - 1 {
                num_vars
            } else {
                start + per
            };
            let quant = if q { Quant::Exists } else { Quant::Forall };
            out.push((quant, (start..end).collect()));
            start = end;
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encoding_agrees_with_evaluator(
        num_vars in 1..=4usize,
        prefix_seed in prefix_strategy(4),
        clauses in clauses_strategy(4),
    ) {
        // Restrict prefix and clauses to the chosen variable count.
        let prefix: Vec<(Quant, Vec<usize>)> = prefix_seed
            .into_iter()
            .filter_map(|(q, vars)| {
                let vars: Vec<usize> = vars.into_iter().filter(|&v| v < num_vars).collect();
                (!vars.is_empty()).then_some((q, vars))
            })
            .collect();
        prop_assume!(!prefix.is_empty());
        let covered: Vec<usize> = prefix.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        let clauses: Vec<Vec<Lit>> = clauses
            .into_iter()
            .map(|c| c.into_iter().filter(|l| covered.contains(&l.var)).collect::<Vec<_>>())
            .filter(|c: &Vec<Lit>| !c.is_empty())
            .collect();

        let qbf = Qbf { prefix, clauses };
        prop_assume!(qbf.validate().is_ok());
        let expected = qbf.eval();
        let enc = encode_qbf(&qbf).unwrap();
        let mut td = TopDownEngine::new(&enc.rulebase, &enc.database).unwrap();
        prop_assert_eq!(td.holds(&enc.sat_query()).unwrap(), expected, "{:?}", qbf);
        let mut pe = ProveEngine::new(&enc.rulebase, &enc.database)
            .expect("QBF encodings are linearly stratified");
        prop_assert_eq!(pe.holds(&enc.sat_query()).unwrap(), expected, "prove: {:?}", qbf);
    }
}
