//! Semi-naive equivalence under armed failpoints.
//!
//! Compiled only with `--features failpoints`. The fault-tolerance suite
//! in `crates/service` checks that injected faults *degrade* the service;
//! this one checks the complementary engine-level property: faults that
//! do not abort a fixpoint (delays on worker threads) must not change the
//! computed model, and faults that do (spurious resource errors) must
//! surface as structured errors — never as a wrong model.
#![cfg(feature = "failpoints")]

use hdl_base::failpoint::{self, FaultSpec};
use hdl_base::Database;
use hdl_base::SymbolTable;
use hdl_core::engine::{BottomUpEngine, MagicEngine, NaiveEngine, ProveEngine};
use hdl_core::parser::{parse_program, parse_query, split_facts};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The failpoint registry is process-global; tests must not interleave.
struct FaultLab {
    _guard: MutexGuard<'static, ()>,
}

impl FaultLab {
    fn begin() -> Self {
        static GUARD: Mutex<()> = Mutex::new(());
        let guard = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        failpoint::clear();
        FaultLab { _guard: guard }
    }
}

impl Drop for FaultLab {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

/// A dense transitive closure whose delta rounds are wide enough to
/// spawn worker threads, plus a variable-bounded hypothetical branch so
/// the impure path runs too.
fn workload(syms: &mut SymbolTable) -> (hdl_core::ast::Rulebase, Database) {
    let mut src = String::from(
        "tc(X, Y) :- edge(X, Y).
         tc(X, Z) :- tc(X, Y), edge(Y, Z).
         promoted(X) :- special(X), tc(n0, X)[add: edge(n0, X)].\n",
    );
    for i in 0..16u32 {
        for j in 0..16u32 {
            if i != j && (3 * i + 5 * j) % 4 == 0 {
                src.push_str(&format!("edge(n{i}, n{j}).\n"));
            }
        }
    }
    src.push_str("special(n3). special(n5).\n");
    let program = parse_program(&src, syms).unwrap();
    let (rb, facts) = split_facts(program);
    let db: Database = facts.into_iter().collect();
    (rb, db)
}

#[test]
fn delays_on_worker_firings_leave_the_model_unchanged() {
    let _lab = FaultLab::begin();
    let mut syms = SymbolTable::new();
    let (rb, db) = workload(&mut syms);
    let expected = NaiveEngine::new(&rb, &db).unwrap().model().unwrap();
    // Delays perturb worker scheduling but not semantics.
    failpoint::configure("bottomup::fire", FaultSpec::delaying(1, 5), 11);
    let got = BottomUpEngine::new(&rb, &db)
        .unwrap()
        .with_parallelism(4)
        .model()
        .unwrap();
    assert_eq!(expected, got);
    let (hits, _) = failpoint::counters("bottomup::fire");
    assert!(hits > 0, "the armed site must actually be exercised");
}

#[test]
fn injected_errors_surface_structurally_not_as_wrong_models() {
    let _lab = FaultLab::begin();
    let mut syms = SymbolTable::new();
    let (rb, db) = workload(&mut syms);
    failpoint::configure("bottomup::fire", FaultSpec::erroring(1).fires(1), 13);
    let err = BottomUpEngine::new(&rb, &db)
        .unwrap()
        .with_parallelism(4)
        .model()
        .unwrap_err();
    assert!(
        matches!(err, hdl_base::Error::ResourceExhausted { .. }),
        "{err}"
    );
    // The spent failpoint stops firing; a fresh engine recovers fully.
    let expected = NaiveEngine::new(&rb, &db).unwrap().model().unwrap();
    let got = BottomUpEngine::new(&rb, &db)
        .unwrap()
        .with_parallelism(4)
        .model()
        .unwrap();
    assert_eq!(expected, got);
}

#[test]
fn magic_rewrite_errors_degrade_to_semi_naive_not_wrong_answers() {
    let _lab = FaultLab::begin();
    let mut syms = SymbolTable::new();
    let (rb, db) = workload(&mut syms);
    let q = parse_query("?- tc(n0, n15).", &mut syms).unwrap();
    let expected = NaiveEngine::new(&rb, &db).unwrap().holds(&q).unwrap();
    // An injected rewrite failure must route the query through the
    // plain semi-naive fallback — same verdict, no panic.
    failpoint::configure("magic::rewrite", FaultSpec::erroring(1).fires(1), 19);
    let mut armed = MagicEngine::new(&rb, &db).unwrap();
    assert_eq!(expected, armed.holds(&q).unwrap());
    let (hits, _) = failpoint::counters("magic::rewrite");
    assert!(hits > 0, "the armed site must actually be exercised");
    assert!(
        armed.stats().unbound_fallbacks > 0,
        "the failed rewrite must be counted as a fallback"
    );
    assert_eq!(armed.stats().magic_rules, 0);
    // The spent failpoint stops firing; a fresh engine rewrites again.
    let mut fresh = MagicEngine::new(&rb, &db).unwrap();
    assert_eq!(expected, fresh.holds(&q).unwrap());
    assert!(fresh.stats().magic_rules > 0);
}

#[test]
fn prove_delta_equivalence_holds_with_armed_delays() {
    let _lab = FaultLab::begin();
    let mut syms = SymbolTable::new();
    let (rb, db) = workload(&mut syms);
    let q = parse_query("?- tc(n0, n15).", &mut syms).unwrap();
    let clean = ProveEngine::new(&rb, &db).unwrap().holds(&q).unwrap();
    failpoint::configure("prove::delta_fire", FaultSpec::delaying(1, 5), 17);
    let armed = ProveEngine::new(&rb, &db)
        .unwrap()
        .with_parallelism(4)
        .holds(&q)
        .unwrap();
    assert_eq!(clean, armed);
    let (hits, _) = failpoint::counters("prove::delta_fire");
    assert!(hits > 0, "the armed site must actually be exercised");
}
