//! Robustness: the parser never panics, evaluation is insensitive to
//! fact-insertion order, and resource limits fail cleanly.

use hypothetical_datalog::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary input never panics the parser — it parses or errors.
    #[test]
    fn parser_total_on_arbitrary_strings(src in "\\PC{0,200}") {
        let mut syms = SymbolTable::new();
        let _ = parse_program(&src, &mut syms);
        let _ = parse_query(&src, &mut syms);
    }

    /// Arbitrary *token-shaped* soup: higher parse-success density, still
    /// no panics, and anything that parses also pretty-prints and
    /// re-parses.
    #[test]
    fn parser_total_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("p".to_string()),
                Just("q(X)".to_string()),
                Just(":-".to_string()),
                Just("~".to_string()),
                Just("[add:".to_string()),
                Just("]".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("X".to_string()),
                Just("abc".to_string()),
            ],
            0..25,
        )
    ) {
        let src = toks.join(" ");
        let mut syms = SymbolTable::new();
        if let Ok(rb) = parse_program(&src, &mut syms) {
            let printed = pretty::rulebase(&rb, &syms);
            let mut syms2 = SymbolTable::new();
            let rb2 = parse_program(&printed, &mut syms2).expect("printed form parses");
            prop_assert_eq!(rb.len(), rb2.len());
        }
    }

    /// Shuffling the EDB insertion order never changes any verdict.
    #[test]
    fn insertion_order_is_irrelevant(perm in proptest::sample::subsequence(
        (0usize..6).collect::<Vec<_>>(), 0..=6)
    ) {
        let rules_src = "
            even :- select(X), odd[add: b(X)].
            odd :- select(X), even[add: b(X)].
            even :- ~select(X).
            select(X) :- a(X), ~b(X).
        ";
        // Baseline: facts in index order; permuted: chosen subset first,
        // remainder after — same set either way.
        let all: Vec<usize> = (0..6).collect();
        let mut order = perm.clone();
        for i in &all {
            if !order.contains(i) {
                order.push(*i);
            }
        }
        let build = |order: &[usize]| -> Session {
            let mut s = Session::new();
            s.load(rules_src).unwrap();
            for &i in order {
                s.load(&format!("a(t{i}).")).unwrap();
            }
            s
        };
        let mut base = build(&all);
        let mut shuffled = build(&order);
        prop_assert_eq!(base.ask("?- even.").unwrap(), shuffled.ask("?- even.").unwrap());
        prop_assert_eq!(base.ask("?- odd.").unwrap(), shuffled.ask("?- odd.").unwrap());
    }
}

#[test]
fn expansion_limit_fails_cleanly() {
    // Hamiltonian search on a dense graph with a tiny expansion budget.
    let mut syms = SymbolTable::new();
    let mut src = String::from(
        "yes :- node(X), path(X)[add: pnode(X)].
         path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
         path(X) :- ~select(Y).
         select(Y) :- node(Y), ~pnode(Y).\n",
    );
    for i in 0..6 {
        src.push_str(&format!("node(n{i}).\n"));
        for j in 0..6 {
            if i != j {
                src.push_str(&format!("edge(n{i}, n{j}).\n"));
            }
        }
    }
    let program = parse_program(&src, &mut syms).unwrap();
    let (rules, facts) = split_facts(program);
    let db: Database = facts.into_iter().collect();
    let mut eng = TopDownEngine::new(&rules, &db)
        .unwrap()
        .with_limits(Limits {
            max_expansions: 5,
            max_databases: 1_000_000,
        });
    let q = parse_query("?- yes.", &mut syms).unwrap();
    let err = eng.holds(&q).unwrap_err();
    assert!(err.to_string().contains("limit exceeded"), "{err}");
}

#[test]
fn database_limit_fails_cleanly() {
    let mut syms = SymbolTable::new();
    let mut src = String::from(
        "even :- select(X), odd[add: b(X)].
         odd :- select(X), even[add: b(X)].
         even :- ~select(X).
         select(X) :- a(X), ~b(X).\n",
    );
    for i in 0..8 {
        src.push_str(&format!("a(t{i}).\n"));
    }
    let program = parse_program(&src, &mut syms).unwrap();
    let (rules, facts) = split_facts(program);
    let db: Database = facts.into_iter().collect();
    let mut eng = TopDownEngine::new(&rules, &db)
        .unwrap()
        .with_limits(Limits {
            max_expansions: u64::MAX,
            max_databases: 3,
        });
    let q = parse_query("?- even.", &mut syms).unwrap();
    assert!(eng.holds(&q).is_err());
}

#[test]
fn errors_are_printable_and_typed() {
    let mut syms = SymbolTable::new();
    let err = parse_program("p :- ~q[add: r].", &mut syms).unwrap_err();
    assert!(matches!(err, hdl_base::Error::Parse { .. }));
    let err = parse_program("p(a).\np(a, b).", &mut syms).unwrap_err();
    assert!(matches!(err, hdl_base::Error::ArityMismatch { .. }));
    let rb = parse_program("a :- ~b.\nb :- ~a.", &mut syms).unwrap();
    let err = TopDownEngine::new(&rb, &Database::new()).err().unwrap();
    assert!(matches!(err, hdl_base::Error::NotStratified { .. }));
}

#[test]
fn deep_chains_evaluate_given_proportional_stack() {
    // The top-down engine's recursion depth is proportional to proof
    // depth (documented); a 1500-link chain of hypothetical insertions
    // needs more than the 2 MiB default *test-thread* stack in debug
    // builds, so give it a worker with room — the pattern a caller with
    // deep programs should use.
    let handle = std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(|| {
            let n = 1500;
            let mut src = String::new();
            for i in 1..=n {
                src.push_str(&format!("a{i} :- a{}[add: b{i}].\n", i + 1));
            }
            src.push_str(&format!("a{} :- b1.\n", n + 1));
            let mut s = Session::new();
            s.load(&src).unwrap();
            s.ask("?- a1.").unwrap()
        })
        .expect("spawn worker");
    assert!(handle.join().expect("no panic"));
}
