//! E7: the §5.2 PROVE procedures — agreement with the reference engines
//! and the Theorem 3 goal-sequence bound.

use hypothetical_datalog::prelude::*;

fn setup(src: &str) -> (Rulebase, Database, SymbolTable) {
    let mut syms = SymbolTable::new();
    let program = parse_program(src, &mut syms).expect("parses");
    let (rules, facts) = split_facts(program);
    (rules, facts.into_iter().collect(), syms)
}

#[test]
fn sigma_expansions_respect_theorem_3_bound() {
    // Example 6 parity: Σ₁ = {even, odd} rules → k₁ = 1 equivalence
    // class; k₀ = max arity = 1. Theorem 3 bounds any repetition-free
    // goal sequence by O(n^{2·k₁·k₀}) = O(n²). Our engine memoizes, so
    // the number of *distinct* Σ expansions must come in under c·n².
    for n in [2usize, 4, 6, 8] {
        let mut src = String::from(
            "even :- select(X), odd[add: b(X)].
             odd :- select(X), even[add: b(X)].
             even :- ~select(X).
             select(X) :- a(X), ~b(X).\n",
        );
        for i in 0..n {
            src.push_str(&format!("a(t{i}).\n"));
        }
        let (rules, db, mut syms) = setup(&src);
        let mut pe = ProveEngine::new(&rules, &db).expect("linearly stratified");
        let q = parse_query("?- even.", &mut syms).unwrap();
        let verdict = pe.holds(&q).unwrap();
        assert_eq!(verdict, n % 2 == 0);
        let expansions = pe.stats().sigma_expansions[0];
        let bound = 4 * (n as u64 + 1).pow(2);
        assert!(
            expansions <= bound,
            "n={n}: {expansions} Σ-expansions exceeds the Theorem 3 budget {bound}"
        );
    }
}

#[test]
fn prove_agrees_with_reference_on_example_9() {
    // The canonical 3-stratum rulebase, with base facts toggling each
    // stratum's outcome.
    let src = "
        a3 :- b3, a3[add: c3].
        a3 :- d3, ~a2.
        a2 :- b2, a2[add: c2].
        a2 :- d2, ~a1.
        a1 :- b1, a1[add: c1].
        a1 :- d1.
        d3. d2.
    ";
    let (rules, db, mut syms) = setup(src);
    let mut pe = ProveEngine::new(&rules, &db).unwrap();
    assert_eq!(pe.stratification().num_strata(), 3);
    let mut td = TopDownEngine::new(&rules, &db).unwrap();
    let mut bu = BottomUpEngine::new(&rules, &db).unwrap();
    for atom in ["a1", "a2", "a3"] {
        let q = parse_query(&format!("?- {atom}."), &mut syms).unwrap();
        let p = pe.holds(&q).unwrap();
        let t = td.holds(&q).unwrap();
        let b = bu.holds(&q).unwrap();
        assert_eq!(p, t, "{atom}");
        assert_eq!(p, b, "{atom}");
    }
    // d1 absent → a1 false → ~a1 holds → a2 true (d2 present) → a3 false.
    let expect = [("a1", false), ("a2", true), ("a3", false)];
    for (atom, want) in expect {
        let q = parse_query(&format!("?- {atom}."), &mut syms).unwrap();
        assert_eq!(pe.holds(&q).unwrap(), want, "{atom}");
    }
}

#[test]
fn delta_oracle_chain_through_hypothetical_premises() {
    // A Δ₂ rule with a hypothetical premise over Σ₁ — the exact shape
    // PROVE_Δᵢ's TEST⁰ resolves through PROVE_Σᵢ₋₁ (§5.2.2).
    let src = "
        reach :- step[add: key].
        step :- step2[add: key2].
        step2 :- key, key2.
        blocked :- ~reach.
        verdict :- reach[add: extra], ~blocked.
    ";
    let (rules, db, mut syms) = setup(src);
    let mut pe = ProveEngine::new(&rules, &db).unwrap();
    for (q, want) in [("reach", true), ("blocked", false), ("verdict", true)] {
        let query = parse_query(&format!("?- {q}."), &mut syms).unwrap();
        assert_eq!(pe.holds(&query).unwrap(), want, "{q}");
    }
    assert!(pe.stats().oracle_calls > 0, "TEST⁰ must hit the oracle");
}

#[test]
fn prove_rejects_non_linear_rulebases() {
    let src = "a :- b, a[add: c1], a[add: c2].";
    let (rules, db, _) = setup(src);
    assert!(ProveEngine::new(&rules, &db).is_err());
}

#[test]
fn delta_substrata_negation_inside_a_segment() {
    // Intra-Δ stratified negation: winner depends on loser which depends
    // on base — all within Δ₁ sub-strata.
    let src = "
        base(x1).
        loser(X) :- base(X), ~promoted(X).
        promoted(X) :- star(X).
        winner(X) :- base(X), ~loser(X).
    ";
    let (rules, db, mut syms) = setup(src);
    let mut pe = ProveEngine::new(&rules, &db).unwrap();
    let loser = parse_query("?- loser(x1).", &mut syms).unwrap();
    let winner = parse_query("?- winner(x1).", &mut syms).unwrap();
    assert!(pe.holds(&loser).unwrap());
    assert!(!pe.holds(&winner).unwrap());

    // Now promote x1: it stops losing and starts winning.
    let src2 = format!("{src}\nstar(x1).");
    let (rules2, db2, mut syms2) = setup(&src2);
    let mut pe2 = ProveEngine::new(&rules2, &db2).unwrap();
    let loser = parse_query("?- loser(x1).", &mut syms2).unwrap();
    let winner = parse_query("?- winner(x1).", &mut syms2).unwrap();
    assert!(!pe2.holds(&loser).unwrap());
    assert!(pe2.holds(&winner).unwrap());
}

#[test]
fn hamiltonian_on_prove_engine() {
    let src = "
        yes :- node(X), path(X)[add: pnode(X)].
        path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
        path(X) :- ~select(Y).
        select(Y) :- node(Y), ~pnode(Y).
        node(a). node(b). node(c).
        edge(a, b). edge(b, c).
    ";
    let (rules, db, mut syms) = setup(src);
    let mut pe = ProveEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- yes.", &mut syms).unwrap();
    assert!(pe.holds(&q).unwrap());
    assert_eq!(pe.stratification().num_strata(), 1);
}
