//! Cross-engine integration tests on the paper's running examples.
//!
//! Every query is evaluated by all three engines — bottom-up (reference),
//! top-down (tabled), and the §5.2 PROVE procedures — and the verdicts
//! must agree with each other and with the paper's stated semantics.

use hdl_base::{Database, SymbolTable};
use hdl_core::ast::Rulebase;
use hdl_core::engine::{BottomUpEngine, ProveEngine, TopDownEngine};
use hdl_core::parser::{parse_program, parse_query, split_facts};

/// Parses rules+facts, evaluates `query` on all three engines, and checks
/// the expected verdict.
fn check(src: &str, query_src: &str, expected: bool) {
    let (verdicts, _) = verdicts(src, query_src);
    for (engine, v) in verdicts {
        assert_eq!(
            v, expected,
            "{engine} disagrees on `{query_src}` (expected {expected})"
        );
    }
}

fn verdicts(src: &str, query_src: &str) -> (Vec<(&'static str, bool)>, SymbolTable) {
    verdicts_with(src, query_src, true)
}

/// Like [`check`], but skips the bottom-up engine. Needed for rulebases
/// whose hypothetical recursion class is non-linear (e.g. Example 3's
/// grad/within1 cycle): their *full* perfect models genuinely range over
/// the exponential lattice of added facts, which goal-directed engines
/// avoid. This is the regime §4's linear stratification exists to exclude.
fn check_goal_directed(src: &str, query_src: &str, expected: bool) {
    let (verdicts, _) = verdicts_with(src, query_src, false);
    for (engine, v) in verdicts {
        assert_eq!(
            v, expected,
            "{engine} disagrees on `{query_src}` (expected {expected})"
        );
    }
}

fn verdicts_with(
    src: &str,
    query_src: &str,
    include_bottom_up: bool,
) -> (Vec<(&'static str, bool)>, SymbolTable) {
    let mut syms = SymbolTable::new();
    let rb_all = parse_program(src, &mut syms).expect("program parses");
    let (rb, facts): (Rulebase, _) = split_facts(rb_all);
    let db: Database = facts.into_iter().collect();
    let query = parse_query(query_src, &mut syms).expect("query parses");

    let mut out = Vec::new();
    if include_bottom_up {
        let mut bu = BottomUpEngine::new(&rb, &db).expect("stratified");
        out.push(("bottom-up", bu.holds(&query).expect("bu eval")));
    }
    let mut td = TopDownEngine::new(&rb, &db).expect("stratified");
    out.push(("top-down", td.holds(&query).expect("td eval")));
    // PROVE only applies to linearly stratified rulebases.
    if let Ok(mut pe) = ProveEngine::new(&rb, &db) {
        out.push(("prove", pe.holds(&query).expect("prove eval")));
    }
    (out, syms)
}

// ---------------------------------------------------------------- §2 ---

const UNIVERSITY: &str = "
    % Database
    take(tony, cs250).
    take(tony, his101).
    take(alice, his101).
    take(alice, eng201).
    take(bob, cs452).

    % grad(S): S is eligible for graduation.
    grad(S) :- take(S, his101), take(S, eng201).
";

#[test]
fn example_1_hypothetical_graduation_query() {
    // 'If Tony took eng201, would he be eligible to graduate?'
    check(UNIVERSITY, "?- grad(tony)[add: take(tony, eng201)].", true);
    // Adding an unrelated course does not help.
    check(UNIVERSITY, "?- grad(tony)[add: take(tony, cs452)].", false);
    // Alice already graduates without hypotheses.
    check(UNIVERSITY, "?- grad(alice).", true);
    check(UNIVERSITY, "?- grad(tony).", false);
}

#[test]
fn example_2_exists_course_query() {
    // 'Could S graduate if they took one more course?' — ∃C.
    check(UNIVERSITY, "?- grad(tony)[add: take(tony, C)].", true);
    // Bob has taken only cs452; one more course cannot give him both
    // his101 and eng201.
    check(UNIVERSITY, "?- grad(bob)[add: take(bob, C)].", false);
}

#[test]
fn example_3_within_one_course_rules() {
    let src = "
        take(s1, m1).
        take(s1, p1).
        take(s1, p2).
        take(s2, m1).

        grad(S, math) :- take(S, m1), take(S, m2).
        grad(S, phys) :- take(S, p1), take(S, p2).
        within1(S, D) :- grad(S, D)[add: take(S, C)].
        grad(S, mathphys) :- within1(S, math), within1(S, phys).
    ";
    // grad/within1 are mutually recursive through a hypothetical premise
    // AND the mathphys rule is non-linear — exactly the combination
    // Definition 9 excludes. Full bottom-up models would walk the
    // exponential take-lattice, so only the goal-directed engines apply.
    // s1 is one course from math (needs m2) and already has phys.
    check_goal_directed(src, "?- grad(s1, mathphys).", true);
    // s2 is one course from math but two from phys.
    check_goal_directed(src, "?- grad(s2, mathphys).", false);
    check_goal_directed(src, "?- within1(s1, math).", true);
    check_goal_directed(src, "?- within1(s2, phys).", false);
}

// ---------------------------------------------------------------- §3 ---

#[test]
fn example_4_chained_hypothetical_adds() {
    // A_i provable iff B_i..B_n all inserted; D requires every B.
    let src = "
        a1 :- a2[add: b1].
        a2 :- a3[add: b2].
        a3 :- a4[add: b3].
        a4 :- d.
        d :- b1, b2, b3.
    ";
    check(src, "?- a1.", true);
    check(src, "?- a2.", false); // b1 never added on this path
    check(src, "?- a2[add: b1].", true);
    check(src, "?- a4.", false);
    check(src, "?- a4[add: b1, b2, b3].", true);
}

#[test]
fn example_5_walking_a_linear_order() {
    // Walk FIRST/NEXT/LAST, adding B(x) at every element; D needs all.
    let src = "
        first(e1).
        next(e1, e2).
        next(e2, e3).
        last(e3).

        a :- first(X), ap(X)[add: b(X)].
        ap(X) :- next(X, Y), ap(Y)[add: b(Y)].
        ap(X) :- last(X), d.
        d :- b(e1), b(e2), b(e3).
    ";
    check(src, "?- a.", true);
    // Starting mid-chain misses b(e1).
    check(src, "?- ap(e2)[add: b(e2)].", false);
}

// ------------------------------------------------------- §3.1 parity ---

fn parity_src(n: usize) -> String {
    let mut src = String::from(
        "even :- select(X), odd[add: b(X)].
         odd :- select(X), even[add: b(X)].
         even :- ~select(X).
         select(X) :- a(X), ~b(X).\n",
    );
    for i in 0..n {
        src.push_str(&format!("a(t{i}).\n"));
    }
    src
}

#[test]
fn example_6_parity_counts_relation_size() {
    for n in 0..=6 {
        let src = parity_src(n);
        check(&src, "?- even.", n % 2 == 0);
        check(&src, "?- odd.", n % 2 == 1);
    }
}

#[test]
fn example_6_parity_with_binary_tuples() {
    // Same rulebase over a binary relation.
    let src = "
        even :- select(X, Y), odd[add: b(X, Y)].
        odd :- select(X, Y), even[add: b(X, Y)].
        even :- ~select(X, Y).
        select(X, Y) :- a(X, Y), ~b(X, Y).
        a(p, q).
        a(q, p).
        a(p, p).
    ";
    check(src, "?- even.", false);
    check(src, "?- odd.", true);
}

// ----------------------------------------------- §3.1 Hamiltonian path ---

fn hamiltonian_src(nodes: &[&str], edges: &[(&str, &str)]) -> String {
    let mut src = String::from(
        "yes :- node(X), path(X)[add: pnode(X)].
         path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
         path(X) :- ~select(Y).
         select(Y) :- node(Y), ~pnode(Y).\n",
    );
    for n in nodes {
        src.push_str(&format!("node({n}).\n"));
    }
    for (a, b) in edges {
        src.push_str(&format!("edge({a}, {b}).\n"));
    }
    src
}

#[test]
fn example_7_hamiltonian_path() {
    // A directed 4-chain has a Hamiltonian path.
    let chain = hamiltonian_src(
        &["v1", "v2", "v3", "v4"],
        &[("v1", "v2"), ("v2", "v3"), ("v3", "v4")],
    );
    check(&chain, "?- yes.", true);

    // A star (all edges out of the center) does not, with ≥3 leaves.
    let star = hamiltonian_src(
        &["c", "l1", "l2", "l3"],
        &[("c", "l1"), ("c", "l2"), ("c", "l3")],
    );
    check(&star, "?- yes.", false);

    // A single vertex has the trivial path.
    let single = hamiltonian_src(&["v"], &[]);
    check(&single, "?- yes.", true);

    // Disconnected pair: no.
    let pair = hamiltonian_src(&["u", "v"], &[]);
    check(&pair, "?- yes.", false);

    // v->u, v->w: any Hamiltonian path must start at v and then visit u
    // and w, but u and w are not connected — so NO path exists.
    let wrong_dir = hamiltonian_src(&["u", "v", "w"], &[("v", "u"), ("v", "w")]);
    check(&wrong_dir, "?- yes.", false);
}

#[test]
fn example_8_negated_yes_needs_second_stratum() {
    let mut src = hamiltonian_src(&["c", "l1", "l2"], &[("c", "l1"), ("c", "l2")]);
    src.push_str("no :- ~yes.\n");
    check(&src, "?- yes.", false);
    check(&src, "?- no.", true);

    let mut src2 = hamiltonian_src(&["a", "b"], &[("a", "b")]);
    src2.push_str("no :- ~yes.\n");
    check(&src2, "?- yes.", true);
    check(&src2, "?- no.", false);
}

// ------------------------------------------------------- corner cases ---

#[test]
fn hypothetical_add_of_already_present_fact_is_noop() {
    let src = "
        p(a).
        q :- r[add: p(a)].
        r :- p(a).
    ";
    check(src, "?- q.", true);
    check(src, "?- r.", true);
}

#[test]
fn negation_sees_hypothetical_additions() {
    // blocked is true in the base DB, but adding flag changes ~flag.
    let src = "
        ok :- ~flag.
        bad :- ok[add: flag].
    ";
    check(src, "?- ok.", true);
    check(src, "?- bad.", false);
}

#[test]
fn multiple_adds_in_one_premise() {
    let src = "
        goal :- target[add: x, y, z].
        target :- x, y, z.
    ";
    check(src, "?- goal.", true);
    check(src, "?- target.", false);
}

#[test]
fn recursive_horn_rules_with_cycles_terminate() {
    // Cyclic graph reachability (plain Horn inside the hypothetical engine).
    let src = "
        edge(a, b). edge(b, c). edge(c, a). edge(c, d).
        reach(X, Y) :- edge(X, Y).
        reach(X, Z) :- edge(X, Y), reach(Y, Z).
    ";
    check(src, "?- reach(a, d).", true);
    check(src, "?- reach(d, a).", false);
    check(src, "?- reach(a, a).", true);
}

#[test]
fn mixed_hypothetical_and_horn_recursion() {
    // Reachability where an extra edge is granted hypothetically.
    let src = "
        edge(a, b). edge(c, d).
        reach(X, Y) :- edge(X, Y).
        reach(X, Z) :- edge(X, Y), reach(Y, Z).
        bridge(X, Y) :- reach(a, d)[add: edge(X, Y)].
    ";
    check(src, "?- reach(a, d).", false);
    // Adding edge(b, c) bridges the components.
    check(src, "?- bridge(b, c).", true);
    // Adding edge(d, a) does not.
    check(src, "?- bridge(d, a).", false);
    // ∃ bridge: yes.
    check(src, "?- bridge(X, Y).", true);
}

#[test]
fn answers_agree_between_engines() {
    let mut syms = SymbolTable::new();
    let rb_all = parse_program(
        "edge(a, b). edge(b, c). edge(c, d).
         reach(X, Y) :- edge(X, Y).
         reach(X, Z) :- edge(X, Y), reach(Y, Z).",
        &mut syms,
    )
    .unwrap();
    let (rb, facts) = split_facts(rb_all);
    let db: Database = facts.into_iter().collect();
    let reach = syms.lookup("reach").unwrap();
    let pattern = hdl_base::Atom::new(
        reach,
        vec![
            hdl_base::Term::Var(hdl_base::Var(0)),
            hdl_base::Term::Var(hdl_base::Var(1)),
        ],
    );
    let mut bu = BottomUpEngine::new(&rb, &db).unwrap();
    let mut td = TopDownEngine::new(&rb, &db).unwrap();
    let a = bu.answers(&pattern).unwrap();
    let b = td.answers(&pattern).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.len(), 6, "chain of 4 nodes: 3+2+1 reachable pairs");
}

#[test]
fn empty_rulebase_membership_only() {
    check("p(a).", "?- p(a).", true);
    check("p(a).", "?- p(b).", false);
    check("p(a).", "?- p(X).", true);
    check("p(a).", "?- ~p(X).", false);
    check("p(a).", "?- q(a)[add: q(a)].", true);
}

#[test]
fn nonlinear_hypothetical_rules_are_supported_outside_prove() {
    // Rule form (2) from §4: multiple recursive hypothetical premises —
    // the PSPACE fragment of the companion paper [4]. Linear
    // stratification rejects it (so ProveEngine declines), but the
    // bottom-up and top-down engines evaluate it, and agree.
    //
    // AND-branching over a binary tree: t(X) holds when both subtrees
    // check out, each branch recording its own `visited` fact.
    let src = "
        left(root, l). right(root, r).
        leaf(l). leaf(r).
        t(X) :- leaf(X).
        t(X) :- left(X, Y), right(X, Z),
                t(Y)[add: visited(X)], t(Z)[add: visited(X)].
    ";
    check(src, "?- t(root).", true);

    // Remove one leaf: the right branch dies, so the conjunction fails.
    let src_fail = "
        left(root, l). right(root, r).
        leaf(l).
        t(X) :- leaf(X).
        t(X) :- left(X, Y), right(X, Z),
                t(Y)[add: visited(X)], t(Z)[add: visited(X)].
    ";
    check(src_fail, "?- t(root).", false);

    // ProveEngine refuses: the class mixes hypothetical recursion with
    // non-linearity.
    let mut syms = SymbolTable::new();
    let rb_all = parse_program(src, &mut syms).unwrap();
    let (rb, facts) = split_facts(rb_all);
    let db: Database = facts.into_iter().collect();
    assert!(ProveEngine::new(&rb, &db).is_err());
}

#[test]
fn degenerate_self_hypothetical_is_not_self_justifying() {
    // Subtle least-fixpoint pin: in `a :- a[add: c1], a[add: c2].`, the
    // branch a@{c1} expands to a[add: c1]@{c1} — the SAME goal in the
    // SAME database. A proof may not cite itself, so no amount of
    // re-adding already-present facts manufactures a derivation:
    //   a@{c1,c2} holds via goal, but a@{c1} would need a@{c1} itself.
    let src = "
        a :- goal.
        a :- a[add: c1], a[add: c2].
        goal :- c1, c2.
    ";
    check(src, "?- a.", false);
    check(src, "?- a[add: c1, c2].", true);
    check(src, "?- a[add: c1].", false);
}

#[test]
fn prove_engine_answers_matches_other_engines() {
    let mut syms = SymbolTable::new();
    let rb_all = parse_program(
        "e(a, b). e(b, c). e(c, d).
         tc(X, Y) :- e(X, Y).
         tc(X, Z) :- e(X, Y), tc(Y, Z).",
        &mut syms,
    )
    .unwrap();
    let (rb, facts) = split_facts(rb_all);
    let db: Database = facts.into_iter().collect();
    let tc = syms.lookup("tc").unwrap();
    let pattern = hdl_base::Atom::new(
        tc,
        vec![
            hdl_base::Term::Var(hdl_base::Var(0)),
            hdl_base::Term::Var(hdl_base::Var(1)),
        ],
    );
    let a = BottomUpEngine::new(&rb, &db)
        .unwrap()
        .answers(&pattern)
        .unwrap();
    let b = TopDownEngine::new(&rb, &db)
        .unwrap()
        .answers(&pattern)
        .unwrap();
    let c = ProveEngine::new(&rb, &db)
        .unwrap()
        .answers(&pattern)
        .unwrap();
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert_eq!(a.len(), 6);
}

// ------------------------------------------------------- del: premises ---

#[test]
fn hypothetical_deletion_basic() {
    let src = "
        p(a). p(b).
        q :- r[del: p(a)].
        r :- ~p(a), p(b).
    ";
    check(src, "?- q.", true);
    check(src, "?- r.", false);
}

#[test]
fn add_wins_when_fact_in_both_lists() {
    // (DB \ {p(a)}) ∪ {p(a)} = DB — deletions apply first.
    let src = "
        p(a).
        q :- r[add: p(a), del: p(a)].
        r :- p(a).
    ";
    check(src, "?- q.", true);
}

#[test]
fn deleting_absent_fact_is_noop() {
    check("p(a).\nq :- p(a)[del: p(b)].", "?- q.", true);
}

#[test]
fn del_with_free_variable_quantifies_existentially() {
    let src = "
        p(a). p(b).
        single :- solo[del: p(X)].
        solo :- p(a), ~p(b).
    ";
    // Deleting p(b) leaves exactly p(a), so some X works.
    check(src, "?- single.", true);
    check(src, "?- solo.", false);
}

#[test]
fn del_removes_database_facts_not_derivations() {
    // Deleting an EDB fact that is also derivable by a rule does not
    // remove it from the perfect model of the modified database.
    let src = "
        p(a). q(a).
        p(X) :- q(X).
        still :- p(a)[del: p(a)].
    ";
    check(src, "?- still.", true);
}

#[test]
fn query_level_del_premise() {
    check("p(a).", "?- p(a)[del: p(a)].", false);
    check("p(a). r :- ~p(a).", "?- r[del: p(a)].", true);
    check("p(a). r :- ~p(a).", "?- r.", false);
}

#[test]
fn mixed_add_and_del_lists() {
    let src = "
        have(a). have(b).
        ok :- goal[add: have(c), del: have(a)].
        goal :- have(b), have(c), ~have(a).
    ";
    check(src, "?- ok.", true);
    check(src, "?- goal.", false);
}

#[test]
fn negation_sees_hypothetical_deletions() {
    // The dual of negation_sees_hypothetical_additions: removing the
    // flag flips ~flag back on inside the branch.
    let src = "
        flag.
        ok :- ~flag.
        fixed :- ok[del: flag].
    ";
    check(src, "?- ok.", false);
    check(src, "?- fixed.", true);
}
