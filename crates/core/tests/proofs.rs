//! Proof extraction: every provable query yields a tree that verifies
//! structurally against the rulebase, and unprovable queries yield none.

use hdl_base::{Database, SymbolTable};
use hdl_core::ast::Rulebase;
use hdl_core::engine::{render_proof, ProofChild, ProofNode, TopDownEngine};
use hdl_core::parser::{parse_program, parse_query, split_facts};

fn setup(src: &str) -> (Rulebase, Database, SymbolTable) {
    let mut syms = SymbolTable::new();
    let program = parse_program(src, &mut syms).expect("parses");
    let (rules, facts) = split_facts(program);
    (rules, facts.into_iter().collect(), syms)
}

#[test]
fn membership_proof_is_a_leaf() {
    let (rules, db, mut syms) = setup("p(a).");
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- p(a).", &mut syms).unwrap();
    let proof = eng.explain(&q).unwrap().expect("provable");
    assert!(matches!(proof, ProofNode::Membership { .. }));
    assert_eq!(proof.size(), 1);
    proof.verify(&rules).unwrap();
    let text = render_proof(&proof, &syms);
    assert!(text.contains("p(a)"));
    assert!(text.contains("[in database]"));
}

#[test]
fn unprovable_queries_have_no_proof() {
    let (rules, db, mut syms) = setup("p(a).\nq :- p(b).");
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- q.", &mut syms).unwrap();
    assert!(eng.explain(&q).unwrap().is_none());
}

#[test]
fn horn_chain_proof_shape() {
    let (rules, db, mut syms) = setup(
        "e(a, b). e(b, c).
         tc(X, Y) :- e(X, Y).
         tc(X, Z) :- e(X, Y), tc(Y, Z).",
    );
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- tc(a, c).", &mut syms).unwrap();
    let proof = eng.explain(&q).unwrap().expect("provable");
    proof.verify(&rules).unwrap();
    // tc(a,c) via rule 1: e(a,b) ∧ tc(b,c); tc(b,c) via rule 0: e(b,c).
    let ProofNode::Derived {
        rule_idx, children, ..
    } = &proof
    else {
        panic!("expected derivation");
    };
    assert_eq!(
        *rule_idx, 1,
        "the recursive tc rule (facts are split out of the rulebase)"
    );
    assert_eq!(children.len(), 2);
    assert!(proof.depth() >= 3);
    let text = render_proof(&proof, &syms);
    assert!(text.contains("tc(a, c)"));
    assert!(text.contains("e(a, b)"));
}

#[test]
fn hypothetical_proof_records_insertions() {
    let (rules, db, mut syms) = setup(
        "grad :- his, eng.
         his.
         outcome :- grad[add: eng].",
    );
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- outcome.", &mut syms).unwrap();
    let proof = eng.explain(&q).unwrap().expect("provable");
    proof.verify(&rules).unwrap();
    let ProofNode::Derived { children, .. } = &proof else {
        panic!()
    };
    let ProofChild::Hypothetical { adds, sub, .. } = &children[0] else {
        panic!("expected hypothetical evidence")
    };
    assert_eq!(adds.len(), 1);
    assert_eq!(syms.name(adds[0].pred), "eng");
    // The inner proof uses the inserted fact as a membership leaf.
    let ProofNode::Derived {
        children: inner, ..
    } = sub.as_ref()
    else {
        panic!()
    };
    assert!(matches!(
        inner[1],
        ProofChild::Positive(ref p) if matches!(**p, ProofNode::Membership { .. })
    ));
    let text = render_proof(&proof, &syms);
    assert!(text.contains("[add: eng]"));
}

#[test]
fn negation_evidence_has_no_subtree() {
    let (rules, db, mut syms) = setup("ok :- ~flag.");
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- ok.", &mut syms).unwrap();
    let proof = eng.explain(&q).unwrap().expect("provable");
    proof.verify(&rules).unwrap();
    let ProofNode::Derived { children, .. } = &proof else {
        panic!()
    };
    assert!(matches!(children[0], ProofChild::NegationHolds { .. }));
    let text = render_proof(&proof, &syms);
    assert!(text.contains("~flag"));
    assert!(text.contains("[not derivable]"));
}

#[test]
fn negated_query_returns_none_by_design() {
    let (rules, db, mut syms) = setup("p(a).");
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- ~p(b).", &mut syms).unwrap();
    assert!(eng.holds(&q).unwrap());
    assert!(eng.explain(&q).unwrap().is_none(), "absence has no tree");
}

#[test]
fn existential_query_proof_covers_first_witness() {
    let (rules, db, mut syms) = setup(
        "take(tony, cs1).
         grad(S) :- take(S, cs1), take(S, cs2).",
    );
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- grad(tony)[add: take(tony, C)].", &mut syms).unwrap();
    assert!(eng.holds(&q).unwrap());
    let proof = eng.explain(&q).unwrap().expect("provable");
    proof.verify(&rules).unwrap();
    // The witness proof is the inner grad derivation inside the augmented DB.
    let ProofNode::Derived { fact, .. } = &proof else {
        panic!()
    };
    assert_eq!(syms.name(fact.pred), "grad");
}

#[test]
fn parity_proof_verifies_and_uses_all_copies() {
    let (rules, db, mut syms) = setup(
        "even :- select(X), odd[add: b(X)].
         odd :- select(X), even[add: b(X)].
         even :- ~select(X).
         select(X) :- a(X), ~b(X).
         a(t0). a(t1).",
    );
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- even.", &mut syms).unwrap();
    let proof = eng.explain(&q).unwrap().expect("even for |a|=2");
    proof.verify(&rules).unwrap();
    // even → odd (1 copied) → even (2 copied, base case). Two
    // hypothetical hops at least.
    assert!(proof.depth() >= 5, "depth was {}", proof.depth());
    let text = render_proof(&proof, &syms);
    assert_eq!(text.matches("[add: b(").count(), 2, "{text}");
}

#[test]
fn hamiltonian_proof_lists_the_path() {
    let (rules, db, mut syms) = setup(
        "yes :- node(X), path(X)[add: pnode(X)].
         path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
         path(X) :- ~select(Y).
         select(Y) :- node(Y), ~pnode(Y).
         node(a). node(b). node(c).
         edge(a, b). edge(b, c).",
    );
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- yes.", &mut syms).unwrap();
    let proof = eng.explain(&q).unwrap().expect("chain has a path");
    proof.verify(&rules).unwrap();
    let text = render_proof(&proof, &syms);
    // The proof inserts pnode(a), pnode(b), pnode(c) along the way.
    for node in ["a", "b", "c"] {
        assert!(
            text.contains(&format!("pnode({node})")),
            "proof must visit {node}:\n{text}"
        );
    }
}

#[test]
fn proofs_survive_memoized_requeries() {
    let (rules, db, mut syms) = setup(
        "e(a, b). e(b, c).
         tc(X, Y) :- e(X, Y).
         tc(X, Z) :- e(X, Y), tc(Y, Z).",
    );
    let mut eng = TopDownEngine::new(&rules, &db).unwrap();
    let q = parse_query("?- tc(a, c).", &mut syms).unwrap();
    assert!(eng.holds(&q).unwrap());
    // Second call answers from the memo — the proof must still build.
    let proof = eng.explain(&q).unwrap().expect("provable");
    proof.verify(&rules).unwrap();
}
