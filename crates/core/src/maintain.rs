//! Incremental model maintenance: delete-and-rederive for `:retract`.
//!
//! A [`MaterializedModel`] holds the perfect model of one
//! `(rulebase, database)` pair and keeps it current across single-fact
//! assertions and retractions without recomputing the fixpoint from
//! scratch. Retraction follows the classic DRed (delete-and-rederive)
//! scheme, run over the same older/delta split the semi-naive fixpoint
//! uses:
//!
//! 1. **Overdelete** — starting from the retracted fact, propagate
//!    deletions through every rule that could have consumed a deleted
//!    fact: one premise is joined against the deletion delta, the rest
//!    against the old model. This overcounts — it removes every fact
//!    that has *some* derivation through a deleted fact, even if other
//!    derivations survive.
//! 2. **Rederive** — overdeleted facts that are still base facts, or
//!    whose rules still fire against the surviving model, are put back;
//!    each round of returns can rederive further facts, so this loops
//!    to a fixpoint.
//!
//! That scheme is only sound when the affected predicates are derived
//! purely positively: through negation or a hypothetical premise, a
//! *deletion* can make new facts true, which delta-joins structured for
//! monotone rules never discover. Whenever a negated or hypothetical
//! premise depends on a changed predicate, the maintenance falls back to
//! a conservative strategy: recompute the affected predicate cone (plus
//! every hypothetical goal cone it reaches) with a fresh bottom-up
//! fixpoint, seeding everything outside the cone from the old model.
//!
//! One global guard sits in front of both paths: the perfect model
//! depends on the constant domain `dom(R, DB)` (Definition 3) through
//! negation and hypothetical groundings, and the domain is *global* — a
//! mutation that adds or removes a constant can change predicates no
//! dependency edge reaches. Such mutations rebuild the model in full.

use crate::ast::{HypRule, Premise, Rulebase};
use crate::engine::BottomUpEngine;
use hdl_base::{Atom, Bindings, Database, FxHashMap, FxHashSet, GroundAtom, Result, Symbol, Term};

/// Counters describing how a [`MaterializedModel`] has been maintained.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Full fixpoint computations (initial build + domain-change rebuilds).
    pub full_builds: u64,
    /// Retractions handled by fact-level delete-and-rederive.
    pub incremental_retractions: u64,
    /// Assertions handled by semi-naive delta continuation.
    pub incremental_assertions: u64,
    /// Updates that recomputed an affected predicate cone with a fresh
    /// engine because negation or a hypothetical premise depends on the
    /// changed predicate.
    pub conservative_updates: u64,
    /// Full rebuilds forced by a change to the constant domain.
    pub domain_rebuilds: u64,
    /// Facts removed during overdeletion phases (cumulative).
    pub overdeleted_facts: u64,
    /// Overdeleted facts put back by rederivation (cumulative).
    pub rederived_facts: u64,
}

impl MaintenanceStats {
    /// One-line JSON object of the counters (for `:stats --json` and
    /// the network protocol's `stats` op). Keys are stable.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"full_builds\":{},\"incremental_retractions\":{},\"incremental_assertions\":{},\
             \"conservative_updates\":{},\"domain_rebuilds\":{},\"overdeleted_facts\":{},\
             \"rederived_facts\":{}}}",
            self.full_builds,
            self.incremental_retractions,
            self.incremental_assertions,
            self.conservative_updates,
            self.domain_rebuilds,
            self.overdeleted_facts,
            self.rederived_facts
        )
    }
}

/// A perfect model kept current across single-fact mutations.
///
/// The model always equals `BottomUpEngine::model()` of the rulebase and
/// the *current* base database — the differential property tests in
/// `tests/props.rs` assert exactly that against the naive engine.
pub struct MaterializedModel {
    model: Database,
    stats: MaintenanceStats,
}

impl MaterializedModel {
    /// Computes the full perfect model of `(rulebase, database)`.
    pub fn build(rulebase: &Rulebase, database: &Database) -> Result<Self> {
        let mut m = MaterializedModel {
            model: Database::new(),
            stats: MaintenanceStats::default(),
        };
        m.rebuild(rulebase, database)?;
        Ok(m)
    }

    /// The maintained perfect model (base facts included).
    pub fn model(&self) -> &Database {
        &self.model
    }

    /// Maintenance counters since [`MaterializedModel::build`].
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    fn rebuild(&mut self, rulebase: &Rulebase, database: &Database) -> Result<()> {
        let mut eng = BottomUpEngine::new(rulebase, database)?;
        self.model = eng.model()?;
        self.stats.full_builds += 1;
        Ok(())
    }

    /// Brings the model up to date after `fact` was inserted into the
    /// base database (`database` is the post-insert state).
    pub fn assert_fact(
        &mut self,
        rulebase: &Rulebase,
        database: &Database,
        fact: &GroundAtom,
    ) -> Result<()> {
        if self.model.contains(fact) {
            // Already derivable: for a stratified program the model is a
            // function of (rules, EDB, domain), and adding an EDB fact
            // the model already holds changes neither the domain (its
            // constants are in the model) nor any rule's satisfaction.
            return Ok(());
        }
        if !fact
            .args
            .iter()
            .all(|c| self.known_constants_contain(rulebase, *c))
        {
            self.stats.domain_rebuilds += 1;
            return self.rebuild(rulebase, database);
        }
        let affected = affected_preds(rulebase, fact.pred);
        if positive_cone(rulebase, &affected) {
            self.assert_positive(rulebase, fact, &affected);
            self.stats.incremental_assertions += 1;
            Ok(())
        } else {
            self.update_conservative(rulebase, database, &affected)
        }
    }

    /// Brings the model up to date after `fact` was removed from the
    /// base database (`database` is the post-remove state).
    ///
    /// `database` may still contain `fact` through another layer (an
    /// assumption frame shadowing a retracted base fact); rederivation
    /// then restores it immediately.
    pub fn retract_fact(
        &mut self,
        rulebase: &Rulebase,
        database: &Database,
        fact: &GroundAtom,
    ) -> Result<()> {
        if !self.model.contains(fact) {
            return Ok(()); // was never true — removing it changes nothing
        }
        // A retraction shrinks the domain iff it held the last occurrence
        // of one of its constants; negation and hypothetical groundings
        // then quantify over a smaller set everywhere.
        let domain_shrank = fact.args.iter().any(|c| {
            !rulebase.constants().contains(c) && !database.iter().any(|(_, args)| args.contains(c))
        });
        if domain_shrank {
            self.stats.domain_rebuilds += 1;
            return self.rebuild(rulebase, database);
        }
        let affected = affected_preds(rulebase, fact.pred);
        if positive_cone(rulebase, &affected) {
            self.retract_positive(rulebase, database, fact, &affected);
            self.stats.incremental_retractions += 1;
            Ok(())
        } else {
            self.update_conservative(rulebase, database, &affected)
        }
    }

    /// Whether `c` is already in `dom(R, DB)` as witnessed by the model
    /// (which contains every EDB fact) or the rulebase constants.
    fn known_constants_contain(&self, rulebase: &Rulebase, c: Symbol) -> bool {
        rulebase.constants().contains(&c) || self.model.iter().any(|(_, args)| args.contains(&c))
    }

    /// Semi-naive delta continuation for a purely positive affected cone:
    /// the new fact is the first delta, and rules fire with one premise
    /// against the delta and the rest against the growing model.
    fn assert_positive(
        &mut self,
        rulebase: &Rulebase,
        fact: &GroundAtom,
        affected: &FxHashSet<Symbol>,
    ) {
        self.model.insert(fact.clone());
        let mut delta = Database::new();
        delta.insert(fact.clone());
        while !delta.is_empty() {
            let mut derived = Vec::new();
            for rule in rulebase.iter().filter(|r| affected.contains(&r.head.pred)) {
                fire_rule_with_delta(rule, &delta, &self.model, &mut derived);
            }
            let mut next = Database::new();
            for h in derived {
                if self.model.insert(h.clone()) {
                    next.insert(h);
                }
            }
            delta = next;
        }
    }

    /// Fact-level delete-and-rederive for a purely positive affected
    /// cone (DRed): overcount deletions through the delta joins, remove
    /// them, then put back everything still supported.
    fn retract_positive(
        &mut self,
        rulebase: &Rulebase,
        database: &Database,
        fact: &GroundAtom,
        affected: &FxHashSet<Symbol>,
    ) {
        // Overdeletion: joins run against the *old* model throughout, so
        // each round only needs the newly deleted facts as its delta.
        let mut over = Database::new();
        over.insert(fact.clone());
        let mut delta = over.clone();
        while !delta.is_empty() {
            let mut derived = Vec::new();
            for rule in rulebase.iter().filter(|r| affected.contains(&r.head.pred)) {
                fire_rule_with_delta(rule, &delta, &self.model, &mut derived);
            }
            let mut next = Database::new();
            for h in derived {
                if self.model.contains(&h) && !over.contains(&h) {
                    over.insert(h.clone());
                    next.insert(h);
                }
            }
            delta = next;
        }
        let overdeleted: Vec<GroundAtom> = over.iter_facts().collect();
        self.stats.overdeleted_facts += overdeleted.len() as u64;
        // One batch removal: the cascade compacts each relation once
        // instead of once per overdeleted fact.
        self.model.remove_all(&overdeleted);
        // Rederivation: overdeleted facts return if the base database
        // still holds them or one of their rules still fires against the
        // surviving model; each return can support further returns.
        let mut remaining = Vec::new();
        let mut rederived = 0u64;
        for f in overdeleted {
            if database.contains(&f) {
                self.model.insert(f);
                rederived += 1;
            } else {
                remaining.push(f);
            }
        }
        loop {
            let mut returned = Vec::new();
            remaining.retain(|f| {
                if has_one_step_derivation(rulebase, &self.model, f) {
                    returned.push(f.clone());
                    false
                } else {
                    true
                }
            });
            if returned.is_empty() {
                break;
            }
            rederived += returned.len() as u64;
            for f in returned {
                self.model.insert(f);
            }
        }
        self.stats.rederived_facts += rederived;
    }

    /// Conservative path: recompute the affected predicate cone — plus
    /// every hypothetical goal cone it reaches, because overlay
    /// evaluation re-derives those goals against the modified database —
    /// with a fresh bottom-up fixpoint. Everything outside the cone is
    /// seeded from the old model as EDB; the full rulebase's constants
    /// are passed along so the reduced program grounds negation and
    /// hypothetical premises over the same domain the full program would.
    fn update_conservative(
        &mut self,
        rulebase: &Rulebase,
        database: &Database,
        affected: &FxHashSet<Symbol>,
    ) -> Result<()> {
        let recompute = recompute_closure(rulebase, affected);
        let mut reduced = Rulebase::new();
        for rule in rulebase.iter() {
            if recompute.contains(&rule.head.pred) {
                reduced.push(rule.clone());
            }
        }
        let mut seed = database.clone();
        for f in self.model.iter_facts() {
            if !recompute.contains(&f.pred) {
                seed.insert(f);
            }
        }
        let mut eng = BottomUpEngine::new_with_constants(&reduced, &seed, &rulebase.constants())?;
        self.model = eng.model()?;
        self.stats.conservative_updates += 1;
        Ok(())
    }
}

/// Predicates whose extension can change when `seed`'s base facts do:
/// forward reachability from `seed` through every premise → head edge
/// (positive, negated, and hypothetical-goal premises alike).
///
/// Atoms in `add:`/`del:` lists contribute no edge: the overlay forces
/// their presence or absence regardless of the base database, and any
/// influence of their *predicate* on the goal flows through the goal's
/// own premise cone, which these edges already cover.
fn affected_preds(rulebase: &Rulebase, seed: Symbol) -> FxHashSet<Symbol> {
    let mut fwd: FxHashMap<Symbol, Vec<Symbol>> = FxHashMap::default();
    for rule in rulebase.iter() {
        for p in &rule.premises {
            let read = match p {
                Premise::Atom(a) | Premise::Neg(a) => a.pred,
                Premise::Hyp { goal, .. } => goal.pred,
            };
            fwd.entry(read).or_default().push(rule.head.pred);
        }
    }
    let mut out = FxHashSet::default();
    let mut stack = vec![seed];
    out.insert(seed);
    while let Some(p) = stack.pop() {
        for &h in fwd.get(&p).map(Vec::as_slice).unwrap_or(&[]) {
            if out.insert(h) {
                stack.push(h);
            }
        }
    }
    out
}

/// Whether every rule deriving an affected predicate is purely positive.
///
/// This is the applicability test for fact-level DRed. It also rules out
/// interference from elsewhere in the program: a negated premise over an
/// affected predicate puts its rule's head *into* the affected set (the
/// forward closure follows negation edges), where the rule then fails
/// this test; likewise a hypothetical premise whose goal cone touches an
/// affected predicate. Rules with head variables not bound by the body
/// ground over the domain, which the delta joins never consult, so they
/// fail the test too.
fn positive_cone(rulebase: &Rulebase, affected: &FxHashSet<Symbol>) -> bool {
    rulebase
        .iter()
        .filter(|r| affected.contains(&r.head.pred))
        .all(|r| {
            let body_positive = r.premises.iter().all(|p| matches!(p, Premise::Atom(_)));
            let head_bound = r.head.vars().all(|v| {
                r.premises
                    .iter()
                    .any(|p| matches!(p, Premise::Atom(a) if a.vars().any(|w| w == v)))
            });
            body_positive && head_bound
        })
}

/// The affected set closed under hypothetical goal cones: for every rule
/// being recomputed that carries a hypothetical premise, everything the
/// premise's overlay evaluation can read must be recomputed too (its
/// facts cannot be seeded as EDB — a seeded fact would stay true under
/// overlays that should invalidate it).
fn recompute_closure(rulebase: &Rulebase, affected: &FxHashSet<Symbol>) -> FxHashSet<Symbol> {
    let mut bwd: FxHashMap<Symbol, Vec<Symbol>> = FxHashMap::default();
    for rule in rulebase.iter() {
        let reads: Vec<Symbol> = rule
            .premises
            .iter()
            .flat_map(|p| p.atoms())
            .map(|a| a.pred)
            .collect();
        bwd.entry(rule.head.pred).or_default().extend(reads);
    }
    let mut out = affected.clone();
    loop {
        let mut grew = false;
        for rule in rulebase.iter() {
            if !out.contains(&rule.head.pred) {
                continue;
            }
            for p in &rule.premises {
                if !matches!(p, Premise::Hyp { .. }) {
                    continue;
                }
                // Backward closure from everything the premise names.
                let mut stack: Vec<Symbol> = p.atoms().map(|a| a.pred).collect();
                while let Some(q) = stack.pop() {
                    if out.insert(q) {
                        grew = true;
                    }
                    for &r in bwd.get(&q).map(Vec::as_slice).unwrap_or(&[]) {
                        if !out.contains(&r) {
                            out.insert(r);
                            grew = true;
                            stack.push(r);
                        }
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    out
}

fn rule_num_vars(rule: &HypRule) -> usize {
    rule.head
        .vars()
        .chain(rule.premises.iter().flat_map(|p| p.vars()))
        .map(|v| v.index() + 1)
        .max()
        .unwrap_or(0)
}

fn ground_head(head: &Atom, bindings: &Bindings) -> GroundAtom {
    GroundAtom::new(
        head.pred,
        head.args
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => bindings.get(*v).expect("head var bound by positive body"),
            })
            .collect(),
    )
}

/// Fires `rule` (all premises positive) once per choice of delta
/// position: premise `i` joins against `delta`, the rest against `full`.
/// Duplicate derivations across positions are fine — callers insert into
/// set-semantics databases.
fn fire_rule_with_delta(
    rule: &HypRule,
    delta: &Database,
    full: &Database,
    out: &mut Vec<GroundAtom>,
) {
    for pos in 0..rule.premises.len() {
        let Premise::Atom(a) = &rule.premises[pos] else {
            continue;
        };
        if delta.count(a.pred) == 0 {
            continue;
        }
        let order: Vec<usize> = std::iter::once(pos)
            .chain((0..rule.premises.len()).filter(|&j| j != pos))
            .collect();
        let mut bindings = Bindings::new(rule_num_vars(rule));
        join_positions(rule, &order, 0, delta, full, &mut bindings, out);
    }
}

fn join_positions(
    rule: &HypRule,
    order: &[usize],
    k: usize,
    delta: &Database,
    full: &Database,
    bindings: &mut Bindings,
    out: &mut Vec<GroundAtom>,
) {
    if k == order.len() {
        out.push(ground_head(&rule.head, bindings));
        return;
    }
    let Premise::Atom(a) = &rule.premises[order[k]] else {
        return;
    };
    let db = if k == 0 { delta } else { full };
    db.for_each_match(a, bindings, |b| {
        join_positions(rule, order, k + 1, delta, full, b, out);
        false
    });
}

/// Whether `fact` matches a rule head whose (purely positive) body is
/// satisfied by `model` — the rederivation test of DRed's second phase.
fn has_one_step_derivation(rulebase: &Rulebase, model: &Database, fact: &GroundAtom) -> bool {
    for rule in rulebase.definition(fact.pred) {
        let mut bindings = Bindings::new(rule_num_vars(rule));
        let Some(trail) = bindings.match_atom(&rule.head, fact) else {
            continue;
        };
        if body_satisfied(&rule.premises, 0, model, &mut bindings) {
            return true;
        }
        bindings.undo(&trail);
    }
    false
}

fn body_satisfied(
    premises: &[Premise],
    idx: usize,
    model: &Database,
    bindings: &mut Bindings,
) -> bool {
    let Some(p) = premises.get(idx) else {
        return true;
    };
    let Premise::Atom(a) = p else {
        return false; // non-positive bodies never reach the DRed path
    };
    model.for_each_match(a, bindings, |b| body_satisfied(premises, idx + 1, model, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, split_facts};
    use hdl_base::SymbolTable;

    fn setup(src: &str) -> (SymbolTable, Rulebase, Database) {
        let mut syms = SymbolTable::new();
        let parsed = parse_program(src, &mut syms).unwrap();
        let (rules, facts) = split_facts(parsed);
        let mut db = Database::new();
        for f in facts {
            db.insert(f);
        }
        (syms, rules, db)
    }

    fn full_model(rb: &Rulebase, db: &Database) -> Database {
        BottomUpEngine::new(rb, db).unwrap().model().unwrap()
    }

    fn ga(syms: &mut SymbolTable, pred: &str, args: &[&str]) -> GroundAtom {
        let p = syms.intern(pred);
        let a = args.iter().map(|c| syms.intern(c)).collect();
        GroundAtom::new(p, a)
    }

    #[test]
    fn positive_retraction_matches_full_rebuild() {
        let (mut syms, rb, mut db) = setup(
            "edge(a, b). edge(b, c). edge(a, c).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        );
        let mut m = MaterializedModel::build(&rb, &db).unwrap();
        let fact = ga(&mut syms, "edge", &["a", "b"]);
        db.remove(&fact);
        m.retract_fact(&rb, &db, &fact).unwrap();
        assert_eq!(m.model(), &full_model(&rb, &db));
        assert_eq!(m.stats().incremental_retractions, 1);
        assert_eq!(m.stats().full_builds, 1, "no rebuild");
    }

    #[test]
    fn rederivation_restores_alternatively_supported_facts() {
        // tc(a, c) via a→b→c and via the direct edge; retracting the
        // direct edge must keep tc(a, c) (rederived), while retracting
        // edge(b, c) afterwards must finally kill it.
        let (mut syms, rb, mut db) = setup(
            "edge(a, b). edge(b, c). edge(a, c).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        );
        let mut m = MaterializedModel::build(&rb, &db).unwrap();
        let direct = ga(&mut syms, "edge", &["a", "c"]);
        db.remove(&direct);
        m.retract_fact(&rb, &db, &direct).unwrap();
        let tc_ac = ga(&mut syms, "tc", &["a", "c"]);
        assert!(m.model().contains(&tc_ac), "still supported via b");
        assert!(m.stats().rederived_facts > 0);
        let hop = ga(&mut syms, "edge", &["b", "c"]);
        db.remove(&hop);
        m.retract_fact(&rb, &db, &hop).unwrap();
        assert!(!m.model().contains(&tc_ac));
        assert_eq!(m.model(), &full_model(&rb, &db));
    }

    #[test]
    fn positive_assertion_matches_full_rebuild() {
        let (mut syms, rb, mut db) = setup(
            "edge(a, b). edge(c, a).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        );
        let mut m = MaterializedModel::build(&rb, &db).unwrap();
        let fact = ga(&mut syms, "edge", &["b", "c"]);
        db.insert(fact.clone());
        m.assert_fact(&rb, &db, &fact).unwrap();
        assert_eq!(m.model(), &full_model(&rb, &db));
        assert_eq!(m.stats().incremental_assertions, 1);
    }

    #[test]
    fn negation_dependent_cone_recomputes_conservatively() {
        // blocked depends on edge; open negates blocked. Retracting an
        // edge can make `open` facts *appear* — DRed would miss that.
        let (mut syms, rb, mut db) = setup(
            "edge(a, b). node(a). node(b).
             blocked(X) :- edge(X, Y).
             open(X) :- node(X), ~blocked(X).",
        );
        let mut m = MaterializedModel::build(&rb, &db).unwrap();
        let open_a = ga(&mut syms, "open", &["a"]);
        assert!(!m.model().contains(&open_a));
        let fact = ga(&mut syms, "edge", &["a", "b"]);
        db.remove(&fact);
        m.retract_fact(&rb, &db, &fact).unwrap();
        assert!(m.model().contains(&open_a), "retraction added a fact");
        assert_eq!(m.model(), &full_model(&rb, &db));
        assert_eq!(m.stats().conservative_updates, 1);
        assert_eq!(m.stats().incremental_retractions, 0);
    }

    #[test]
    fn hypothetical_goal_cones_are_recomputed_not_seeded() {
        // In the old model `bad` is true (z is absent). Asserting p(a)
        // recomputes `good`, whose hypothetical premise re-evaluates
        // `bad` under the overlay +z — where it is *false*. If the
        // conservative path seeded bad's old model fact as EDB instead
        // of recomputing its cone, the overlay would see it as
        // unconditionally true and derive `good` wrongly.
        let (mut syms, rb, mut db) = setup(
            "w(a).
             good :- p(a), bad[add: z].
             bad :- ~z.",
        );
        let mut m = MaterializedModel::build(&rb, &db).unwrap();
        assert!(m.model().contains(&ga(&mut syms, "bad", &[])));
        let fact = ga(&mut syms, "p", &["a"]);
        db.insert(fact.clone());
        m.assert_fact(&rb, &db, &fact).unwrap();
        assert!(
            !m.model().contains(&ga(&mut syms, "good", &[])),
            "overlay +z falsifies bad, so good must stay out"
        );
        assert_eq!(m.model(), &full_model(&rb, &db));
        assert_eq!(m.stats().conservative_updates, 1);
    }

    #[test]
    fn new_constant_forces_domain_rebuild() {
        // open(X) :- node(X), ~edge(X, X) quantifies over the domain;
        // asserting a fact with a brand-new constant must rebuild.
        let (mut syms, rb, mut db) = setup(
            "node(a).
             open(X) :- node(X), ~edge(X, X).",
        );
        let mut m = MaterializedModel::build(&rb, &db).unwrap();
        let fact = ga(&mut syms, "node", &["zz"]);
        db.insert(fact.clone());
        m.assert_fact(&rb, &db, &fact).unwrap();
        assert!(m.stats().domain_rebuilds >= 1);
        assert_eq!(m.model(), &full_model(&rb, &db));
    }

    #[test]
    fn interleaved_churn_tracks_full_rebuild() {
        let (mut syms, rb, mut db) = setup(
            "node(n1). node(n2). node(n3). node(n4).
             edge(n1, n2). edge(n2, n3). edge(n3, n4). edge(n4, n1).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        );
        let mut m = MaterializedModel::build(&rb, &db).unwrap();
        let script: &[(&str, &str, &str)] = &[
            ("-", "n2", "n3"),
            ("+", "n2", "n4"),
            ("-", "n4", "n1"),
            ("+", "n4", "n2"),
            ("-", "n1", "n2"),
            ("+", "n1", "n3"),
        ];
        for (op, x, y) in script {
            let fact = ga(&mut syms, "edge", &[x, y]);
            if *op == "+" {
                db.insert(fact.clone());
                m.assert_fact(&rb, &db, &fact).unwrap();
            } else {
                db.remove(&fact);
                m.retract_fact(&rb, &db, &fact).unwrap();
            }
            assert_eq!(m.model(), &full_model(&rb, &db));
        }
        assert_eq!(m.stats().full_builds, 1, "churn stayed incremental");
    }
}
