//! The paper's `PROVE_Σᵢ` / `PROVE_Δᵢ` proof procedures (§5.2).
//!
//! The engine mirrors the paper's mutual recursion exactly:
//!
//! - **`PROVE_Σᵢ`** (§5.2.1) is the NP component: goals whose predicate is
//!   defined in an even partition `Σᵢ` are expanded top-down. Line 1 tests
//!   database membership, line 2 rewrites `B[add: Ā, del: C̄]` into
//!   `(B, (DB ∖ C̄) ∪ Ā)`,
//!   line 3 nondeterministically picks a defining rule and grounding, and
//!   line 4 hands every remaining goal to `PROVE_Δᵢ`. The paper's
//!   nondeterminism becomes deterministic backtracking over (rule,
//!   grounding) choices. Because ground goals in the goal set are mutually
//!   independent, the goal set is evaluated as a conjunction of
//!   independent recursive calls; the goal-sequence statistics of
//!   Theorem 3 are still recorded per expansion.
//! - **`PROVE_Δᵢ`** (§5.2.2) is the P component: the perfect model of the
//!   Horn-with-negation segment `Δᵢ` over a given database, computed
//!   bottom-up through its internal negation sub-strata (`LFPᵢ`/`Tᵢ`).
//!   `TESTᵢ⁰` resolves premises over predicates defined below the segment
//!   by invoking the next `PROVE_Σᵢ₋₁` as an oracle — including whole
//!   hypothetical premises, exactly as in the paper.
//!
//! Requires a *linearly stratified* rulebase (Definition 9); construction
//! fails otherwise. Provability dispatch is by partition number: even →
//! `Σ` top-down, odd → `Δ` model lookup, zero (no rules) → database
//! membership.

use crate::analysis::stratify::{linear_stratification, LinearStratification};
use crate::ast::{HypRule, Premise, Rulebase};
use crate::engine::budget::Budget;
use crate::engine::context::Context;
use crate::engine::matching::{
    chunk_tasks, fire_pure, part_for, run_pure_parallel, ModelLayers, Part, PureTask, RuleClass,
    Seed, PARALLEL_MIN_DELTA,
};
use crate::engine::stats::Limits;
use hdl_base::{
    Atom, Bindings, Database, DbId, Error, FactId, FxHashMap, GroundAtom, MatchCounters, Result,
    Symbol, Var,
};
use std::sync::Arc;

const NO_CUT: u64 = u64::MAX;

/// Work counters specific to the PROVE procedures.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct ProveStats {
    /// `Σ` goal expansions per stratum (index `i-1` for stratum `i`) — the
    /// quantity Theorem 3 bounds by `O(n^{2kᵢk₀})` per proof sequence.
    pub sigma_expansions: Vec<u64>,
    /// Oracle invocations (`TEST⁰` falling through to `PROVE_Σᵢ₋₁`).
    pub oracle_calls: u64,
    /// Δ perfect models computed (distinct `(stratum, db)` pairs).
    pub delta_models: u64,
    /// Maximum Σ recursion depth.
    pub max_depth: u64,
    /// Memo hits on atomic goals.
    pub memo_hits: u64,
    /// Facts newly derived in each fixpoint round of the last Δ model
    /// computed — the semi-naive delta trajectory.
    pub delta_facts_per_round: Vec<u64>,
    /// Premise matches answered via an argument-index hash probe instead
    /// of a relation scan.
    pub index_probes: u64,
    /// Index probes that found at least one candidate.
    pub index_hits: u64,
    /// Δ fixpoint rounds whose pure-rule firings ran on worker threads.
    pub parallel_rounds: u64,
    /// Δ fixpoint rounds eligible for worker threads that ran inline
    /// because the round's delta was narrower than
    /// [`crate::engine::matching::PARALLEL_MIN_DELTA`].
    pub parallel_skipped: u64,
    /// Storage counters of the overlay DAG backing the database lattice,
    /// snapshotted when the engine finished its last query.
    pub overlay: hdl_base::OverlayStats,
}

/// The §5.2 proof-procedure engine.
pub struct ProveEngine<'rb> {
    ctx: Context<'rb>,
    ls: LinearStratification,
    /// Δ rule indices per stratum (1-based stratum → index-1), grouped by
    /// internal negation sub-strata `Δᵢ₁,…,Δᵢₘ` (evaluation order).
    /// Shared immutably so fixpoint rounds need no per-round copy.
    delta_rules: Vec<Arc<[Vec<usize>]>>,
    /// Per sub-stratum group, the semi-naive classification of its rules
    /// (indexed like `rb.rules`; rules outside the group keep defaults).
    /// Parallel to `delta_rules`.
    delta_classes: Vec<Arc<[Vec<RuleClass>]>>,
    /// Σ rule indices per stratum, shared immutably for the same reason.
    sigma_rules: Vec<Arc<[usize]>>,
    /// Worker threads for pure Δ-rule firings within a round (1 = inline).
    workers: usize,
    memo: FxHashMap<(FactId, DbId), bool>,
    in_progress: FxHashMap<(FactId, DbId), u64>,
    /// Memoized Δ models, storing only the facts *derived* above the keyed
    /// database — the EDB layer stays in the overlay DAG and is consulted
    /// through a [`DbView`].
    delta_models: FxHashMap<(usize, DbId), Arc<Database>>,
    stats: ProveStats,
    limits: Limits,
    budget: Budget,
    expansions_total: u64,
    /// Cached `budget.has_memory_limits()` for the hot-path probes.
    mem_limited: bool,
    /// Store sizes when the budget was installed; the memory caps bound
    /// growth past these (engines are reused across queries).
    facts_baseline: u64,
    goals_baseline: u64,
}

impl<'rb> ProveEngine<'rb> {
    /// Builds the engine; fails unless `rb` is linearly stratified.
    pub fn new(rb: &'rb Rulebase, db: &Database) -> Result<Self> {
        let ctx = Context::new(rb, db)?;
        let ls = linear_stratification(rb)?;
        let k = ls.num_strata();
        let mut delta_rules: Vec<Arc<[Vec<usize>]>> = vec![Arc::from(Vec::new()); k];
        let mut sigma_rules: Vec<Arc<[usize]>> = vec![Arc::from(Vec::new()); k];
        for (i, stratum) in ls.strata.iter().enumerate() {
            delta_rules[i] = Arc::from(substrata(rb, &ls, &stratum.delta));
            sigma_rules[i] = Arc::from(stratum.sigma.clone());
        }
        let delta_classes = delta_rules
            .iter()
            .enumerate()
            .map(|(i, groups)| {
                let delta_part = 2 * (i + 1) - 1;
                let per_group: Vec<Vec<RuleClass>> = groups
                    .iter()
                    .map(|group| classify_group(rb, &ls, group, delta_part))
                    .collect();
                Arc::from(per_group)
            })
            .collect();
        Ok(ProveEngine {
            ctx,
            ls,
            delta_rules,
            delta_classes,
            sigma_rules,
            workers: 1,
            memo: FxHashMap::default(),
            in_progress: FxHashMap::default(),
            delta_models: FxHashMap::default(),
            stats: ProveStats {
                sigma_expansions: vec![0; k],
                ..Default::default()
            },
            limits: Limits::default(),
            budget: Budget::default(),
            expansions_total: 0,
            mem_limited: false,
            facts_baseline: 0,
            goals_baseline: 0,
        })
    }

    /// Replaces the resource limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the number of worker threads used for pure Δ-rule firings
    /// within a fixpoint round (clamped to at least 1). The computed
    /// models are identical for every setting; only wall-clock changes.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Builder form of [`ProveEngine::set_parallelism`].
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.set_parallelism(workers);
        self
    }

    /// Folds premise-match counters into the engine's accounting: each
    /// candidate tested is one unit of [`Limits::max_expansions`] work,
    /// and index probes/hits feed the `:stats` report.
    fn absorb_matches(&mut self, c: MatchCounters) {
        self.expansions_total += c.attempts;
        self.stats.index_probes += c.probes;
        self.stats.index_hits += c.hits;
    }

    /// Replaces the evaluation budget (deadline / cancellation token).
    /// A tripped budget unwinds without recording in-flight verdicts, so
    /// memoized answers and Δ models stay sound for later queries.
    ///
    /// Memory limits carried by the budget bound growth from this
    /// moment: current store sizes become the measurement baseline.
    pub fn set_budget(&mut self, budget: Budget) {
        self.mem_limited = budget.has_memory_limits();
        self.facts_baseline = self.ctx.fact_footprint();
        self.goals_baseline = (self.memo.len() + self.in_progress.len()) as u64;
        self.budget = budget;
    }

    /// Probes the memory caps against growth since the budget was set;
    /// `extra` adds the working set of an in-flight Δ model.
    fn check_memory(&self, extra: usize) -> Result<()> {
        let facts = self
            .ctx
            .fact_footprint()
            .saturating_sub(self.facts_baseline);
        let goals = ((self.memo.len() + self.in_progress.len() + extra) as u64)
            .saturating_sub(self.goals_baseline);
        self.budget
            .check_memory(facts, goals, self.ctx.dbs.max_depth() as u64)
    }

    /// Work counters.
    pub fn stats(&self) -> &ProveStats {
        &self.stats
    }

    /// The linear stratification in use.
    pub fn stratification(&self) -> &LinearStratification {
        &self.ls
    }

    /// The evaluation context.
    pub fn context(&self) -> &Context<'rb> {
        &self.ctx
    }

    /// Evaluates a query premise against the base database.
    pub fn holds(&mut self, query: &Premise) -> Result<bool> {
        let base = self.ctx.base_db;
        let num_vars = query.vars().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut bindings = Bindings::new(num_vars);
        let result = match query {
            Premise::Atom(atom) => {
                let free = bindings.free_vars_of(atom);
                self.exists_atomic(atom, &free, 0, &mut bindings, base)
            }
            Premise::Neg(atom) => {
                let free = bindings.free_vars_of(atom);
                self.exists_atomic(atom, &free, 0, &mut bindings, base)
                    .map(|found| !found)
            }
            Premise::Hyp { goal, adds, dels } => {
                // Definition 3: the goal is proved in `(DB ∖ C̄) ∪ B̄`,
                // whose domain includes the `add:` atoms' constants even
                // when fresh to this rulebase and database. Memoized
                // verdicts and Δ models were computed under the smaller
                // domain, so a growth invalidates them.
                let fresh = adds
                    .iter()
                    .flat_map(|a| a.args.iter().filter_map(|t| t.as_const()));
                if self.ctx.extend_domain(fresh) {
                    self.memo.clear();
                    self.delta_models.clear();
                }
                let mut free: Vec<Var> = Vec::new();
                for v in goal
                    .vars()
                    .chain(adds.iter().flat_map(|a| a.vars()))
                    .chain(dels.iter().flat_map(|a| a.vars()))
                {
                    if bindings.get(v).is_none() && !free.contains(&v) {
                        free.push(v);
                    }
                }
                self.exists_hyp(goal, adds, dels, &free, 0, &mut bindings, base)
            }
        };
        self.stats.overlay = self.ctx.dbs.overlay_stats();
        result
    }

    /// All domain tuples `x̄` such that `pattern(x̄)` is provable from the
    /// base database, sorted (mirrors the other engines' `answers`).
    pub fn answers(&mut self, pattern: &Atom) -> Result<Vec<Vec<Symbol>>> {
        let base = self.ctx.base_db;
        let num_vars = pattern.vars().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut bindings = Bindings::new(num_vars);
        let free = bindings.free_vars_of(pattern);
        let mut out = Vec::new();
        let walked = self.collect_answers(pattern, &free, 0, &mut bindings, base, &mut out);
        self.stats.overlay = self.ctx.dbs.overlay_stats();
        walked?;
        out.sort();
        out.dedup();
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn collect_answers(
        &mut self,
        pattern: &Atom,
        free: &[Var],
        pos: usize,
        bindings: &mut Bindings,
        db: DbId,
        out: &mut Vec<Vec<Symbol>>,
    ) -> Result<()> {
        if pos == free.len() {
            let fact = pattern.ground(bindings).expect("grounded");
            let fid = self.ctx.fact_id(fact);
            let mut cut = NO_CUT;
            if self.prove_atomic(fid, db, 0, &mut cut)? {
                out.push(
                    pattern
                        .args
                        .iter()
                        .map(|t| match t {
                            hdl_base::Term::Const(c) => *c,
                            hdl_base::Term::Var(v) => bindings.get(*v).expect("bound"),
                        })
                        .collect(),
                );
            }
            return Ok(());
        }
        let v = free[pos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            self.collect_answers(pattern, free, pos + 1, bindings, db, out)?;
        }
        bindings.unset(v);
        Ok(())
    }

    /// Dispatches a ground atomic goal by its predicate's partition:
    /// even → `PROVE_Σ`, odd → `PROVE_Δ` model, 0 → database membership.
    fn prove_atomic(&mut self, fact: FactId, db: DbId, depth: u64, cut: &mut u64) -> Result<bool> {
        self.budget.check()?;
        if self.ctx.db_contains(db, fact) {
            return Ok(true); // line 1 of PROVE_Σ / first case of TEST⁰
        }
        let pred = self.ctx.dbs.facts().fact(fact).pred;
        let part = self.ls.part(pred);
        if part == 0 {
            return Ok(false); // EDB predicate, not stored
        }
        if part % 2 == 1 {
            // Δ-defined: consult the segment's perfect model.
            let stratum = part.div_ceil(2);
            let model = self.delta_model(stratum, db)?;
            let fact_atom = self.ctx.dbs.facts().fact(fact).clone();
            return Ok(model.contains(&fact_atom));
        }
        // Σ-defined: top-down with tabling.
        self.sigma_prove(part / 2, fact, db, depth, cut)
    }

    /// `PROVE_Σᵢ` for one atomic goal (lines 1 and 3 plus memoization).
    fn sigma_prove(
        &mut self,
        stratum: usize,
        goal: FactId,
        db: DbId,
        depth: u64,
        cut: &mut u64,
    ) -> Result<bool> {
        if self.mem_limited {
            self.check_memory(0)?;
        }
        hdl_base::failpoint!("prove::sigma");
        let key = (goal, db);
        if let Some(&r) = self.memo.get(&key) {
            self.stats.memo_hits += 1;
            return Ok(r);
        }
        if let Some(&d0) = self.in_progress.get(&key) {
            *cut = (*cut).min(d0);
            return Ok(false);
        }
        self.stats.max_depth = self.stats.max_depth.max(depth);
        self.stats.sigma_expansions[stratum - 1] += 1;
        self.expansions_total += 1;
        if self.expansions_total > self.limits.max_expansions {
            return Err(Error::LimitExceeded {
                what: "sigma goal expansions".into(),
                limit: self.limits.max_expansions,
            });
        }

        self.in_progress.insert(key, depth);
        let result = self.sigma_expand(stratum, goal, db, depth);
        self.in_progress.remove(&key);
        match result {
            Ok((true, _)) => {
                self.memo.insert(key, true);
                Ok(true)
            }
            Ok((false, my_cut)) => {
                if my_cut >= depth {
                    self.memo.insert(key, false);
                } else {
                    *cut = (*cut).min(my_cut);
                }
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Line 3: choose a defining rule in `Σᵢ` and a grounding.
    fn sigma_expand(
        &mut self,
        stratum: usize,
        goal: FactId,
        db: DbId,
        depth: u64,
    ) -> Result<(bool, u64)> {
        let rb: &'rb Rulebase = self.ctx.rb;
        let pred = self.ctx.dbs.facts().fact(goal).pred;
        let mut my_cut = NO_CUT;
        // O(1) shared handle; the group is never copied per expansion.
        let rule_ids = Arc::clone(&self.sigma_rules[stratum - 1]);
        for &rule_idx in rule_ids.iter() {
            let rule: &'rb HypRule = &rb.rules[rule_idx];
            if rule.head.pred != pred {
                continue;
            }
            let mut bindings = Bindings::new(rule.num_vars);
            let trail = {
                let fact = self.ctx.dbs.facts().fact(goal).clone();
                bindings.match_atom(&rule.head, &fact)
            };
            let Some(trail) = trail else { continue };
            // Definition 3: substitutions range over dom(R, DB).
            if trail
                .iter()
                .any(|&v| !self.ctx.in_domain(bindings.get(v).expect("bound")))
            {
                continue;
            }
            if self.sigma_goals(
                stratum,
                rule,
                rule_idx,
                0,
                &mut bindings,
                db,
                depth,
                &mut my_cut,
            )? {
                return Ok((true, NO_CUT));
            }
        }
        Ok((false, my_cut))
    }

    /// Processes the goal set produced by a rule expansion: premises are
    /// ground and independent, so they are proved left to right with
    /// backtracking over grounding choices.
    #[allow(clippy::too_many_arguments)]
    fn sigma_goals(
        &mut self,
        stratum: usize,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        bindings: &mut Bindings,
        db: DbId,
        depth: u64,
        cut: &mut u64,
    ) -> Result<bool> {
        if idx == rule.premises.len() {
            return Ok(true);
        }
        match &rule.premises[idx] {
            Premise::Atom(atom) => {
                if !self.ctx.has_rules(atom.pred) {
                    // Membership-only goals: drive bindings from the
                    // overlay view (shared flat index + this DB's delta).
                    let candidates: Vec<FactId> =
                        self.ctx.dbs.view(db).facts_of(atom.pred).collect();
                    for fid in candidates {
                        let trail = {
                            let fact = self.ctx.dbs.facts().fact(fid);
                            bindings.match_atom(atom, fact)
                        };
                        if let Some(trail) = trail {
                            let ok = self.sigma_goals(
                                stratum,
                                rule,
                                rule_idx,
                                idx + 1,
                                bindings,
                                db,
                                depth,
                                cut,
                            )?;
                            bindings.undo(&trail);
                            if ok {
                                return Ok(true);
                            }
                        }
                    }
                    return Ok(false);
                }
                let free = bindings.free_vars_of(atom);
                self.sigma_atom_groundings(
                    stratum, rule, rule_idx, idx, atom, &free, 0, bindings, db, depth, cut,
                )
            }
            Premise::Neg(atom) => {
                // Line 4: negated goals go to PROVE_Δᵢ / the oracle chain.
                let inner = self.ctx.plans[rule_idx].inner_neg_vars[idx].clone();
                let free = bindings.free_vars_of(atom);
                let outer: Vec<Var> = free.into_iter().filter(|v| !inner.contains(v)).collect();
                self.sigma_neg_outer(
                    stratum, rule, rule_idx, idx, atom, &inner, &outer, 0, bindings, db, depth, cut,
                )
            }
            Premise::Hyp { goal, adds, dels } => {
                // Line 2: (B[add: Ā, del: C̄], DB) → (B, (DB ∖ C̄) ∪ Ā).
                let mut free: Vec<Var> = Vec::new();
                for v in goal
                    .vars()
                    .chain(adds.iter().flat_map(|a| a.vars()))
                    .chain(dels.iter().flat_map(|a| a.vars()))
                {
                    if bindings.get(v).is_none() && !free.contains(&v) {
                        free.push(v);
                    }
                }
                self.sigma_hyp_groundings(
                    stratum, rule, rule_idx, idx, goal, adds, dels, &free, 0, bindings, db, depth,
                    cut,
                )
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sigma_atom_groundings(
        &mut self,
        stratum: usize,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        atom: &'rb Atom,
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        db: DbId,
        depth: u64,
        cut: &mut u64,
    ) -> Result<bool> {
        if fpos == free.len() {
            let fact = atom.ground(bindings).expect("grounded");
            let fid = self.ctx.fact_id(fact);
            if self.prove_atomic(fid, db, depth + 1, cut)? {
                return self.sigma_goals(
                    stratum,
                    rule,
                    rule_idx,
                    idx + 1,
                    bindings,
                    db,
                    depth,
                    cut,
                );
            }
            return Ok(false);
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.sigma_atom_groundings(
                stratum,
                rule,
                rule_idx,
                idx,
                atom,
                free,
                fpos + 1,
                bindings,
                db,
                depth,
                cut,
            )? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }

    #[allow(clippy::too_many_arguments)]
    fn sigma_neg_outer(
        &mut self,
        stratum: usize,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        atom: &'rb Atom,
        inner: &[Var],
        outer: &[Var],
        opos: usize,
        bindings: &mut Bindings,
        db: DbId,
        depth: u64,
        cut: &mut u64,
    ) -> Result<bool> {
        if opos == outer.len() {
            let witnessed = self.exists_atomic(atom, inner, 0, bindings, db)?;
            if !witnessed {
                return self.sigma_goals(
                    stratum,
                    rule,
                    rule_idx,
                    idx + 1,
                    bindings,
                    db,
                    depth,
                    cut,
                );
            }
            return Ok(false);
        }
        let v = outer[opos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.sigma_neg_outer(
                stratum,
                rule,
                rule_idx,
                idx,
                atom,
                inner,
                outer,
                opos + 1,
                bindings,
                db,
                depth,
                cut,
            )? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }

    #[allow(clippy::too_many_arguments)]
    fn sigma_hyp_groundings(
        &mut self,
        stratum: usize,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        goal: &'rb Atom,
        adds: &'rb [Atom],
        dels: &'rb [Atom],
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        db: DbId,
        depth: u64,
        cut: &mut u64,
    ) -> Result<bool> {
        if fpos == free.len() {
            let add_ids: Vec<FactId> = adds
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let del_ids: Vec<FactId> = dels
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let db2 = self.ctx.dbs.apply(db, &add_ids, &del_ids);
            let gfact = goal.ground(bindings).expect("grounded");
            let gid = self.ctx.fact_id(gfact);
            if self.prove_atomic(gid, db2, depth + 1, cut)? {
                return self.sigma_goals(
                    stratum,
                    rule,
                    rule_idx,
                    idx + 1,
                    bindings,
                    db,
                    depth,
                    cut,
                );
            }
            return Ok(false);
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.sigma_hyp_groundings(
                stratum,
                rule,
                rule_idx,
                idx,
                goal,
                adds,
                dels,
                free,
                fpos + 1,
                bindings,
                db,
                depth,
                cut,
            )? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }

    /// `∃`-grounding of `vars` making `atom` provable (used for negation
    /// and top-level queries; stratification keeps these untainted).
    fn exists_atomic(
        &mut self,
        atom: &Atom,
        vars: &[Var],
        pos: usize,
        bindings: &mut Bindings,
        db: DbId,
    ) -> Result<bool> {
        if pos == vars.len() {
            let fact = atom.ground(bindings).expect("grounded");
            let fid = self.ctx.fact_id(fact);
            let mut cut = NO_CUT;
            let r = self.prove_atomic(fid, db, 0, &mut cut)?;
            debug_assert_eq!(cut, NO_CUT, "negation sub-search must be untainted");
            return Ok(r);
        }
        let v = vars[pos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.exists_atomic(atom, vars, pos + 1, bindings, db)? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }

    #[allow(clippy::too_many_arguments)]
    fn exists_hyp(
        &mut self,
        goal: &Atom,
        adds: &[Atom],
        dels: &[Atom],
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        db: DbId,
    ) -> Result<bool> {
        if fpos == free.len() {
            let add_ids: Vec<FactId> = adds
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let del_ids: Vec<FactId> = dels
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let db2 = self.ctx.dbs.apply(db, &add_ids, &del_ids);
            let gfact = goal.ground(bindings).expect("grounded");
            let gid = self.ctx.fact_id(gfact);
            let mut cut = NO_CUT;
            return self.prove_atomic(gid, db2, 0, &mut cut);
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.exists_hyp(goal, adds, dels, free, fpos + 1, bindings, db)? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }

    /// `PROVE_Δᵢ`: the perfect model of segment `Δᵢ` over `db`, memoized.
    ///
    /// Implements `LFPᵢ`/`Tᵢ` (§5.2.2): the segment's rules are applied to
    /// a growing model in sub-stratum order until fixpoint; `TESTᵢ⁰`
    /// resolves premises over lower-defined predicates through
    /// [`Self::prove_atomic`] (the `PROVE_Σᵢ₋₁` oracle).
    ///
    /// Each sub-stratum's fixpoint is *semi-naive* (DESIGN.md §3.11): the
    /// model is split into an `older` layer and the previous round's
    /// `delta`; after round 0, rules re-fire only through rotations that
    /// pin one of their growing-predicate premises to the delta. Oracle
    /// premises (atoms and hypotheticals resolved below the segment) are
    /// round-invariant, so rules carrying them still rotate — only their
    /// layered premises drive re-firing. Pure rules (every premise
    /// answered by the layered model) fan out across worker threads like
    /// the bottom-up engine's.
    fn delta_model(&mut self, stratum: usize, db: DbId) -> Result<Arc<Database>> {
        let key = (stratum, db);
        if let Some(m) = self.delta_models.get(&key) {
            return Ok(Arc::clone(m));
        }
        self.stats.delta_models += 1;
        // The model stores only derived facts; the EDB layer is answered
        // by the overlay view, so memoizing a Δ model for an augmented
        // database costs O(|derived|) instead of a full database copy.
        let groups = Arc::clone(&self.delta_rules[stratum - 1]);
        let classes_by_group = Arc::clone(&self.delta_classes[stratum - 1]);
        let delta_part = 2 * stratum - 1;
        let mut older = Database::new();
        let mut trajectory: Vec<u64> = Vec::new();
        // LFPᵢ per sub-stratum, applied in order: negation within the
        // segment only ever consults sub-strata that are already closed.
        for (g, group) in groups.iter().enumerate() {
            let classes: &[RuleClass] = &classes_by_group[g];
            let mut delta = Database::new();
            let mut round: u64 = 0;
            loop {
                // A trip here drops the partial model locals (they were
                // never memoized), so Δ models stay sound.
                if self.mem_limited {
                    self.check_memory(older.len() + delta.len())?;
                }
                hdl_base::failpoint!("prove::delta_round");
                let mut fresh: Vec<GroundAtom> = Vec::new();
                let mut impure: Vec<(usize, Option<usize>)> = Vec::new();
                let tasks = self.schedule_delta_round(
                    db,
                    group,
                    classes,
                    round,
                    &older,
                    &delta,
                    &mut impure,
                );
                self.expansions_total += (tasks.len() + impure.len()) as u64;
                if self.expansions_total > self.limits.max_expansions {
                    return Err(Error::LimitExceeded {
                        what: "delta rule firings".into(),
                        limit: self.limits.max_expansions,
                    });
                }
                self.run_delta_pure(db, &older, &delta, classes, &tasks, &mut fresh)?;
                for &(rule_idx, rot_j) in &impure {
                    self.fire_delta(
                        rule_idx,
                        rot_j,
                        delta_part,
                        &classes[rule_idx],
                        &older,
                        &delta,
                        db,
                        &mut fresh,
                    )?;
                }
                // Round barrier: facts not seen in any layer become the
                // next delta; the old delta ages into `older`. Derived
                // facts stay disjoint from the EDB layer.
                let mut next_delta = Database::new();
                for f in fresh {
                    if self.ctx.dbs.view(db).contains(&f)
                        || older.contains(&f)
                        || delta.contains(&f)
                    {
                        continue;
                    }
                    next_delta.insert(f);
                }
                older.absorb(&delta);
                delta = next_delta;
                trajectory.push(delta.len() as u64);
                if delta.is_empty() {
                    break;
                }
                round += 1;
            }
        }
        if !trajectory.is_empty() {
            self.stats.delta_facts_per_round = trajectory;
        }
        let arc = Arc::new(older);
        self.delta_models.insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Builds one Δ round's work list, mirroring the bottom-up engine's
    /// scheduler: round 0 evaluates every rule fully; later rounds fire
    /// only delta-rotations (seeded on the rotated premise's delta
    /// matches, skipped outright when the seed is empty). Pure tasks are
    /// chunked over their seed rows for data parallelism; impure `(rule,
    /// rot_j)` firings go to the sequential oracle path.
    #[allow(clippy::too_many_arguments)]
    fn schedule_delta_round(
        &mut self,
        db: DbId,
        group: &[usize],
        classes: &[RuleClass],
        round: u64,
        older: &Database,
        delta: &Database,
        impure: &mut Vec<(usize, Option<usize>)>,
    ) -> Vec<PureTask> {
        let mut seeded: Vec<(usize, Option<usize>, Option<Seed>)> = Vec::new();
        let mut counters = MatchCounters::default();
        let layers = ModelLayers::new(self.ctx.dbs.view(db), older, delta);
        for &rule_idx in group {
            let rule = &self.ctx.rb.rules[rule_idx];
            let class = &classes[rule_idx];
            if round == 0 || class.hyp_sensitive {
                if !class.pure {
                    impure.push((rule_idx, None));
                    continue;
                }
                // Pure rules have no oracle premises, so any positive atom
                // is layered and can seed the full evaluation; a positive
                // premise with no matches kills the rule.
                let seed_idx = rule
                    .premises
                    .iter()
                    .position(|p| matches!(p, Premise::Atom(_)));
                match seed_idx {
                    Some(i) => {
                        let Premise::Atom(atom) = &rule.premises[i] else {
                            unreachable!()
                        };
                        let mut b = Bindings::new(rule.num_vars);
                        let rows = layers.collect_matches(Part::Full, atom, &mut b, &mut counters);
                        if !rows.is_empty() {
                            seeded.push((rule_idx, None, Some((i, rows))));
                        }
                    }
                    None => seeded.push((rule_idx, None, None)),
                }
            } else if !class.rot.is_empty() {
                for &j in &class.rot {
                    let Premise::Atom(atom) = &rule.premises[j] else {
                        unreachable!("rot positions are positive atoms")
                    };
                    let mut b = Bindings::new(rule.num_vars);
                    let rows = layers.collect_matches(Part::Delta, atom, &mut b, &mut counters);
                    if rows.is_empty() {
                        continue;
                    }
                    if class.pure {
                        seeded.push((rule_idx, Some(j), Some((j, rows))));
                    } else {
                        impure.push((rule_idx, Some(j)));
                    }
                }
            }
        }
        self.absorb_matches(counters);
        chunk_tasks(seeded, self.workers)
    }

    /// Runs the round's pure Δ tasks — on scoped worker threads when the
    /// pool and the workload justify it, inline otherwise. Results land in
    /// `fresh` in task order, so the outcome is deterministic for every
    /// pool size.
    fn run_delta_pure(
        &mut self,
        db: DbId,
        older: &Database,
        delta: &Database,
        classes: &[RuleClass],
        tasks: &[PureTask],
        fresh: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        if tasks.is_empty() {
            return Ok(());
        }
        let weight: usize = tasks
            .iter()
            .map(|t| t.seed.as_ref().map_or(64, |(_, rows)| rows.len()))
            .sum();
        let eligible = self.workers > 1 && tasks.len() > 1;
        let spawn = eligible && weight >= PARALLEL_MIN_DELTA;
        if eligible && !spawn {
            self.stats.parallel_skipped += 1;
        }
        let layers = ModelLayers::new(self.ctx.dbs.view(db), older, delta);
        if spawn {
            self.stats.parallel_rounds += 1;
            let (counters, result) = run_pure_parallel(
                self.workers,
                &self.ctx.rb.rules,
                &self.ctx.plans,
                classes,
                layers,
                &self.ctx.domain,
                "prove::delta_fire",
                &self.budget,
                tasks,
                fresh,
            );
            self.absorb_matches(counters);
            return result;
        }
        let mut counters = MatchCounters::default();
        let mut result = Ok(());
        for task in tasks {
            if let Err(e) = fire_pure(
                &self.ctx.rb.rules[task.rule_idx],
                &self.ctx.plans[task.rule_idx],
                &classes[task.rule_idx],
                layers,
                task,
                &self.ctx.domain,
                "prove::delta_fire",
                &mut self.budget,
                &mut counters,
                fresh,
            ) {
                result = Err(e);
                break;
            }
        }
        self.absorb_matches(counters);
        result
    }

    /// One application of `Tᵢ` for a single impure Δ rule (it carries
    /// oracle or hypothetical premises), under rotation `rot_j`.
    #[allow(clippy::too_many_arguments)]
    fn fire_delta(
        &mut self,
        rule_idx: usize,
        rot_j: Option<usize>,
        delta_part: usize,
        class: &RuleClass,
        older: &Database,
        delta: &Database,
        db: DbId,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        let rb: &'rb Rulebase = self.ctx.rb;
        let rule: &'rb HypRule = &rb.rules[rule_idx];
        let mut bindings = Bindings::new(rule.num_vars);
        self.delta_walk(
            rule,
            rule_idx,
            rot_j,
            delta_part,
            class,
            0,
            &mut bindings,
            older,
            delta,
            db,
            out,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn delta_walk(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        rot_j: Option<usize>,
        delta_part: usize,
        class: &RuleClass,
        idx: usize,
        bindings: &mut Bindings,
        older: &Database,
        delta: &Database,
        db: DbId,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        self.budget.check()?;
        if idx == rule.premises.len() {
            let free = bindings.free_vars_of(&rule.head);
            return self.delta_emit(rule, &free, 0, bindings, out);
        }
        match &rule.premises[idx] {
            Premise::Atom(atom) => {
                let part = self.ls.part(atom.pred);
                if part == delta_part || part == 0 {
                    // Same segment (growing derived model) or EDB (overlay
                    // view): match the layer slice the rotation assigns.
                    let slice = part_for(class, rot_j, idx);
                    let mut c = MatchCounters::default();
                    let rows = ModelLayers::new(self.ctx.dbs.view(db), older, delta)
                        .collect_matches(slice, atom, bindings, &mut c);
                    self.absorb_matches(c);
                    for row in rows {
                        for &(v, c) in &row {
                            bindings.set(v, c);
                        }
                        self.delta_walk(
                            rule,
                            rule_idx,
                            rot_j,
                            delta_part,
                            class,
                            idx + 1,
                            bindings,
                            older,
                            delta,
                            db,
                            out,
                        )?;
                        for &(v, _) in &row {
                            bindings.unset(v);
                        }
                    }
                    Ok(())
                } else {
                    // Defined below this segment: oracle per grounding
                    // (round-invariant while this fixpoint grows).
                    self.stats.oracle_calls += 1;
                    let free = bindings.free_vars_of(atom);
                    self.delta_oracle_groundings(
                        rule, rule_idx, rot_j, delta_part, class, idx, atom, &free, 0, bindings,
                        older, delta, db, out,
                    )
                }
            }
            Premise::Neg(atom) => {
                let inner = self.ctx.plans[rule_idx].inner_neg_vars[idx].clone();
                let free = bindings.free_vars_of(atom);
                let outer: Vec<Var> = free.into_iter().filter(|v| !inner.contains(v)).collect();
                self.delta_neg_outer(
                    rule, rule_idx, rot_j, delta_part, class, idx, atom, &inner, &outer, 0,
                    bindings, older, delta, db, out,
                )
            }
            Premise::Hyp { goal, adds, dels } => {
                // TEST⁰'s final case: a hypothetical premise resolved by
                // the oracle — apply the insertions/deletions and prove
                // below.
                self.stats.oracle_calls += 1;
                let mut free: Vec<Var> = Vec::new();
                for v in goal
                    .vars()
                    .chain(adds.iter().flat_map(|a| a.vars()))
                    .chain(dels.iter().flat_map(|a| a.vars()))
                {
                    if bindings.get(v).is_none() && !free.contains(&v) {
                        free.push(v);
                    }
                }
                self.delta_hyp_groundings(
                    rule, rule_idx, rot_j, delta_part, class, idx, goal, adds, dels, &free, 0,
                    bindings, older, delta, db, out,
                )
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn delta_oracle_groundings(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        rot_j: Option<usize>,
        delta_part: usize,
        class: &RuleClass,
        idx: usize,
        atom: &'rb Atom,
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        older: &Database,
        delta: &Database,
        db: DbId,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        if fpos == free.len() {
            let fact = atom.ground(bindings).expect("grounded");
            let fid = self.ctx.fact_id(fact);
            let mut cut = NO_CUT;
            if self.prove_atomic(fid, db, 0, &mut cut)? {
                self.delta_walk(
                    rule,
                    rule_idx,
                    rot_j,
                    delta_part,
                    class,
                    idx + 1,
                    bindings,
                    older,
                    delta,
                    db,
                    out,
                )?;
            }
            return Ok(());
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            self.expansions_total += 1;
            bindings.set(v, c);
            self.delta_oracle_groundings(
                rule,
                rule_idx,
                rot_j,
                delta_part,
                class,
                idx,
                atom,
                free,
                fpos + 1,
                bindings,
                older,
                delta,
                db,
                out,
            )?;
        }
        bindings.unset(v);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn delta_neg_outer(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        rot_j: Option<usize>,
        delta_part: usize,
        class: &RuleClass,
        idx: usize,
        atom: &'rb Atom,
        inner: &[Var],
        outer: &[Var],
        opos: usize,
        bindings: &mut Bindings,
        older: &Database,
        delta: &Database,
        db: DbId,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        if opos == outer.len() {
            let part = self.ls.part(atom.pred);
            let witnessed = if part == delta_part || part == 0 {
                // Sub-strata ordering guarantees the negated predicate's
                // tuples are complete in the growing model.
                let mut c = MatchCounters::default();
                let found = ModelLayers::new(self.ctx.dbs.view(db), older, delta).exists(
                    Part::Full,
                    atom,
                    bindings,
                    &mut c,
                );
                self.absorb_matches(c);
                found
            } else {
                self.stats.oracle_calls += 1;
                self.exists_atomic(atom, inner, 0, bindings, db)?
            };
            if !witnessed {
                self.delta_walk(
                    rule,
                    rule_idx,
                    rot_j,
                    delta_part,
                    class,
                    idx + 1,
                    bindings,
                    older,
                    delta,
                    db,
                    out,
                )?;
            }
            return Ok(());
        }
        let v = outer[opos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            self.expansions_total += 1;
            bindings.set(v, c);
            self.delta_neg_outer(
                rule,
                rule_idx,
                rot_j,
                delta_part,
                class,
                idx,
                atom,
                inner,
                outer,
                opos + 1,
                bindings,
                older,
                delta,
                db,
                out,
            )?;
        }
        bindings.unset(v);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn delta_hyp_groundings(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        rot_j: Option<usize>,
        delta_part: usize,
        class: &RuleClass,
        idx: usize,
        goal: &'rb Atom,
        adds: &'rb [Atom],
        dels: &'rb [Atom],
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        older: &Database,
        delta: &Database,
        db: DbId,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        if fpos == free.len() {
            let add_ids: Vec<FactId> = adds
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let del_ids: Vec<FactId> = dels
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let db2 = self.ctx.dbs.apply(db, &add_ids, &del_ids);
            let gfact = goal.ground(bindings).expect("grounded");
            let gid = self.ctx.fact_id(gfact);
            let mut cut = NO_CUT;
            if self.prove_atomic(gid, db2, 0, &mut cut)? {
                self.delta_walk(
                    rule,
                    rule_idx,
                    rot_j,
                    delta_part,
                    class,
                    idx + 1,
                    bindings,
                    older,
                    delta,
                    db,
                    out,
                )?;
            }
            return Ok(());
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            self.expansions_total += 1;
            bindings.set(v, c);
            self.delta_hyp_groundings(
                rule,
                rule_idx,
                rot_j,
                delta_part,
                class,
                idx,
                goal,
                adds,
                dels,
                free,
                fpos + 1,
                bindings,
                older,
                delta,
                db,
                out,
            )?;
        }
        bindings.unset(v);
        Ok(())
    }

    fn delta_emit(
        &mut self,
        rule: &'rb HypRule,
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        if fpos == free.len() {
            out.push(rule.head.ground(bindings).expect("head grounded"));
            return Ok(());
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            self.expansions_total += 1;
            bindings.set(v, c);
            self.delta_emit(rule, free, fpos + 1, bindings, out)?;
        }
        bindings.unset(v);
        Ok(())
    }
}

/// Groups Δ-segment rules by internal negation sub-strata (§5.2.2's
/// `Δᵢ₁,…,Δᵢₘ`): a rule whose body negates a predicate defined in the same
/// segment must belong to a strictly later sub-stratum, so that the
/// negated predicate is saturated before the negation is tested.
fn substrata(rb: &Rulebase, ls: &LinearStratification, delta: &[usize]) -> Vec<Vec<usize>> {
    // Assign each Δ-defined predicate a sub-stratum: lfp of
    //   sub(p) ≥ sub(q)       for positive edges within the segment,
    //   sub(p) ≥ sub(q) + 1   for negative edges within the segment.
    let mut sub: FxHashMap<Symbol, usize> = FxHashMap::default();
    for &i in delta {
        sub.insert(rb.rules[i].head.pred, 0);
    }
    let mut changed = true;
    let mut guard = 0usize;
    while changed && guard <= 2 * delta.len() + 2 {
        changed = false;
        guard += 1;
        for &i in delta {
            let rule = &rb.rules[i];
            let head = rule.head.pred;
            let mut need = sub[&head];
            for premise in &rule.premises {
                match premise {
                    Premise::Atom(a) => {
                        if let Some(&s) = sub.get(&a.pred) {
                            need = need.max(s);
                        }
                    }
                    Premise::Neg(a) => {
                        if let Some(&s) = sub.get(&a.pred) {
                            if ls.part(a.pred) == ls.part(head) {
                                need = need.max(s + 1);
                            }
                        }
                    }
                    Premise::Hyp { .. } => {}
                }
            }
            if need > sub[&head] {
                sub.insert(head, need);
                changed = true;
            }
        }
    }
    let max_sub = delta
        .iter()
        .map(|&i| sub[&rb.rules[i].head.pred])
        .max()
        .unwrap_or(0);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); max_sub + 1];
    for &i in delta {
        groups[sub[&rb.rules[i].head.pred]].push(i);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Semi-naive classification of one sub-stratum group's rules, indexed
/// like `rb.rules` (rules outside the group keep the inert default).
///
/// Within a Δ sub-stratum, the growing predicates are exactly the group's
/// own head predicates: positive premises over them are rotatable. Every
/// other premise is round-invariant while the group's fixpoint runs —
/// same-segment predicates from earlier sub-strata are closed, EDB atoms
/// are fixed, and oracle premises (part below the segment) are resolved
/// against memoized lower machinery. A rule is *pure* when no premise
/// needs the oracle (`&mut` recursion): all its atoms and negations stay
/// within `{delta_part, 0}` and it has no hypothetical premises. A
/// hypothetical premise whose goal predicate lives in this very segment
/// is conservatively `hyp_sensitive`: its verdict can flip as the model
/// grows, so the rule re-fires fully each round.
fn classify_group(
    rb: &Rulebase,
    ls: &LinearStratification,
    group: &[usize],
    delta_part: usize,
) -> Vec<RuleClass> {
    let head_preds: Vec<Symbol> = group.iter().map(|&i| rb.rules[i].head.pred).collect();
    let mut classes = vec![RuleClass::default(); rb.rules.len()];
    for &rule_idx in group {
        let rule = &rb.rules[rule_idx];
        let mut pure = true;
        let mut hyp_sensitive = false;
        let mut rot = Vec::new();
        for (i, p) in rule.premises.iter().enumerate() {
            match p {
                Premise::Atom(a) => {
                    let part = ls.part(a.pred);
                    if part == delta_part && head_preds.contains(&a.pred) {
                        rot.push(i);
                    } else if part != delta_part && part != 0 {
                        pure = false; // oracle call
                    }
                }
                Premise::Neg(a) => {
                    let part = ls.part(a.pred);
                    if part != delta_part && part != 0 {
                        pure = false; // oracle call
                    }
                }
                Premise::Hyp { goal, .. } => {
                    pure = false;
                    if ls.part(goal.pred) == delta_part {
                        hyp_sensitive = true;
                    }
                }
            }
        }
        classes[rule_idx] = RuleClass {
            pure,
            hyp_sensitive,
            rot,
        };
    }
    classes
}
