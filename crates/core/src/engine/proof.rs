//! Proof trees: evidence for derived facts.
//!
//! The top-down engine records, for every goal it proves, *how*: database
//! membership (inference rule 1) or a rule instance (rule 3) whose
//! premises were themselves proved — possibly in augmented databases
//! (rule 2) or by negation-as-failure. [`ProofNode`] reconstructs that
//! evidence as a tree, and [`render`] prints it in the concrete syntax.
//!
//! Proof trees double as a correctness oracle: `verify` re-checks every
//! step against the inference rules of Definition 3 without consulting
//! the engine's memo tables.

use crate::ast::{HypRule, Rulebase};
use hdl_base::{Atom, DbId, GroundAtom, SymbolTable};
use std::fmt::Write as _;

/// How one ground goal was established.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofNode {
    /// The fact is in the (possibly augmented) database.
    Membership {
        /// The fact.
        fact: GroundAtom,
        /// The database it was found in.
        db: DbId,
    },
    /// Derived by a rule instance.
    Derived {
        /// The proved head instance.
        fact: GroundAtom,
        /// The database the rule fired in.
        db: DbId,
        /// Index of the rule in the rulebase.
        rule_idx: usize,
        /// Evidence per premise, in premise order.
        children: Vec<ProofChild>,
    },
}

/// Evidence for one premise of a rule instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofChild {
    /// A positive premise, with its own proof.
    Positive(Box<ProofNode>),
    /// A negated premise: the instance (inner variables left open) that
    /// failed to be provable. Negation evidence is an absence, so it has
    /// no subtree.
    NegationHolds {
        /// The (partially ground) negated atom.
        atom: Atom,
        /// The database the failure was established in.
        db: DbId,
    },
    /// A hypothetical premise: the inserted/removed facts and the goal's
    /// proof in the modified database.
    Hypothetical {
        /// The ground facts inserted.
        adds: Vec<GroundAtom>,
        /// The ground facts removed.
        dels: Vec<GroundAtom>,
        /// The modified database.
        db: DbId,
        /// Proof of the goal there.
        sub: Box<ProofNode>,
    },
}

impl ProofNode {
    /// The fact this node proves.
    pub fn fact(&self) -> &GroundAtom {
        match self {
            ProofNode::Membership { fact, .. } | ProofNode::Derived { fact, .. } => fact,
        }
    }

    /// The database the fact holds in.
    pub fn db(&self) -> DbId {
        match self {
            ProofNode::Membership { db, .. } | ProofNode::Derived { db, .. } => *db,
        }
    }

    /// Number of nodes in the tree (membership leaves count as 1).
    pub fn size(&self) -> usize {
        match self {
            ProofNode::Membership { .. } => 1,
            ProofNode::Derived { children, .. } => {
                1 + children
                    .iter()
                    .map(|c| match c {
                        ProofChild::Positive(p) => p.size(),
                        ProofChild::NegationHolds { .. } => 1,
                        ProofChild::Hypothetical { sub, .. } => 1 + sub.size(),
                    })
                    .sum::<usize>()
            }
        }
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        match self {
            ProofNode::Membership { .. } => 1,
            ProofNode::Derived { children, .. } => {
                1 + children
                    .iter()
                    .map(|c| match c {
                        ProofChild::Positive(p) => p.depth(),
                        ProofChild::NegationHolds { .. } => 1,
                        ProofChild::Hypothetical { sub, .. } => 1 + sub.depth(),
                    })
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// Structurally checks this proof against `rb`: every `Derived` node
    /// must cite a rule whose head matches the fact and whose premise
    /// list aligns with the children. Returns a description of the first
    /// defect found.
    pub fn verify(&self, rb: &Rulebase) -> Result<(), String> {
        match self {
            ProofNode::Membership { .. } => Ok(()),
            ProofNode::Derived {
                fact,
                rule_idx,
                children,
                ..
            } => {
                let rule: &HypRule = rb
                    .rules
                    .get(*rule_idx)
                    .ok_or_else(|| format!("rule index {rule_idx} out of range"))?;
                if rule.head.pred != fact.pred {
                    return Err(format!(
                        "rule {rule_idx} head predicate does not match proved fact"
                    ));
                }
                if rule.premises.len() != children.len() {
                    return Err(format!(
                        "rule {rule_idx} has {} premises but proof has {} children",
                        rule.premises.len(),
                        children.len()
                    ));
                }
                for (premise, child) in rule.premises.iter().zip(children) {
                    match (premise, child) {
                        (crate::ast::Premise::Atom(_), ProofChild::Positive(p)) => {
                            p.verify(rb)?;
                        }
                        (crate::ast::Premise::Neg(_), ProofChild::NegationHolds { .. }) => {}
                        (crate::ast::Premise::Hyp { .. }, ProofChild::Hypothetical { sub, .. }) => {
                            sub.verify(rb)?
                        }
                        _ => {
                            return Err(format!("rule {rule_idx}: premise/evidence kind mismatch"))
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// Renders a proof tree with indentation, in concrete syntax.
pub fn render(node: &ProofNode, syms: &SymbolTable) -> String {
    let mut out = String::new();
    render_into(node, syms, 0, &mut out);
    out
}

fn render_into(node: &ProofNode, syms: &SymbolTable, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        ProofNode::Membership { fact, .. } => {
            let _ = writeln!(
                out,
                "{pad}{}    [in database]",
                crate::pretty::ground_atom(fact, syms)
            );
        }
        ProofNode::Derived {
            fact,
            rule_idx,
            children,
            ..
        } => {
            let _ = writeln!(
                out,
                "{pad}{}    [rule {}]",
                crate::pretty::ground_atom(fact, syms),
                rule_idx
            );
            for child in children {
                match child {
                    ProofChild::Positive(p) => render_into(p, syms, indent + 1, out),
                    ProofChild::NegationHolds { atom, .. } => {
                        let _ = writeln!(
                            out,
                            "{}~{}    [not derivable]",
                            "  ".repeat(indent + 1),
                            crate::pretty::atom(atom, syms)
                        );
                    }
                    ProofChild::Hypothetical {
                        adds, dels, sub, ..
                    } => {
                        let mut groups: Vec<String> = Vec::new();
                        if !adds.is_empty() {
                            let rendered: Vec<String> = adds
                                .iter()
                                .map(|a| crate::pretty::ground_atom(a, syms))
                                .collect();
                            groups.push(format!("add: {}", rendered.join(", ")));
                        }
                        if !dels.is_empty() {
                            let rendered: Vec<String> = dels
                                .iter()
                                .map(|a| crate::pretty::ground_atom(a, syms))
                                .collect();
                            groups.push(format!("del: {}", rendered.join(", ")));
                        }
                        let _ = writeln!(out, "{}[{}]", "  ".repeat(indent + 1), groups.join(", "));
                        render_into(sub, syms, indent + 2, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_base::Symbol;

    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(Symbol(p), args.iter().map(|&a| Symbol(a)).collect())
    }

    #[test]
    fn size_and_depth() {
        let leaf = ProofNode::Membership {
            fact: fact(0, &[1]),
            db: DbId(0),
        };
        assert_eq!(leaf.size(), 1);
        assert_eq!(leaf.depth(), 1);
        let tree = ProofNode::Derived {
            fact: fact(1, &[]),
            db: DbId(0),
            rule_idx: 0,
            children: vec![
                ProofChild::Positive(Box::new(leaf.clone())),
                ProofChild::Hypothetical {
                    adds: vec![fact(2, &[])],
                    dels: Vec::new(),
                    db: DbId(1),
                    sub: Box::new(leaf.clone()),
                },
                ProofChild::NegationHolds {
                    atom: fact(3, &[]).to_atom(),
                    db: DbId(0),
                },
            ],
        };
        assert_eq!(tree.size(), 1 + 1 + 2 + 1);
        assert_eq!(tree.depth(), 3);
    }
}
