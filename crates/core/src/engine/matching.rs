//! Shared premise-matching over layered models.
//!
//! Both bottom-up closures — [`crate::engine::bottomup::BottomUpEngine`]'s
//! `ensure_model` and the `PROVE_Δᵢ` fixpoint in
//! [`crate::engine::prove::ProveEngine`] — evaluate rule premises against
//! a model split across layers: the interned EDB (a [`DbView`] over the
//! overlay DAG), facts derived in earlier fixpoint rounds, and the facts
//! derived in the *previous* round (the semi-naive delta). This module
//! owns that layering so the two engines stop carrying copy-pasted match
//! helpers, and so the semi-naive delta-rotation reads the same three
//! layers everywhere.
//!
//! Layer discipline (classic semi-naive evaluation):
//!
//! - `Full`  = EDB ∪ older ∪ delta — the model after round `r-1`.
//! - `Old`   = EDB ∪ older — the model after round `r-2`.
//! - `Delta` = delta — facts first derived in round `r-1`.
//!
//! A rule with positive premises `p₁ … pₙ` over the growing stratum fires
//! each instantiation exactly once per round via the rotation
//! `Full^{<j} ⋈ Δp_j ⋈ Old^{>j}`: premise `j` is pinned to the delta,
//! premises before it read the full model, premises after it the old one.

use crate::ast::{HypRule, Premise};
use crate::engine::budget::Budget;
use crate::engine::context::RulePlan;
use hdl_base::{
    Atom, Bindings, Database, DbView, Error, GroundAtom, MatchCounters, Result, Symbol, Var,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Which slice of the layered model a premise reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Part {
    /// EDB ∪ older ∪ delta (the whole model so far).
    Full,
    /// EDB ∪ older (the model minus the newest round).
    Old,
    /// Only the facts derived in the previous round.
    Delta,
}

/// A bottom-up model split into EDB view + derived layers.
///
/// `older` and `delta` are disjoint from each other and from the view
/// (derivation only records facts not already present), so no match
/// repeats across layers.
#[derive(Clone, Copy)]
pub struct ModelLayers<'a> {
    /// The interned extensional layer (and, for `PROVE_Δᵢ`, everything
    /// below the current stratum).
    pub view: DbView<'a>,
    /// Facts derived before the previous round.
    pub older: &'a Database,
    /// Facts derived in the previous round.
    pub delta: &'a Database,
}

impl<'a> ModelLayers<'a> {
    /// Layers for semi-naive rotation.
    pub fn new(view: DbView<'a>, older: &'a Database, delta: &'a Database) -> Self {
        ModelLayers { view, older, delta }
    }

    /// Runs `f` on every match of `atom` in the selected `part`,
    /// accumulating probe/attempt work into `counters`. `f` returning
    /// `true` stops the scan early; bindings are restored between
    /// candidates and after the call. Returns `true` if `f` stopped it.
    pub fn for_each_match(
        &self,
        part: Part,
        atom: &Atom,
        bindings: &mut Bindings,
        counters: &mut MatchCounters,
        mut f: impl FnMut(&mut Bindings) -> bool,
    ) -> bool {
        match part {
            Part::Full => {
                self.view
                    .for_each_match_counted(atom, bindings, counters, &mut f)
                    || self
                        .older
                        .for_each_match_counted(atom, bindings, counters, &mut f)
                    || self
                        .delta
                        .for_each_match_counted(atom, bindings, counters, f)
            }
            Part::Old => {
                self.view
                    .for_each_match_counted(atom, bindings, counters, &mut f)
                    || self
                        .older
                        .for_each_match_counted(atom, bindings, counters, f)
            }
            Part::Delta => self
                .delta
                .for_each_match_counted(atom, bindings, counters, f),
        }
    }

    /// Collects the binding rows matching `atom` in the selected `part`
    /// (only the newly bound variables are recorded, for replay in the
    /// caller).
    pub fn collect_matches(
        &self,
        part: Part,
        atom: &Atom,
        bindings: &mut Bindings,
        counters: &mut MatchCounters,
    ) -> Vec<Vec<(Var, Symbol)>> {
        let before: Vec<Var> = bindings.free_vars_of(atom);
        let mut rows = Vec::new();
        self.for_each_match(part, atom, bindings, counters, |b| {
            rows.push(
                before
                    .iter()
                    .map(|&v| (v, b.get(v).expect("bound by match")))
                    .collect(),
            );
            false
        });
        rows
    }

    /// Whether `atom` matches anywhere in the selected `part`.
    pub fn exists(
        &self,
        part: Part,
        atom: &Atom,
        bindings: &mut Bindings,
        counters: &mut MatchCounters,
    ) -> bool {
        self.for_each_match(part, atom, bindings, counters, |_| true)
    }
}

/// The variables of `goal`, `adds`, and `dels` not bound under
/// `bindings`, in first-occurrence order (the enumeration order for
/// grounding a hypothetical premise over the domain).
pub fn collect_free(goal: &Atom, adds: &[Atom], dels: &[Atom], bindings: &Bindings) -> Vec<Var> {
    let mut free: Vec<Var> = Vec::new();
    for v in goal
        .vars()
        .chain(adds.iter().flat_map(|a| a.vars()))
        .chain(dels.iter().flat_map(|a| a.vars()))
    {
        if bindings.get(v).is_none() && !free.contains(&v) {
            free.push(v);
        }
    }
    free
}

/// An empty derived layer, for callers whose model has no delta split
/// (round 0, or naive reference evaluation).
pub fn empty_layer() -> &'static Database {
    static EMPTY: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    EMPTY.get_or_init(Database::new)
}

/// Static classification of one rule for semi-naive scheduling, relative
/// to the model slice its fixpoint grows.
#[derive(Default, Clone, Debug)]
pub struct RuleClass {
    /// Every premise resolves against the layered model alone (no
    /// hypothetical recursion, no oracle calls): a firing needs only
    /// shared reads, so it can run on a worker thread.
    pub pure: bool,
    /// Some premise outside the rotatable set can change value while the
    /// fixpoint grows (e.g. a degenerate hypothetical reading the growing
    /// model). Rotation cannot see such premises flip; the rule re-fires
    /// fully each round.
    pub hyp_sensitive: bool,
    /// Positions of positive premises over the growing predicates — the
    /// premises the semi-naive rotation can pin to the delta.
    pub rot: Vec<usize>,
}

/// One binding row of a matched premise: the variables the match bound.
pub type Row = Vec<(Var, Symbol)>;

/// A seed: the premise position consumed up front, and its match rows.
pub type Seed = (usize, Vec<Row>);

/// One unit of pure-rule work in a round: fire `rule_idx` under rotation
/// `rot_j` (`None` = full evaluation), with premise `seed.0` pre-bound to
/// each row of `seed.1` (the seed premise's matches, collected up front
/// so they can be chunked across workers).
pub struct PureTask {
    /// Index of the rule in the rulebase.
    pub rule_idx: usize,
    /// The delta-rotation pivot, or `None` for full evaluation.
    pub rot_j: Option<usize>,
    /// Pre-bound premise position and its match rows, if seeded.
    pub seed: Option<Seed>,
}

/// Minimum total seed rows (delta width) in a round before worker
/// threads are spawned; below this the per-round scope/merge cost
/// outweighs the join work and parallel firing *loses* — tc_chain's
/// ~190-fact rounds ran 2× slower at 4 workers under the old 128-row
/// threshold. Rounds skipped by this gate are counted in
/// `parallel_skipped`, and the fixpoint bench gates
/// `parallel_speedup ≥ 0.95` so parallelism can no longer regress.
pub const PARALLEL_MIN_DELTA: usize = 1024;

/// The model slice premise `idx` reads under rotation `rot_j`: the
/// standard semi-naive assignment `Full^{<j} ⋈ Δ_j ⋈ Old^{>j}` over the
/// rule's rotatable positions; everything else (closed-strata atoms,
/// negations, oracle premises) reads the full model, where it is
/// round-invariant anyway.
pub fn part_for(class: &RuleClass, rot_j: Option<usize>, idx: usize) -> Part {
    match rot_j {
        None => Part::Full,
        Some(j) => {
            if idx < j || !class.rot.contains(&idx) {
                Part::Full
            } else if idx == j {
                Part::Delta
            } else {
                Part::Old
            }
        }
    }
}

/// Fires one pure task: replays each seed row into the bindings and walks
/// the remaining premises. A free function over shared references so
/// worker threads can run it; `site` is the engine's failpoint name,
/// probed once per task so injection stays live inside worker loops.
#[allow(clippy::too_many_arguments)]
pub fn fire_pure(
    rule: &HypRule,
    plan: &RulePlan,
    class: &RuleClass,
    layers: ModelLayers<'_>,
    task: &PureTask,
    domain: &[Symbol],
    site: &'static str,
    budget: &mut Budget,
    counters: &mut MatchCounters,
    out: &mut Vec<GroundAtom>,
) -> Result<()> {
    // `failpoint!` compiles to nothing without the feature; keep `site`
    // formally used either way.
    let _ = site;
    hdl_base::failpoint!(site);
    let mut bindings = Bindings::new(rule.num_vars);
    match &task.seed {
        Some((sidx, rows)) => {
            for row in rows {
                for &(v, c) in row {
                    bindings.set(v, c);
                }
                walk_pure(
                    rule,
                    plan,
                    class,
                    layers,
                    task.rot_j,
                    Some(*sidx),
                    0,
                    &mut bindings,
                    domain,
                    budget,
                    counters,
                    out,
                )?;
                for &(v, _) in row {
                    bindings.unset(v);
                }
            }
            Ok(())
        }
        None => walk_pure(
            rule,
            plan,
            class,
            layers,
            task.rot_j,
            None,
            0,
            &mut bindings,
            domain,
            budget,
            counters,
            out,
        ),
    }
}

/// The shared-read premise walk for pure rules: every positive premise
/// matches the layered model slice its rotation assigns, negations test
/// the full model, and head grounding enumerates the domain. Touches only
/// shared data plus per-worker budget/counters/output.
#[allow(clippy::too_many_arguments)]
fn walk_pure(
    rule: &HypRule,
    plan: &RulePlan,
    class: &RuleClass,
    layers: ModelLayers<'_>,
    rot_j: Option<usize>,
    seed: Option<usize>,
    idx: usize,
    bindings: &mut Bindings,
    domain: &[Symbol],
    budget: &mut Budget,
    counters: &mut MatchCounters,
    out: &mut Vec<GroundAtom>,
) -> Result<()> {
    budget.check()?;
    if idx == rule.premises.len() {
        let free = bindings.free_vars_of(&rule.head);
        return emit_head_pure(rule, &free, 0, bindings, domain, counters, out);
    }
    if seed == Some(idx) {
        // Already bound from the task's seed rows.
        return walk_pure(
            rule,
            plan,
            class,
            layers,
            rot_j,
            seed,
            idx + 1,
            bindings,
            domain,
            budget,
            counters,
            out,
        );
    }
    match &rule.premises[idx] {
        Premise::Atom(atom) => {
            let part = part_for(class, rot_j, idx);
            let rows = layers.collect_matches(part, atom, bindings, counters);
            for row in rows {
                for &(v, c) in &row {
                    bindings.set(v, c);
                }
                walk_pure(
                    rule,
                    plan,
                    class,
                    layers,
                    rot_j,
                    seed,
                    idx + 1,
                    bindings,
                    domain,
                    budget,
                    counters,
                    out,
                )?;
                for &(v, _) in &row {
                    bindings.unset(v);
                }
            }
            Ok(())
        }
        Premise::Neg(atom) => {
            let inner = &plan.inner_neg_vars[idx];
            let free = bindings.free_vars_of(atom);
            let outer: Vec<Var> = free.into_iter().filter(|v| !inner.contains(v)).collect();
            neg_outer_pure(
                rule, plan, class, layers, rot_j, seed, idx, atom, &outer, 0, bindings, domain,
                budget, counters, out,
            )
        }
        Premise::Hyp { .. } => unreachable!("pure rules carry no hypothetical premises"),
    }
}

/// Domain enumeration of a negated premise's outer variables; at each
/// full assignment the premise holds iff no inner assignment matches the
/// (closed) model.
#[allow(clippy::too_many_arguments)]
fn neg_outer_pure(
    rule: &HypRule,
    plan: &RulePlan,
    class: &RuleClass,
    layers: ModelLayers<'_>,
    rot_j: Option<usize>,
    seed: Option<usize>,
    idx: usize,
    atom: &Atom,
    outer: &[Var],
    opos: usize,
    bindings: &mut Bindings,
    domain: &[Symbol],
    budget: &mut Budget,
    counters: &mut MatchCounters,
    out: &mut Vec<GroundAtom>,
) -> Result<()> {
    budget.check()?;
    if opos == outer.len() {
        if !layers.exists(Part::Full, atom, bindings, counters) {
            walk_pure(
                rule,
                plan,
                class,
                layers,
                rot_j,
                seed,
                idx + 1,
                bindings,
                domain,
                budget,
                counters,
                out,
            )?;
        }
        return Ok(());
    }
    let v = outer[opos];
    for &c in domain {
        counters.attempts += 1;
        bindings.set(v, c);
        neg_outer_pure(
            rule,
            plan,
            class,
            layers,
            rot_j,
            seed,
            idx,
            atom,
            outer,
            opos + 1,
            bindings,
            domain,
            budget,
            counters,
            out,
        )?;
    }
    bindings.unset(v);
    Ok(())
}

/// Grounds any remaining head variables over the domain and emits the
/// resulting heads.
fn emit_head_pure(
    rule: &HypRule,
    free: &[Var],
    fpos: usize,
    bindings: &mut Bindings,
    domain: &[Symbol],
    counters: &mut MatchCounters,
    out: &mut Vec<GroundAtom>,
) -> Result<()> {
    if fpos == free.len() {
        out.push(rule.head.ground(bindings).expect("head grounded"));
        return Ok(());
    }
    let v = free[fpos];
    for &c in domain {
        counters.attempts += 1;
        bindings.set(v, c);
        emit_head_pure(rule, free, fpos + 1, bindings, domain, counters, out)?;
    }
    bindings.unset(v);
    Ok(())
}

/// Fans `tasks` out over `workers` scoped threads. Each worker claims
/// tasks from a shared cursor, carries its own budget clone (deadline and
/// cancellation token still observed, failpoints probed per task) and
/// match counters, and buffers derived heads per task; buffers are merged
/// into `fresh` in task order at the barrier, so the outcome is
/// deterministic for every pool size. Returns the merged match counters
/// and the first worker error, if any.
#[allow(clippy::too_many_arguments)]
pub fn run_pure_parallel(
    workers: usize,
    rules: &[HypRule],
    plans: &[RulePlan],
    classes: &[RuleClass],
    layers: ModelLayers<'_>,
    domain: &[Symbol],
    site: &'static str,
    budget: &Budget,
    tasks: &[PureTask],
    fresh: &mut Vec<GroundAtom>,
) -> (MatchCounters, Result<()>) {
    let nworkers = workers.min(tasks.len());
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let next = &next;
    let abort = &abort;
    type WorkerOut = (Vec<(usize, Vec<GroundAtom>)>, MatchCounters, Option<Error>);
    let worker_results: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nworkers)
            .map(|_| {
                let mut budget = budget.clone();
                s.spawn(move || {
                    let mut outs: Vec<(usize, Vec<GroundAtom>)> = Vec::new();
                    let mut counters = MatchCounters::default();
                    let mut err = None;
                    while !abort.load(Ordering::Relaxed) {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks.len() {
                            break;
                        }
                        let task = &tasks[t];
                        let mut out = Vec::new();
                        match fire_pure(
                            &rules[task.rule_idx],
                            &plans[task.rule_idx],
                            &classes[task.rule_idx],
                            layers,
                            task,
                            domain,
                            site,
                            &mut budget,
                            &mut counters,
                            &mut out,
                        ) {
                            Ok(()) => outs.push((t, out)),
                            Err(e) => {
                                err = Some(e);
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    (outs, counters, err)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // An injected failpoint panic on a worker resurfaces on
                // the caller, where the service layer's catch_unwind
                // isolation can see it.
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    let mut merged: Vec<(usize, Vec<GroundAtom>)> = Vec::new();
    let mut counters = MatchCounters::default();
    let mut first_err = None;
    for (outs, c, err) in worker_results {
        merged.extend(outs);
        counters.merge(c);
        if first_err.is_none() {
            first_err = err;
        }
    }
    match first_err {
        Some(e) => (counters, Err(e)),
        None => {
            merged.sort_by_key(|(t, _)| *t);
            for (_, out) in merged {
                fresh.extend(out);
            }
            (counters, Ok(()))
        }
    }
}

/// Splits each seeded work item into up to `chunks` contiguous row
/// chunks, so a round dominated by one rule (e.g. transitive closure)
/// still spreads across the pool.
pub fn chunk_tasks(
    seeded: Vec<(usize, Option<usize>, Option<Seed>)>,
    chunks: usize,
) -> Vec<PureTask> {
    let mut tasks = Vec::new();
    for (rule_idx, rot_j, seed) in seeded {
        match seed {
            Some((sidx, rows)) if chunks > 1 && rows.len() > 1 => {
                let per = rows.len().div_ceil(chunks);
                let mut rows = rows;
                while !rows.is_empty() {
                    let rest = rows.split_off(rows.len().min(per));
                    tasks.push(PureTask {
                        rule_idx,
                        rot_j,
                        seed: Some((sidx, std::mem::replace(&mut rows, rest))),
                    });
                }
            }
            seed => tasks.push(PureTask {
                rule_idx,
                rot_j,
                seed,
            }),
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_base::{DbStore, GroundAtom, Term};

    fn fact(p: u32, args: &[u32]) -> GroundAtom {
        GroundAtom::new(Symbol(p), args.iter().map(|&a| Symbol(a)).collect())
    }

    #[test]
    fn parts_read_the_right_layers() {
        let mut dbs = DbStore::new();
        let db = dbs.intern_facts([fact(0, &[1])]);
        let mut older = Database::new();
        older.insert(fact(0, &[2]));
        let mut delta = Database::new();
        delta.insert(fact(0, &[3]));
        let layers = ModelLayers::new(dbs.view(db), &older, &delta);

        let pattern = Atom::new(Symbol(0), vec![Term::Var(Var(0))]);
        let mut b = Bindings::new(1);
        let mut c = MatchCounters::default();
        let collect = |part: Part, b: &mut Bindings, c: &mut MatchCounters| -> Vec<u32> {
            let mut seen = Vec::new();
            layers.for_each_match(part, &pattern, b, c, |bb| {
                seen.push(bb.get(Var(0)).unwrap().0);
                false
            });
            seen
        };
        assert_eq!(collect(Part::Full, &mut b, &mut c), vec![1, 2, 3]);
        assert_eq!(collect(Part::Old, &mut b, &mut c), vec![1, 2]);
        assert_eq!(collect(Part::Delta, &mut b, &mut c), vec![3]);
        assert_eq!(c.attempts, 6, "each layer candidate tested once");

        let bound = Atom::new(Symbol(0), vec![Term::Const(Symbol(3))]);
        assert!(layers.exists(Part::Delta, &bound, &mut b, &mut c));
        assert!(!layers.exists(Part::Old, &bound, &mut b, &mut c));
        assert!(layers
            .collect_matches(Part::Full, &pattern, &mut b, &mut c)
            .len()
            .eq(&3));
    }

    #[test]
    fn collect_free_orders_first_occurrence() {
        let goal = Atom::new(Symbol(0), vec![Term::Var(Var(1)), Term::Var(Var(0))]);
        let adds = [Atom::new(
            Symbol(1),
            vec![Term::Var(Var(2)), Term::Var(Var(1))],
        )];
        let dels = [Atom::new(Symbol(2), vec![Term::Var(Var(3))])];
        let mut b = Bindings::new(4);
        assert_eq!(
            collect_free(&goal, &adds, &dels, &b),
            vec![Var(1), Var(0), Var(2), Var(3)]
        );
        b.set(Var(0), Symbol(9));
        assert_eq!(
            collect_free(&goal, &adds, &dels, &b),
            vec![Var(1), Var(2), Var(3)]
        );
        assert!(empty_layer().is_empty());
    }
}
