//! Evaluation engines for hypothetical Datalog.
//!
//! Four engines implement the same semantics and are cross-checked
//! against each other in the test suite:
//!
//! - [`bottomup::BottomUpEngine`] — the reference engine: perfect models
//!   per database, memoized over the database lattice. Handles any
//!   stratified rulebase.
//! - [`topdown::TopDownEngine`] — goal-directed search with taint-aware
//!   tabling; the practical engine for search-heavy programs (Hamiltonian
//!   path, Turing-machine encodings).
//! - [`demand::MagicEngine`] — a demand rewrite (magic sets extended to
//!   hypothetical premises and stratified negation) in front of a fresh
//!   semi-naive bottom-up run per query; the fast engine for point
//!   queries with bound arguments.
//! - [`prove::ProveEngine`] — the paper's own `PROVE_Σᵢ`/`PROVE_Δᵢ`
//!   procedures (§5.2), instrumented for the Theorem 3 goal-sequence
//!   bound. Requires a linearly stratified rulebase.

pub mod bottomup;
pub mod budget;
pub mod context;
pub mod demand;
pub mod matching;
pub mod proof;
pub mod prove;
pub mod reference;
pub mod stats;
pub mod topdown;

pub use bottomup::BottomUpEngine;
pub use budget::{Budget, CancelToken, MemoryLimits};
pub use context::Context;
pub use demand::MagicEngine;
pub use proof::{render as render_proof, ProofChild, ProofNode};
pub use prove::ProveEngine;
pub use reference::NaiveEngine;
pub use stats::{EngineStats, Limits};
pub use topdown::TopDownEngine;
