//! Shared engine context: stratification, domain, database lattice, and
//! per-rule evaluation plans.

use crate::analysis::stratify::{global_negation_strata, NegationStrata};
use crate::ast::{Premise, Rulebase};
use hdl_base::{Atom, Database, DbId, DbStore, FactId, FxHashMap, GroundAtom, Result, Symbol, Var};
use std::sync::Arc;

/// Precomputed evaluation data for one rule.
#[derive(Debug, Clone)]
pub struct RulePlan {
    /// For each premise: the variables that are *inner-existential* when
    /// the premise is negated — variables whose only occurrence in the
    /// whole rule is inside this one negated premise. `~select(Y)` with
    /// `Y` appearing nowhere else reads as "no `Y` is selectable"
    /// (¬∃Y select(Y)), which is how the paper's Examples 6–7 use it.
    /// Variables shared with other premises or the head are grounded by
    /// the outer substitution of Definition 3 instead.
    pub inner_neg_vars: Vec<Vec<Var>>,
}

/// Evaluation context for one `(rulebase, database)` pair.
///
/// The context owns the [`DbStore`] — the lattice of databases reached by
/// hypothetical insertions — and the global negation-stratification. Both
/// engines (top-down and bottom-up) borrow their behaviour from here so
/// their answers are comparable structure-for-structure.
pub struct Context<'rb> {
    /// The rulebase under evaluation.
    pub rb: &'rb Rulebase,
    /// Global stratification (positive/hypothetical within, negation
    /// strictly below).
    pub strata: NegationStrata,
    /// `dom(R, DB)`: all constants in the rulebase and the base database,
    /// fixed for the lifetime of the context (Definition 3).
    pub domain: Vec<Symbol>,
    /// Membership view of [`Context::domain`].
    pub domain_set: hdl_base::FxHashSet<Symbol>,
    /// The database lattice.
    pub dbs: DbStore,
    /// The interned base database all queries start from.
    pub base_db: DbId,
    /// Rule indices grouped by head predicate. Shared immutably so the
    /// engines can hold a group across recursion without copying it.
    pub defs: FxHashMap<Symbol, Arc<[usize]>>,
    /// Per-rule plans, parallel to `rb.rules`.
    pub plans: Vec<RulePlan>,
}

impl<'rb> Context<'rb> {
    /// Builds a context; fails if the rulebase is not stratified.
    pub fn new(rb: &'rb Rulebase, db: &Database) -> Result<Self> {
        Self::new_with_constants(rb, db, &[])
    }

    /// Like [`Context::new`], but with `extra` constants joined into
    /// `dom(R, DB)`. Incremental maintenance evaluates *reduced*
    /// rulebases whose groundings must still range over the full
    /// program's domain; this is how the dropped rules' constants get
    /// back in.
    pub fn new_with_constants(rb: &'rb Rulebase, db: &Database, extra: &[Symbol]) -> Result<Self> {
        let strata = global_negation_strata(rb)?;
        let mut domain: Vec<Symbol> = db.constants().into_iter().collect();
        domain.extend(rb.constants());
        domain.extend_from_slice(extra);
        domain.sort_unstable();
        domain.dedup();

        let mut dbs = DbStore::new();
        let base_db = dbs.intern_database(db);

        let mut grouped: FxHashMap<Symbol, Vec<usize>> = FxHashMap::default();
        for (i, rule) in rb.iter().enumerate() {
            grouped.entry(rule.head.pred).or_default().push(i);
        }
        let defs = grouped
            .into_iter()
            .map(|(p, ids)| (p, Arc::from(ids)))
            .collect();

        let plans = rb.iter().map(plan_rule).collect();
        let domain_set = domain.iter().copied().collect();

        Ok(Context {
            rb,
            strata,
            domain,
            domain_set,
            dbs,
            base_db,
            defs,
            plans,
        })
    }

    /// Whether `p` has any defining rules (otherwise it is pure EDB).
    pub fn has_rules(&self, p: Symbol) -> bool {
        self.defs.contains_key(&p)
    }

    /// Joins `extra` constants into `dom(R, DB)`, returning whether the
    /// domain actually grew.
    ///
    /// Definition 3 evaluates `A[add: B̄, del: C̄]` in `(DB ∖ C̄) ∪ B̄`,
    /// whose domain includes every constant of `B̄` — even ones the base
    /// world and the rulebase never mention. Query-level `add:` premises
    /// can therefore introduce fresh constants that rule groundings must
    /// range over (`?- tc(a, c)[add: edge(b, c)].` needs `c` in the
    /// domain to instantiate the recursive rule). Engines call this from
    /// their query entry points; when it returns `true`, any memoized
    /// verdicts or models were computed under the smaller domain and
    /// must be dropped.
    pub fn extend_domain(&mut self, extra: impl IntoIterator<Item = Symbol>) -> bool {
        let mut grew = false;
        for c in extra {
            if self.domain_set.insert(c) {
                self.domain.push(c);
                grew = true;
            }
        }
        if grew {
            // Keep the enumeration order deterministic (domain order is
            // observable through `answers` and proof witnesses).
            self.domain.sort_unstable();
        }
        grew
    }

    /// Whether constant `c` belongs to `dom(R, DB)`. Goal atoms supplied
    /// by queries may mention foreign constants; Definition 3's ground
    /// substitutions must not bind rule variables to them.
    pub fn in_domain(&self, c: Symbol) -> bool {
        self.domain_set.contains(&c)
    }

    /// Interns a ground atom into the fact store.
    pub fn fact_id(&mut self, fact: GroundAtom) -> FactId {
        self.dbs.intern_fact(fact)
    }

    /// Whether fact `f` is in database `db` (one overlay probe plus one
    /// binary search in the shared flat root).
    pub fn db_contains(&self, db: DbId, f: FactId) -> bool {
        self.dbs.contains(db, f)
    }

    /// The fact memory this context holds: distinct interned ground
    /// atoms plus the fact-id slots physically stored across overlay
    /// nodes. Hypothetical branching grows the second term even when the
    /// distinct-atom count stays flat (QBF-style searches re-add the
    /// same few atoms into exponentially many databases), so this is the
    /// quantity `max_facts` budgets measure.
    pub fn fact_footprint(&self) -> u64 {
        self.dbs.facts().len() as u64 + self.dbs.overlay_stats().delta_facts
    }
}

fn plan_rule(rule: &crate::ast::HypRule) -> RulePlan {
    let mut inner_neg_vars = Vec::with_capacity(rule.premises.len());
    for (i, premise) in rule.premises.iter().enumerate() {
        let inner = match premise {
            Premise::Neg(atom) => {
                let mut vars: Vec<Var> = Vec::new();
                for v in atom.vars() {
                    if vars.contains(&v) {
                        continue;
                    }
                    let in_head = rule.head.vars().any(|h| h == v);
                    let elsewhere = rule
                        .premises
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .any(|(_, p)| p.vars().any(|o| o == v));
                    if !in_head && !elsewhere {
                        vars.push(v);
                    }
                }
                vars
            }
            _ => Vec::new(),
        };
        inner_neg_vars.push(inner);
    }
    RulePlan { inner_neg_vars }
}

/// Enumerates assignments of `vars` over `domain` into `bindings`, calling
/// `f` for each complete assignment until `f` returns `true` (early stop).
/// Restores `bindings` before returning. Returns whether `f` stopped it.
pub fn enumerate_until(
    domain: &[Symbol],
    vars: &[Var],
    bindings: &mut hdl_base::Bindings,
    f: &mut impl FnMut(&mut hdl_base::Bindings) -> bool,
) -> bool {
    if vars.is_empty() {
        return f(bindings);
    }
    let (first, rest) = (vars[0], &vars[1..]);
    for &c in domain {
        bindings.set(first, c);
        if enumerate_until(domain, rest, bindings, f) {
            bindings.unset(first);
            return true;
        }
    }
    bindings.unset(first);
    false
}

/// The unbound variables of `atom` under `bindings`, deduplicated.
pub fn free_vars(atom: &Atom, bindings: &hdl_base::Bindings) -> Vec<Var> {
    bindings.free_vars_of(atom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use hdl_base::{Bindings, SymbolTable};

    #[test]
    fn inner_negation_vars_follow_the_paper_examples() {
        let mut syms = SymbolTable::new();
        let rb = parse_program(
            // Example 7's third/fourth rules.
            "path(X) :- ~select(Y).
             select(Y) :- node(Y), ~pnode(Y).",
            &mut syms,
        )
        .unwrap();
        let db = Database::new();
        let ctx = Context::new(&rb, &db).unwrap();
        // Rule 0: Y occurs only in ~select(Y) → inner.
        assert_eq!(ctx.plans[0].inner_neg_vars[0].len(), 1);
        // Rule 1: ~pnode(Y)'s Y also occurs in node(Y) and the head → outer.
        assert!(ctx.plans[1].inner_neg_vars[1].is_empty());
    }

    #[test]
    fn domain_merges_rule_and_db_constants() {
        let mut syms = SymbolTable::new();
        let rb = parse_program("p(X) :- q(X, someconst).", &mut syms).unwrap();
        let mut db = Database::new();
        let c = syms.intern("dbconst");
        let q = syms.lookup("q").unwrap();
        db.insert(GroundAtom::new(q, vec![c, c]));
        let ctx = Context::new(&rb, &db).unwrap();
        assert_eq!(ctx.domain.len(), 2);
        assert!(ctx.domain.contains(&c));
        assert!(ctx.domain.contains(&syms.lookup("someconst").unwrap()));
    }

    #[test]
    fn enumerate_until_early_stops_and_restores() {
        let domain: Vec<Symbol> = (0..4).map(Symbol).collect();
        let mut b = Bindings::new(2);
        let vars = [Var(0), Var(1)];
        let mut count = 0;
        let stopped = enumerate_until(&domain, &vars, &mut b, &mut |bb| {
            count += 1;
            bb.get(Var(0)) == Some(Symbol(1)) && bb.get(Var(1)) == Some(Symbol(2))
        });
        assert!(stopped);
        assert_eq!(count, 4 + 3); // rows 0* (4) then 1,0 1,1 1,2
        assert_eq!(b.get(Var(0)), None);
        assert_eq!(b.get(Var(1)), None);
    }

    #[test]
    fn enumerate_until_exhausts_without_match() {
        let domain: Vec<Symbol> = (0..3).map(Symbol).collect();
        let mut b = Bindings::new(1);
        let mut count = 0;
        let stopped = enumerate_until(&domain, &[Var(0)], &mut b, &mut |_| {
            count += 1;
            false
        });
        assert!(!stopped);
        assert_eq!(count, 3);
    }
}
