//! Demand-driven evaluation: magic sets for hypothetical rules and
//! stratified negation (DESIGN.md §3.16).
//!
//! [`MagicEngine`] rewrites each query into a demand-restricted program
//! and hands that program to a fresh semi-naive [`BottomUpEngine`], so a
//! point query costs O(relevant facts) instead of O(perfect model). The
//! rewrite is the classic magic-sets transformation (Bancilhon &
//! Ramakrishnan) ported onto the hypothetical AST with three extensions:
//!
//! - **Left-to-right SIPS over positive premises only.** A variable
//!   counts as bound at premise `j` iff it is a bound head argument or
//!   occurs in a *positive* premise before `j`. Negated and hypothetical
//!   premises contribute nothing, so every magic rule — whose body is the
//!   positive prefix — stays range-restricted, and "fully bound" is a
//!   sound under-approximation of runtime boundness.
//! - **Extended magic for negation** (Tekle & Liu): a negated IDB
//!   subgoal is demanded only with the all-bound adornment; when some
//!   argument cannot be bound, its predicate is evaluated *unrestricted*
//!   (original rules, no demand filter), never dropped. After the
//!   rewrite the program is re-checked for stratification — magic rules
//!   can manufacture negative cycles absent from the source program — and
//!   on failure the rewrite retries pessimistically with every negated
//!   predicate and every `del:`-carrying hypothetical goal unrestricted,
//!   which provably restores stratification (all negative edges then
//!   point into the self-contained original-rule subprogram).
//! - **Overlay-scoped demand for hypothetical premises.** A premise
//!   `g(t̄)[add: Ā, del: C̄]` becomes `g^a(t̄)[add: Ā ∪ {m_g^a(bound t̄)},
//!   del: C̄]`: the magic seed rides the `add:` list, so it lives in the
//!   child overlay's delta and demand from one hypothetical branch never
//!   leaks into a sibling. No parent-level magic rule is emitted — the
//!   guard predicate is EDB in the rewritten program, populated only
//!   through overlays (and, for the top-level query, the one seed fact).
//!
//! Demanded original predicates keep a *copy rule*
//! `p^a(x̄) ← m_p^a(x̄ᵇ), p(x̄)` so EDB facts — including facts injected by
//! `add:` overlays — remain visible under their adorned name. Any
//! rewrite failure (including the `magic::rewrite` failpoint) degrades
//! the whole query to plain semi-naive evaluation: slower, never wrong.

use crate::analysis::stratify::global_negation_strata;
use crate::ast::{HypRule, Premise, Rulebase};
use crate::engine::bottomup::BottomUpEngine;
use crate::engine::budget::Budget;
use crate::engine::context::Context;
use crate::engine::stats::{EngineStats, Limits};
use hdl_base::{
    Atom, Database, Error, FxHashMap, FxHashSet, GroundAtom, Result, Symbol, Term, Var,
};

/// One boolean per argument position: `true` = bound.
type Adornment = Vec<bool>;

/// Allocator for invented predicate symbols (adorned and magic names),
/// starting above every symbol the rulebase, database, and query use.
struct SymGen {
    next: u32,
}

impl SymGen {
    fn fresh(&mut self) -> Symbol {
        let s = Symbol(self.next);
        self.next += 1;
        s
    }
}

fn name_for(
    map: &mut FxHashMap<(Symbol, Adornment), Symbol>,
    key: (Symbol, Adornment),
    gen: &mut SymGen,
) -> Symbol {
    *map.entry(key).or_insert_with(|| gen.fresh())
}

/// The adornment of `atom` under the current bound-variable set: a
/// position is bound iff it holds a constant or a positively-bound var.
fn adornment_of(atom: &Atom, bound: &FxHashSet<Var>) -> Adornment {
    atom.args
        .iter()
        .map(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        })
        .collect()
}

/// The terms of `atom` at the bound positions of `ad`, in order.
fn bound_args(atom: &Atom, ad: &Adornment) -> Vec<Term> {
    atom.args
        .iter()
        .zip(ad)
        .filter(|(_, b)| **b)
        .map(|(t, _)| *t)
        .collect()
}

/// One attempted rewrite pass (the driver may run several: the
/// unrestricted set grows to a fixpoint, and an unstratifiable result
/// triggers a pessimistic retry).
struct Attempt {
    rules: Vec<HypRule>,
    /// Adorned name of the synthetic query predicate.
    answer_pred: Symbol,
    /// Magic name of the synthetic query predicate (the seed's pred).
    seed_pred: Symbol,
    /// All invented magic predicates.
    magic_preds: FxHashSet<Symbol>,
    magic_rules: u64,
    /// Predicates this pass discovered it cannot bound soundly; when
    /// non-empty the pass result is discarded and the driver retries
    /// with these unrestricted.
    new_unrestricted: FxHashSet<Symbol>,
}

/// A query rewritten for demand-driven evaluation.
pub(crate) struct RewriteOutput {
    pub rb: Rulebase,
    /// The zero-ary demand seed for the query, to be inserted into the
    /// base database before evaluation.
    pub seed: GroundAtom,
    /// Adorned predicate whose facts answer the query.
    pub answer_pred: Symbol,
    pub magic_preds: FxHashSet<Symbol>,
    pub magic_rules: u64,
    pub adorned_strata: u64,
    /// Predicates left unrestricted (counted once per predicate).
    pub unbound: u64,
}

#[allow(clippy::too_many_arguments)]
fn attempt_rewrite(
    rules: &[HypRule],
    defs: &FxHashMap<Symbol, Vec<usize>>,
    q_sym: Symbol,
    q_arity: usize,
    u: &FxHashSet<Symbol>,
    pessimistic: bool,
    gen: &mut SymGen,
) -> Attempt {
    let mut adorned: FxHashMap<(Symbol, Adornment), Symbol> = FxHashMap::default();
    let mut magic: FxHashMap<(Symbol, Adornment), Symbol> = FxHashMap::default();
    let mut out: Vec<HypRule> = Vec::new();
    let mut magic_rules = 0u64;
    let mut new_u: FxHashSet<Symbol> = FxHashSet::default();
    // IDB predicates referenced by original name in a rewritten body —
    // their original rule cones must ride along unrewritten.
    let mut need_original: FxHashSet<Symbol> = FxHashSet::default();
    let mut worklist: Vec<(Symbol, Adornment)> = vec![(q_sym, vec![false; q_arity])];
    let mut done: FxHashSet<(Symbol, Adornment)> = FxHashSet::default();

    while let Some((p, ad)) = worklist.pop() {
        if !done.insert((p, ad.clone())) {
            continue;
        }
        let p_adorned = name_for(&mut adorned, (p, ad.clone()), gen);
        let p_magic = name_for(&mut magic, (p, ad.clone()), gen);

        // Copy rule: EDB (and overlay-added) facts of an original
        // predicate stay visible under the adorned name wherever there
        // is demand. The synthetic query predicate has no EDB facts.
        if p != q_sym {
            let all: Vec<Term> = (0..ad.len()).map(|i| Term::Var(Var(i as u32))).collect();
            let bound: Vec<Term> = all
                .iter()
                .zip(&ad)
                .filter(|(_, b)| **b)
                .map(|(t, _)| *t)
                .collect();
            out.push(HypRule::new(
                Atom::new(p_adorned, all.clone()),
                vec![
                    Premise::Atom(Atom::new(p_magic, bound)),
                    Premise::Atom(Atom::new(p, all)),
                ],
            ));
        }

        for &ri in &defs[&p] {
            let rule = &rules[ri];
            let guard = Atom::new(p_magic, bound_args(&rule.head, &ad));
            let mut bound_vars: FxHashSet<Var> = rule
                .head
                .args
                .iter()
                .zip(&ad)
                .filter(|(_, b)| **b)
                .filter_map(|(t, _)| t.as_var())
                .collect();
            let mut body: Vec<Premise> = vec![Premise::Atom(guard.clone())];
            // Positive prefix so far (rewritten form) — magic-rule bodies.
            let mut prefix: Vec<Atom> = vec![guard];
            for prem in &rule.premises {
                match prem {
                    Premise::Atom(a) => {
                        if defs.contains_key(&a.pred) && !u.contains(&a.pred) {
                            let sub = adornment_of(a, &bound_vars);
                            let sub_magic = name_for(&mut magic, (a.pred, sub.clone()), gen);
                            out.push(HypRule::new(
                                Atom::new(sub_magic, bound_args(a, &sub)),
                                prefix.iter().cloned().map(Premise::Atom).collect(),
                            ));
                            magic_rules += 1;
                            let sub_sym = name_for(&mut adorned, (a.pred, sub.clone()), gen);
                            worklist.push((a.pred, sub));
                            let rewritten = Atom::new(sub_sym, a.args.clone());
                            prefix.push(rewritten.clone());
                            body.push(Premise::Atom(rewritten));
                        } else {
                            if defs.contains_key(&a.pred) {
                                need_original.insert(a.pred);
                            }
                            prefix.push(a.clone());
                            body.push(prem.clone());
                        }
                        bound_vars.extend(a.vars());
                    }
                    Premise::Neg(a) => {
                        let fully_bound = a.args.iter().all(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound_vars.contains(v),
                        });
                        if defs.contains_key(&a.pred)
                            && !u.contains(&a.pred)
                            && fully_bound
                            && !pessimistic
                        {
                            let sub = vec![true; a.arity()];
                            let sub_magic = name_for(&mut magic, (a.pred, sub.clone()), gen);
                            out.push(HypRule::new(
                                Atom::new(sub_magic, a.args.clone()),
                                prefix.iter().cloned().map(Premise::Atom).collect(),
                            ));
                            magic_rules += 1;
                            let sub_sym = name_for(&mut adorned, (a.pred, sub.clone()), gen);
                            worklist.push((a.pred, sub));
                            body.push(Premise::Neg(Atom::new(sub_sym, a.args.clone())));
                        } else {
                            if defs.contains_key(&a.pred) {
                                if !u.contains(&a.pred) {
                                    new_u.insert(a.pred);
                                }
                                need_original.insert(a.pred);
                            }
                            body.push(prem.clone());
                        }
                        // Negation binds nothing.
                    }
                    Premise::Hyp { goal, adds, dels } => {
                        let demandable = defs.contains_key(&goal.pred)
                            && !u.contains(&goal.pred)
                            && (!pessimistic || dels.is_empty());
                        if demandable {
                            let sub = adornment_of(goal, &bound_vars);
                            let sub_magic = name_for(&mut magic, (goal.pred, sub.clone()), gen);
                            let seed = Atom::new(sub_magic, bound_args(goal, &sub));
                            let sub_sym = name_for(&mut adorned, (goal.pred, sub.clone()), gen);
                            worklist.push((goal.pred, sub));
                            let mut adds2 = adds.clone();
                            adds2.push(seed);
                            body.push(Premise::Hyp {
                                goal: Atom::new(sub_sym, goal.args.clone()),
                                adds: adds2,
                                dels: dels.clone(),
                            });
                        } else {
                            if defs.contains_key(&goal.pred) {
                                if !u.contains(&goal.pred) && pessimistic && !dels.is_empty() {
                                    new_u.insert(goal.pred);
                                }
                                need_original.insert(goal.pred);
                            }
                            body.push(prem.clone());
                        }
                        // Hypothetical premises bind nothing: their vars
                        // must not leak into magic-rule heads, whose
                        // bodies are the positive prefix only.
                    }
                }
            }
            out.push(HypRule::new(
                Atom::new(p_adorned, rule.head.args.clone()),
                body,
            ));
        }
    }

    // Pull in the original rule cones of every predicate still read by
    // its original name (unrestricted evaluation — slower, never wrong).
    let mut keep: FxHashSet<Symbol> = FxHashSet::default();
    let mut stack: Vec<Symbol> = need_original.into_iter().collect();
    while let Some(p) = stack.pop() {
        if !keep.insert(p) {
            continue;
        }
        for &ri in defs.get(&p).into_iter().flatten() {
            for prem in &rules[ri].premises {
                let dep = match prem {
                    Premise::Atom(a) | Premise::Neg(a) => a.pred,
                    Premise::Hyp { goal, .. } => goal.pred,
                };
                if defs.contains_key(&dep) && !keep.contains(&dep) {
                    stack.push(dep);
                }
            }
        }
    }
    for rule in rules {
        if keep.contains(&rule.head.pred) {
            out.push(rule.clone());
        }
    }

    Attempt {
        rules: out,
        answer_pred: adorned[&(q_sym, vec![false; q_arity])],
        seed_pred: magic[&(q_sym, vec![false; q_arity])],
        magic_preds: magic.values().copied().collect(),
        magic_rules,
        new_unrestricted: new_u,
    }
}

/// Rewrites `body` (as the body of a synthetic query rule with head
/// arguments `head_args`) into a demand-restricted program. Invented
/// symbols start at `first_fresh`. Fails only at the `magic::rewrite`
/// failpoint or if even the pessimistic pass is unstratifiable; the
/// caller degrades to plain semi-naive evaluation on any error.
fn rewrite(
    rb: &Rulebase,
    head_args: &[Term],
    body: Vec<Premise>,
    first_fresh: u32,
) -> Result<RewriteOutput> {
    hdl_base::failpoint!("magic::rewrite");
    let mut gen = SymGen { next: first_fresh };
    let q_sym = gen.fresh();
    let mut rules: Vec<HypRule> = rb.iter().cloned().collect();
    rules.push(HypRule::new(Atom::new(q_sym, head_args.to_vec()), body));
    let mut defs: FxHashMap<Symbol, Vec<usize>> = FxHashMap::default();
    for (i, r) in rules.iter().enumerate() {
        defs.entry(r.head.pred).or_default().push(i);
    }

    let mut u: FxHashSet<Symbol> = FxHashSet::default();
    let mut pessimistic = false;
    loop {
        let attempt = attempt_rewrite(
            &rules,
            &defs,
            q_sym,
            head_args.len(),
            &u,
            pessimistic,
            &mut gen,
        );
        if !attempt.new_unrestricted.is_empty() {
            u.extend(attempt.new_unrestricted);
            continue;
        }
        let rb2: Rulebase = attempt.rules.iter().cloned().collect();
        match global_negation_strata(&rb2) {
            Ok(strata) => {
                return Ok(RewriteOutput {
                    rb: rb2,
                    seed: GroundAtom::new(attempt.seed_pred, Vec::new()),
                    answer_pred: attempt.answer_pred,
                    magic_preds: attempt.magic_preds,
                    magic_rules: attempt.magic_rules,
                    adorned_strata: strata.num_strata as u64,
                    unbound: u.len() as u64,
                });
            }
            // Magic rules introduced a negative cycle the source program
            // did not have. Retry pessimistically: every negated IDB
            // predicate and every del-carrying hypothetical goal keeps
            // its original, unrewritten evaluation.
            Err(_) if !pessimistic => {
                pessimistic = true;
                u.clear();
            }
            Err(e) => return Err(e),
        }
    }
}

/// The demand-driven (magic-sets) engine: same answers as
/// [`BottomUpEngine`] and [`crate::engine::reference::NaiveEngine`],
/// goal-directed work profile. Each query is rewritten and evaluated by
/// a fresh inner semi-naive engine; the outer [`Context`] persists only
/// the grounding domain (which grows when queries introduce fresh
/// constants, exactly like the other engines' Definition-3 handling).
pub struct MagicEngine<'rb> {
    rb: &'rb Rulebase,
    ctx: Context<'rb>,
    limits: Limits,
    budget: Budget,
    workers: usize,
    /// One past the largest symbol id in the rulebase/database — the
    /// floor for invented predicate names.
    sym_base: u32,
    stats: EngineStats,
}

impl<'rb> MagicEngine<'rb> {
    /// Builds an engine; fails if `rb` is not stratified.
    pub fn new(rb: &'rb Rulebase, db: &Database) -> Result<Self> {
        Self::new_with_constants(rb, db, &[])
    }

    /// Like [`MagicEngine::new`], with `extra` constants joined into the
    /// grounding domain.
    pub fn new_with_constants(rb: &'rb Rulebase, db: &Database, extra: &[Symbol]) -> Result<Self> {
        let ctx = Context::new_with_constants(rb, db, extra)?;
        let mut max = 0u32;
        let mut see = |s: Symbol| {
            if s.0 + 1 > max {
                max = s.0 + 1;
            }
        };
        for rule in rb.iter() {
            see(rule.head.pred);
            for prem in &rule.premises {
                for a in prem.atoms() {
                    see(a.pred);
                }
            }
        }
        for p in db.predicates() {
            see(p);
        }
        for &c in &ctx.domain {
            see(c);
        }
        Ok(MagicEngine {
            rb,
            ctx,
            limits: Limits::default(),
            budget: Budget::default(),
            workers: 1,
            sym_base: max,
            stats: EngineStats::default(),
        })
    }

    /// Replaces the resource limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets worker threads for the inner engine's pure-rule firings.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Builder form of [`MagicEngine::set_parallelism`].
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.set_parallelism(workers);
        self
    }

    /// Replaces the evaluation budget (cloned into each inner run).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Work counters, accumulated across queries.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The evaluation context (base database, domain, overlay store).
    pub fn context(&self) -> &Context<'rb> {
        &self.ctx
    }

    /// True if any constant of `atom` is outside `dom(R, DB)` — no fact
    /// can match it, so positive goals fail and negated goals hold
    /// without touching the engine.
    fn atom_foreign(&self, atom: &Atom) -> bool {
        atom.args
            .iter()
            .any(|t| t.as_const().is_some_and(|c| !self.ctx.in_domain(c)))
    }

    /// First symbol id safely above the rulebase, database, accumulated
    /// domain, and this query.
    fn first_fresh<'a>(&self, query_atoms: impl Iterator<Item = &'a Atom>) -> u32 {
        let mut max = self.sym_base;
        for a in query_atoms {
            max = max.max(a.pred.0 + 1);
            for t in &a.args {
                if let Some(c) = t.as_const() {
                    max = max.max(c.0 + 1);
                }
            }
        }
        for &c in &self.ctx.domain {
            max = max.max(c.0 + 1);
        }
        max
    }

    /// Folds an inner run plus the rewrite's own counters into stats.
    fn finish(&mut self, out: &RewriteOutput, inner: &BottomUpEngine<'_>) {
        self.stats.demand_facts += 1 + inner.derived_fact_count(|p| out.magic_preds.contains(&p));
        self.stats.merge_run(inner.stats());
        self.stats.magic_rules += out.magic_rules;
        self.stats.adorned_strata = out.adorned_strata;
        self.stats.unbound_fallbacks += out.unbound;
    }

    /// Evaluates a query premise against the base database (same free-
    /// variable conventions as the other engines).
    pub fn holds(&mut self, query: &Premise) -> Result<bool> {
        let query = match query {
            Premise::Atom(a) => {
                if self.atom_foreign(a) {
                    return Ok(false);
                }
                query.clone()
            }
            Premise::Neg(a) => {
                if self.atom_foreign(a) {
                    return Ok(true);
                }
                query.clone()
            }
            Premise::Hyp { goal, adds, dels } => {
                // Definition 3: fresh constants introduced by `add:`
                // join the grounding domain for this and later queries.
                self.ctx.extend_domain(
                    adds.iter()
                        .flat_map(|a| a.args.iter().filter_map(|t| t.as_const())),
                );
                if self.atom_foreign(goal) {
                    return Ok(false);
                }
                // A `del:` atom naming a foreign constant can match no
                // fact — drop it rather than let its constant leak into
                // the rewritten program's domain (it would change how
                // negation grounds).
                let dels: Vec<Atom> = dels
                    .iter()
                    .filter(|d| !self.atom_foreign(d))
                    .cloned()
                    .collect();
                Premise::Hyp {
                    goal: goal.clone(),
                    adds: adds.clone(),
                    dels,
                }
            }
        };
        let base = self.ctx.dbs.to_database(self.ctx.base_db);
        let fresh0 = self.first_fresh(query.atoms());
        match rewrite(self.rb, &[], vec![query.clone()], fresh0) {
            Ok(out) => {
                let mut db2 = base;
                db2.insert(out.seed.clone());
                match BottomUpEngine::new_with_constants(&out.rb, &db2, &self.ctx.domain) {
                    Ok(eng) => {
                        let mut inner = eng.with_limits(self.limits).with_parallelism(self.workers);
                        inner.set_budget(self.budget.clone());
                        let answer = Atom::new(out.answer_pred, Vec::new());
                        let r = inner.holds(&Premise::Atom(answer));
                        self.finish(&out, &inner);
                        r
                    }
                    Err(_) => self.fallback_holds(&query),
                }
            }
            Err(_) => self.fallback_holds(&query),
        }
    }

    /// All derivable instances of `pattern`, sorted and deduplicated —
    /// same row conventions as [`BottomUpEngine::answers_partial`].
    pub fn answers_partial(&mut self, pattern: &Atom) -> (Vec<Vec<Symbol>>, Option<Error>) {
        if self.atom_foreign(pattern) {
            return (Vec::new(), None);
        }
        let base = self.ctx.dbs.to_database(self.ctx.base_db);
        let fresh0 = self.first_fresh(std::iter::once(pattern));
        match rewrite(
            self.rb,
            &pattern.args,
            vec![Premise::Atom(pattern.clone())],
            fresh0,
        ) {
            Ok(out) => {
                let mut db2 = base;
                db2.insert(out.seed.clone());
                match BottomUpEngine::new_with_constants(&out.rb, &db2, &self.ctx.domain) {
                    Ok(eng) => {
                        let mut inner = eng.with_limits(self.limits).with_parallelism(self.workers);
                        inner.set_budget(self.budget.clone());
                        let answer = Atom::new(out.answer_pred, pattern.args.clone());
                        let r = inner.answers_partial(&answer);
                        self.finish(&out, &inner);
                        r
                    }
                    Err(e) => {
                        let _ = e;
                        self.fallback_answers(pattern)
                    }
                }
            }
            Err(_) => self.fallback_answers(pattern),
        }
    }

    /// All derivable instances of `pattern`, or the first error.
    pub fn answers(&mut self, pattern: &Atom) -> Result<Vec<Vec<Symbol>>> {
        match self.answers_partial(pattern) {
            (rows, None) => Ok(rows),
            (_, Some(e)) => Err(e),
        }
    }

    /// Whole-query degradation to plain semi-naive evaluation; counted
    /// as one fallback per rulebase predicate.
    fn fallback_holds(&mut self, query: &Premise) -> Result<bool> {
        let base = self.ctx.dbs.to_database(self.ctx.base_db);
        let mut eng = BottomUpEngine::new_with_constants(self.rb, &base, &self.ctx.domain)?
            .with_limits(self.limits)
            .with_parallelism(self.workers);
        eng.set_budget(self.budget.clone());
        let r = eng.holds(query);
        self.stats.merge_run(eng.stats());
        self.stats.unbound_fallbacks += self.ctx.defs.len() as u64;
        r
    }

    /// Whole-query degradation for answer enumeration.
    fn fallback_answers(&mut self, pattern: &Atom) -> (Vec<Vec<Symbol>>, Option<Error>) {
        let base = self.ctx.dbs.to_database(self.ctx.base_db);
        let eng = match BottomUpEngine::new_with_constants(self.rb, &base, &self.ctx.domain) {
            Ok(eng) => eng,
            Err(e) => return (Vec::new(), Some(e)),
        };
        let mut eng = eng.with_limits(self.limits).with_parallelism(self.workers);
        eng.set_budget(self.budget.clone());
        let r = eng.answers_partial(pattern);
        self.stats.merge_run(eng.stats());
        self.stats.unbound_fallbacks += self.ctx.defs.len() as u64;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query, split_facts};
    use hdl_base::SymbolTable;

    fn setup(src: &str) -> (Rulebase, Database, SymbolTable) {
        let mut syms = SymbolTable::new();
        let program = parse_program(src, &mut syms).unwrap();
        let (rb, facts) = split_facts(program);
        let db: Database = facts.into_iter().collect();
        (rb, db, syms)
    }

    /// `holds` agrees with the bottom-up engine on every listed query.
    fn check_holds(src: &str, queries: &[&str]) {
        let (rb, db, mut syms) = setup(src);
        let mut magic = MagicEngine::new(&rb, &db).unwrap();
        let mut bu = BottomUpEngine::new(&rb, &db).unwrap();
        for q in queries {
            let query = parse_query(&format!("?- {q}."), &mut syms).unwrap();
            let want = bu.holds(&query).unwrap();
            let got = magic.holds(&query).unwrap();
            assert_eq!(got, want, "query {q}");
        }
    }

    const TC: &str = "
        edge(a, b). edge(b, c). edge(c, d). edge(e, f).
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- tc(X, Y), edge(Y, Z).
    ";

    #[test]
    fn point_queries_match_bottom_up() {
        check_holds(
            TC,
            &[
                "tc(a, d)",
                "tc(a, a)",
                "tc(d, a)",
                "tc(e, f)",
                "tc(a, X)",
                "tc(X, Y)",
                "edge(a, b)",
            ],
        );
    }

    #[test]
    fn point_query_derives_fewer_facts_than_full_model() {
        // A 40-node chain: the full model holds O(n²) tc pairs, demand
        // from the query's source only O(n).
        let mut src = String::new();
        for i in 0..39 {
            src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
        }
        src.push_str("tc(X, Y) :- edge(X, Y).\n");
        src.push_str("tc(X, Z) :- tc(X, Y), edge(Y, Z).\n");
        let (rb, db, mut syms) = setup(&src);
        let mut magic = MagicEngine::new(&rb, &db).unwrap();
        let q = parse_query("?- tc(n0, n39).", &mut syms).unwrap();
        assert!(magic.holds(&q).unwrap());
        let s = magic.stats();
        assert!(s.magic_rules > 0, "rewrite emitted no magic rules");
        assert!(s.demand_facts > 0, "no demand facts recorded");
        assert_eq!(s.unbound_fallbacks, 0, "tc should be fully boundable");
        let mut bu = BottomUpEngine::new(&rb, &db).unwrap();
        assert!(bu.holds(&q).unwrap());
        assert!(
            magic.stats().goal_expansions * 2 < bu.stats().goal_expansions,
            "magic ({}) should attempt far fewer matches than semi-naive ({})",
            magic.stats().goal_expansions,
            bu.stats().goal_expansions
        );
    }

    #[test]
    fn answers_match_bottom_up() {
        let (rb, db, mut syms) = setup(TC);
        let mut magic = MagicEngine::new(&rb, &db).unwrap();
        let mut bu = BottomUpEngine::new(&rb, &db).unwrap();
        for q in ["tc(a, X)", "tc(X, Y)", "tc(X, d)"] {
            let query = parse_query(&format!("?- {q}."), &mut syms).unwrap();
            let Premise::Atom(pat) = &query else { panic!() };
            assert_eq!(
                magic.answers(pat).unwrap(),
                bu.answers(pat).unwrap(),
                "query {q}"
            );
        }
    }

    #[test]
    fn bound_negation_is_demanded_and_agrees() {
        let src = "
            node(a). node(b). node(c).
            edge(a, b).
            source(X) :- node(X), ~hit(X).
            hit(Y) :- edge(X, Y).
        ";
        check_holds(src, &["source(a)", "source(b)", "source(X)", "~source(b)"]);
        let (rb, db, mut syms) = setup(src);
        let mut magic = MagicEngine::new(&rb, &db).unwrap();
        let q = parse_query("?- source(a).", &mut syms).unwrap();
        assert!(magic.holds(&q).unwrap());
        assert_eq!(
            magic.stats().unbound_fallbacks,
            0,
            "hit(X) is bound by node(X); no fallback expected"
        );
    }

    #[test]
    fn unbound_negation_falls_back_without_dropping_answers() {
        // `~picked(Y)` with inner-existential Y cannot be bound — the
        // rewrite must evaluate `picked` unrestricted, not drop answers.
        let src = "
            item(a). item(b).
            sel(b).
            picked(X) :- sel(X).
            open(X) :- item(X), ~picked(Y).
        ";
        let (rb, db, mut syms) = setup(src);
        let mut magic = MagicEngine::new(&rb, &db).unwrap();
        let mut bu = BottomUpEngine::new(&rb, &db).unwrap();
        let q = parse_query("?- open(a).", &mut syms).unwrap();
        assert_eq!(magic.holds(&q).unwrap(), bu.holds(&q).unwrap());
        assert!(
            magic.stats().unbound_fallbacks > 0,
            "inner-existential negation must be counted as a fallback"
        );
    }

    #[test]
    fn hypothetical_premises_agree() {
        let src = "
            take(sue, cs1).
            req(cs1). req(cs2).
            done(S) :- take(S, cs1), take(S, cs2).
            canfinish(S) :- done(S)[add: take(S, cs2)].
        ";
        check_holds(
            src,
            &[
                "canfinish(sue)",
                "canfinish(X)",
                "done(sue)",
                "done(sue)[add: take(sue, cs2)]",
                "done(sue)[add: take(sue, cs2), del: take(sue, cs1)]",
            ],
        );
    }

    #[test]
    fn hypothetical_deletion_agrees() {
        let src = "
            edge(a, b). edge(b, c).
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- tc(X, Y), edge(Y, Z).
            cut(X, Y) :- tc(X, Y)[del: edge(b, c)].
        ";
        check_holds(
            src,
            &["cut(a, c)", "cut(a, b)", "tc(a, c)[del: edge(a, b)]"],
        );
    }

    #[test]
    fn fresh_query_constants_grow_the_domain() {
        // PR-8 Definition-3 regression shape: the query adds a fact
        // about a constant the program has never seen.
        let src = "
            r(a).
            p(X) :- r(X), ~q(X).
            q(b).
        ";
        let (rb, db, mut syms) = setup(src);
        let mut magic = MagicEngine::new(&rb, &db).unwrap();
        let mut bu = BottomUpEngine::new(&rb, &db).unwrap();
        for q in [
            "p(zzz)[add: r(zzz)]",
            "p(zzz)",
            "p(a)[del: q(zzz)]",
            "~p(zzz)",
        ] {
            let query = parse_query(&format!("?- {q}."), &mut syms).unwrap();
            assert_eq!(
                magic.holds(&query).unwrap(),
                bu.holds(&query).unwrap(),
                "query {q}"
            );
        }
    }

    #[test]
    fn magic_seed_stays_in_its_overlay_branch() {
        // Two sibling hypothetical branches demand the same goal with
        // different seeds; answers must not bleed across.
        let src = "
            edge(a, b).
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- tc(X, Y), edge(Y, Z).
            both(X) :- tc(a, X)[add: edge(b, X)], tc(b, X)[add: edge(a, X)].
        ";
        check_holds(src, &["both(c)", "both(a)", "both(X)"]);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn rewrite_failpoint_degrades_to_semi_naive() {
        use hdl_base::failpoint::{self, FaultSpec};
        failpoint::clear();
        let (rb, db, mut syms) = setup(TC);
        let mut magic = MagicEngine::new(&rb, &db).unwrap();
        failpoint::configure("magic::rewrite", FaultSpec::erroring(1).fires(1), 7);
        let q = parse_query("?- tc(a, d).", &mut syms).unwrap();
        let got = magic.holds(&q).unwrap();
        failpoint::clear();
        assert!(got, "degraded query must still answer correctly");
        assert!(
            magic.stats().unbound_fallbacks > 0,
            "failed rewrite must be recorded as a fallback"
        );
    }
}
