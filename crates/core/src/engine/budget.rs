//! Per-query evaluation budgets: cancellation tokens and deadlines.
//!
//! The paper's language is `Σₖᴾ`-complete, so a service answering
//! arbitrary queries must be able to abandon a search that will not
//! finish in time. A [`Budget`] carries an optional wall-clock deadline
//! and an optional shared [`CancelToken`]; the engines call
//! [`Budget::check`] inside their inner loops and unwind with
//! [`Error::Cancelled`] / [`Error::DeadlineExceeded`] when the budget is
//! spent.
//!
//! Checking the clock on every goal expansion would be measurable, so
//! `check` only consults the token and `Instant::now()` once every
//! [`CHECK_PERIOD`] calls. At typical expansion rates (millions per
//! second) this bounds the overshoot past a deadline to well under a
//! millisecond while keeping the hot-path cost to one decrement and
//! branch.
//!
//! Cancellation is cooperative and *sound*: the engines propagate the
//! error without recording any verdicts for goals still in flight, so a
//! cancelled engine can keep serving later queries — its memo tables
//! only ever hold definitive answers.

use hdl_base::{Error, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many [`Budget::check`] calls elapse between real clock/token
/// probes.
pub const CHECK_PERIOD: u32 = 128;

/// A shared flag for cooperative cancellation of an in-flight query.
///
/// Cloning the token is cheap (`Arc`); any clone may call
/// [`CancelToken::cancel`], and every engine holding a [`Budget`] with
/// the token will unwind with [`Error::Cancelled`] at its next probe.
#[derive(Clone, Default, Debug)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every evaluation holding this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Memory-side caps for an evaluation: how much an engine may *grow*
/// its shared stores while answering one query.
///
/// All three limits are deltas over the state at the moment the budget
/// was installed (engines are reused across queries, so absolute store
/// sizes would punish later queries for earlier ones), except
/// `max_overlay_depth`, which bounds the absolute extension depth of the
/// database DAG — a proxy for hypothetical nesting.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MemoryLimits {
    /// Cap on fact memory grown during this query: distinct ground
    /// atoms interned plus fact-id slots stored across new overlay
    /// nodes (so hypothetical branching counts even when it reuses the
    /// same few atoms).
    pub max_facts: Option<u64>,
    /// Cap on new memoized goals / derived tuples during this query.
    pub max_goal_set: Option<u64>,
    /// Cap on the absolute overlay depth of any database reached.
    pub max_overlay_depth: Option<u64>,
}

impl MemoryLimits {
    /// Whether any cap is set.
    pub fn is_limited(&self) -> bool {
        self.max_facts.is_some() || self.max_goal_set.is_some() || self.max_overlay_depth.is_some()
    }
}

/// A per-query evaluation budget (deadline + cancellation token +
/// memory limits).
///
/// The default budget is unlimited and check-free.
#[derive(Clone, Default, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    token: Option<CancelToken>,
    memory: MemoryLimits,
    /// Calls remaining until the next real probe.
    countdown: u32,
}

impl Budget {
    /// An unlimited budget (never trips).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Adds a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Adds a deadline at an absolute instant.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Caps the fact memory (interned atoms + stored fact slots)
    /// grown during the query.
    pub fn with_max_facts(mut self, n: u64) -> Self {
        self.memory.max_facts = Some(n);
        self
    }

    /// Caps the number of new memoized goals / derived tuples.
    pub fn with_max_goal_set(mut self, n: u64) -> Self {
        self.memory.max_goal_set = Some(n);
        self
    }

    /// Caps the absolute overlay depth of databases reached.
    pub fn with_max_overlay_depth(mut self, n: u64) -> Self {
        self.memory.max_overlay_depth = Some(n);
        self
    }

    /// Installs a full set of memory limits at once.
    pub fn with_memory_limits(mut self, limits: MemoryLimits) -> Self {
        self.memory = limits;
        self
    }

    /// The memory limits carried by this budget.
    pub fn memory_limits(&self) -> MemoryLimits {
        self.memory
    }

    /// Whether any memory cap is set (engines skip the store-size
    /// arithmetic entirely when not).
    pub fn has_memory_limits(&self) -> bool {
        self.memory.is_limited()
    }

    /// Whether this budget can ever trip (has a deadline or a token).
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.token.is_some()
    }

    /// Tests the memory caps against current usage: `facts` and
    /// `goal_set` are growth since the budget was installed,
    /// `overlay_depth` is absolute. Errors with
    /// [`Error::ResourceExhausted`] naming the first cap exceeded.
    pub fn check_memory(&self, facts: u64, goal_set: u64, overlay_depth: u64) -> Result<()> {
        if let Some(limit) = self.memory.max_facts {
            if facts > limit {
                return Err(Error::ResourceExhausted {
                    resource: "facts".into(),
                    limit,
                });
            }
        }
        if let Some(limit) = self.memory.max_goal_set {
            if goal_set > limit {
                return Err(Error::ResourceExhausted {
                    resource: "goal set".into(),
                    limit,
                });
            }
        }
        if let Some(limit) = self.memory.max_overlay_depth {
            if overlay_depth > limit {
                return Err(Error::ResourceExhausted {
                    resource: "overlay depth".into(),
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Cheap periodic probe: every [`CHECK_PERIOD`] calls, tests the
    /// token and the clock. Errors with [`Error::Cancelled`] or
    /// [`Error::DeadlineExceeded`] once the budget is spent.
    #[inline]
    pub fn check(&mut self) -> Result<()> {
        if !self.is_limited() {
            return Ok(());
        }
        if self.countdown > 0 {
            self.countdown -= 1;
            return Ok(());
        }
        self.countdown = CHECK_PERIOD - 1;
        self.probe()
    }

    /// Unconditional probe of the token and the clock.
    #[cold]
    pub fn probe(&self) -> Result<()> {
        if let Some(t) = &self.token {
            if t.is_cancelled() {
                return Err(Error::Cancelled);
            }
        }
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                return Err(Error::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut b = Budget::unlimited();
        for _ in 0..10_000 {
            b.check().unwrap();
        }
    }

    #[test]
    fn expired_deadline_trips_within_one_period() {
        let mut b = Budget::unlimited().with_deadline(Duration::ZERO);
        let mut tripped = 0u32;
        for i in 0..=CHECK_PERIOD {
            if b.check().is_err() {
                tripped = i;
                break;
            }
        }
        assert!(tripped <= CHECK_PERIOD, "must probe at least once a period");
        assert_eq!(b.probe().unwrap_err(), Error::DeadlineExceeded);
    }

    #[test]
    fn token_cancels_all_clones() {
        let token = CancelToken::new();
        let mut b = Budget::unlimited().with_token(token.clone());
        b.check().unwrap();
        token.cancel();
        assert_eq!(b.probe().unwrap_err(), Error::Cancelled);
        let mut any_err = false;
        for _ in 0..=CHECK_PERIOD {
            if b.check().is_err() {
                any_err = true;
                break;
            }
        }
        assert!(any_err);
    }

    #[test]
    fn future_deadline_passes() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert!(b.probe().is_ok());
    }

    #[test]
    fn memory_limits_trip_the_right_resource() {
        let b = Budget::unlimited()
            .with_max_facts(10)
            .with_max_goal_set(20)
            .with_max_overlay_depth(5);
        assert!(b.has_memory_limits());
        assert!(b.check_memory(10, 20, 5).is_ok(), "at the cap is fine");
        assert_eq!(
            b.check_memory(11, 0, 0).unwrap_err(),
            Error::ResourceExhausted {
                resource: "facts".into(),
                limit: 10
            }
        );
        assert_eq!(
            b.check_memory(0, 21, 0).unwrap_err(),
            Error::ResourceExhausted {
                resource: "goal set".into(),
                limit: 20
            }
        );
        assert_eq!(
            b.check_memory(0, 0, 6).unwrap_err(),
            Error::ResourceExhausted {
                resource: "overlay depth".into(),
                limit: 5
            }
        );
        assert!(!Budget::unlimited().has_memory_limits());
        assert!(Budget::unlimited().check_memory(u64::MAX, 0, 0).is_ok());
    }
}
