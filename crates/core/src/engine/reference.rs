//! The retained naive bottom-up closure — equivalence oracle and
//! benchmark baseline.
//!
//! [`NaiveEngine`] evaluates exactly like [`BottomUpEngine`] did before
//! the semi-naive rewrite (DESIGN.md §3.11): every fixpoint round
//! re-fires every rule of the stratum against the entire model, with no
//! delta-rotation and no intra-round parallelism. It exists for two
//! reasons:
//!
//! - **Oracle.** The property suite (`tests/props.rs`) checks that the
//!   semi-naive parallel closure derives exactly the same perfect model
//!   as this engine on randomized rulebases and databases, including
//!   under hypothetical `add:` branching.
//! - **Baseline.** The fixpoint benchmarks (`crates/bench`, emitting
//!   `BENCH_fixpoint.json`) report naive-versus-semi-naive work and wall
//!   time; both engines count premise-match attempts with the same
//!   accounting, so the ratio isolates what delta-rotation saves.
//!
//! Both evaluators share the premise walk and the layered match module —
//! the *scheduling* (which rules re-fire each round, and against which
//! model slice) is what differs, and that is the part the semi-naive
//! rewrite changed. Independent-implementation coverage of the walk
//! itself comes from the top-down engine and the `PROVE` procedures,
//! which the cross-engine tests already compare against.

use crate::ast::{Premise, Rulebase};
use crate::engine::bottomup::BottomUpEngine;
use crate::engine::budget::Budget;
use crate::engine::stats::{EngineStats, Limits};
use hdl_base::{Atom, Database, Result, Symbol};

/// Naive bottom-up evaluation: full re-fire of every rule, every round.
pub struct NaiveEngine<'rb> {
    inner: BottomUpEngine<'rb>,
}

impl<'rb> NaiveEngine<'rb> {
    /// Builds a naive engine; fails if `rb` is not stratified.
    pub fn new(rb: &'rb Rulebase, db: &Database) -> Result<Self> {
        let mut inner = BottomUpEngine::new(rb, db)?;
        inner.set_semi_naive(false);
        Ok(NaiveEngine { inner })
    }

    /// Replaces the resource limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.inner = self.inner.with_limits(limits);
        self
    }

    /// Replaces the evaluation budget (deadline / cancellation token).
    pub fn set_budget(&mut self, budget: Budget) {
        self.inner.set_budget(budget);
    }

    /// A snapshot of the full perfect model of the base database.
    pub fn model(&mut self) -> Result<Database> {
        self.inner.model()
    }

    /// Evaluates a query premise against the base database.
    pub fn holds(&mut self, query: &Premise) -> Result<bool> {
        self.inner.holds(query)
    }

    /// All tuples of `pattern` in the perfect model of the base database.
    pub fn answers(&mut self, pattern: &Atom) -> Result<Vec<Vec<Symbol>>> {
        self.inner.answers(pattern)
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, split_facts};

    #[test]
    fn naive_matches_semi_naive_on_tc() {
        let src = "
            edge(a, b). edge(b, c). edge(c, d).
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- tc(X, Y), edge(Y, Z).
        ";
        let mut syms = hdl_base::SymbolTable::new();
        let program = parse_program(src, &mut syms).unwrap();
        let (rb, facts) = split_facts(program);
        let db: Database = facts.into_iter().collect();
        let mut naive = NaiveEngine::new(&rb, &db).unwrap();
        let mut semi = BottomUpEngine::new(&rb, &db).unwrap();
        let m1 = naive.model().unwrap();
        let m2 = semi.model().unwrap();
        assert_eq!(m1, m2);
        assert!(
            naive.stats().goal_expansions > semi.stats().goal_expansions,
            "naive re-derivation must cost more match attempts ({} vs {})",
            naive.stats().goal_expansions,
            semi.stats().goal_expansions
        );
    }
}
