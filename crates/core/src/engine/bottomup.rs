//! Bottom-up (perfect-model) hypothetical inference — the reference engine.
//!
//! For a stratified hypothetical rulebase `R` and database `DB`, the
//! *perfect model* `M(DB)` is computed stratum by stratum exactly as for
//! stratified Horn programs ([1], [20] in the paper), with one addition: a
//! hypothetical premise `B[add: C̄]θ` holds iff `Bθ ∈ M(DB ∪ C̄θ)` — the
//! perfect model of the *augmented* database, computed recursively.
//!
//! Termination: grounding substitutions range over the fixed domain
//! `dom(R, DB)`, so the Herbrand base is finite and augmented databases
//! grow strictly; the recursion over databases bottoms out at the full
//! base. When `C̄θ ⊆ DB` the premise degenerates to a plain positive
//! premise evaluated inside the current fixpoint (monotone, so iteration
//! order is irrelevant).
//!
//! Models are *stratum-lazy*: for an augmented database the engine only
//! closes the strata up to the hypothetical goal's stratum. Without this,
//! a rule like `within1(S,D) ← grad(S,D)[add: take(S,C)]` would re-fire
//! itself inside every augmented database and walk the exponential lattice
//! of `take`-subsets even when the query never needs those facts. With it,
//! hypothetical recursion *within* one mutual-recursion class still
//! explores the lattice — that cost is the NP-hardness of §3.1, not an
//! implementation artifact.
//!
//! Partial models are memoized per [`hdl_base::DbId`] and extended in
//! place when later queries need higher strata. This engine accepts *any*
//! rulebase with stratified negation (linearly stratified or not) and
//! serves as ground truth for the top-down engine and the `PROVE`
//! procedures.

use crate::analysis::stratify::{evaluation_strata, NegationStrata};
use crate::ast::{HypRule, Premise, Rulebase};
use crate::engine::budget::Budget;
use crate::engine::context::Context;
use crate::engine::stats::{EngineStats, Limits};
use hdl_base::{
    Atom, Bindings, Database, DbId, DbView, Error, FactId, FxHashMap, Result, Symbol, Var,
};
use std::sync::Arc;

/// A partially computed perfect model: strata `0..upto` are closed.
///
/// Only the *derived* facts are stored — the facts the rules added above
/// the interned database itself. The EDB layer is answered through a
/// [`DbView`] of the overlay DAG, so memoizing a model for an augmented
/// database costs O(|derived|), not a full copy of the database. The
/// invariant `derived ∩ DB = ∅` keeps the two layers disjoint, so
/// enumerating `view ∪ derived` never repeats a fact.
#[derive(Debug)]
struct ModelEntry {
    upto: usize,
    derived: Database,
}

/// The bottom-up engine, bound to one rulebase and one base database.
pub struct BottomUpEngine<'rb> {
    ctx: Context<'rb>,
    models: FxHashMap<DbId, ModelEntry>,
    /// Evaluation strata (hypothetical edges across recursion classes are
    /// strict — see [`evaluation_strata`]).
    eval_strata: NegationStrata,
    /// Rule indices grouped by evaluation stratum of the head predicate,
    /// shared immutably so fixpoint rounds need no per-round copy.
    rules_by_stratum: Vec<Arc<[usize]>>,
    stats: EngineStats,
    limits: Limits,
    budget: Budget,
    /// Cached `budget.has_memory_limits()` for the round-loop fast path.
    mem_limited: bool,
    /// Fact-store size when the budget was installed; the fact cap
    /// bounds growth past this, not absolute size (engines are reused).
    facts_baseline: u64,
}

impl<'rb> BottomUpEngine<'rb> {
    /// Builds an engine; fails if `rb` is not stratified.
    pub fn new(rb: &'rb Rulebase, db: &Database) -> Result<Self> {
        let ctx = Context::new(rb, db)?;
        let eval_strata = evaluation_strata(rb)?;
        let n = eval_strata.num_strata.max(1);
        let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, rule) in rb.iter().enumerate() {
            grouped[eval_strata.stratum(rule.head.pred)].push(i);
        }
        let rules_by_stratum = grouped.into_iter().map(Arc::from).collect();
        Ok(BottomUpEngine {
            ctx,
            models: FxHashMap::default(),
            eval_strata,
            rules_by_stratum,
            stats: EngineStats::default(),
            limits: Limits::default(),
            budget: Budget::default(),
            mem_limited: false,
            facts_baseline: 0,
        })
    }

    /// Replaces the resource limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Replaces the evaluation budget (deadline / cancellation token).
    ///
    /// A tripped budget abandons the fixpoint mid-flight; the partial
    /// model of the interrupted database is discarded (its stratum was
    /// never marked closed), so later queries recompute it from scratch
    /// and memoized models stay sound.
    ///
    /// The fact cap of any memory limits bounds growth from this moment;
    /// the goal-set cap bounds the derived-fact count of the model being
    /// closed (absolute — the natural "working set" of this engine).
    pub fn set_budget(&mut self, budget: Budget) {
        self.mem_limited = budget.has_memory_limits();
        self.facts_baseline = self.ctx.fact_footprint();
        self.budget = budget;
    }

    /// Probes the memory caps at a fixpoint-round boundary.
    fn check_memory(&self, derived: usize) -> Result<()> {
        let facts = self
            .ctx
            .fact_footprint()
            .saturating_sub(self.facts_baseline);
        self.budget
            .check_memory(facts, derived as u64, self.ctx.dbs.max_depth() as u64)
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The evaluation context.
    pub fn context(&self) -> &Context<'rb> {
        &self.ctx
    }

    /// The number of strata of the global stratification.
    pub fn num_strata(&self) -> usize {
        self.rules_by_stratum.len()
    }

    /// A snapshot of the full perfect model of the base database.
    pub fn model(&mut self) -> Result<Database> {
        let base = self.ctx.base_db;
        let all = self.num_strata();
        self.ensure_model(base, all)?;
        let mut model = self.ctx.dbs.to_database(base);
        model.absorb(&self.models[&base].derived);
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        Ok(model)
    }

    /// Evaluates a query premise against the base database (same free-
    /// variable conventions as the top-down engine).
    pub fn holds(&mut self, query: &Premise) -> Result<bool> {
        let base = self.ctx.base_db;
        let num_vars = query.vars().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut bindings = Bindings::new(num_vars);
        let result = match query {
            Premise::Atom(atom) => {
                self.ensure_for_pred(base, atom.pred)?;
                Ok(exists_in_model(
                    self.ctx.dbs.view(base),
                    &self.models[&base].derived,
                    atom,
                    &mut bindings,
                ))
            }
            Premise::Neg(atom) => {
                self.ensure_for_pred(base, atom.pred)?;
                Ok(!exists_in_model(
                    self.ctx.dbs.view(base),
                    &self.models[&base].derived,
                    atom,
                    &mut bindings,
                ))
            }
            Premise::Hyp { goal, adds } => {
                let free = collect_free(goal, adds, &bindings);
                self.exists_hyp(goal, adds, &free, 0, &mut bindings, base)
            }
        };
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        result
    }

    /// All tuples of `pattern` in the perfect model of the base database.
    pub fn answers(&mut self, pattern: &Atom) -> Result<Vec<Vec<Symbol>>> {
        let (rows, trip) = self.answers_partial(pattern);
        match trip {
            Some(e) => Err(e),
            None => Ok(rows),
        }
    }

    /// Like [`answers`](Self::answers), but if the budget trips while
    /// closing the model the tuples already derived are returned alongside
    /// the trip error instead of being discarded. The rows are sound
    /// (stratified fixpoints only ever add true facts) but not complete
    /// when the error is `Some`.
    pub fn answers_partial(&mut self, pattern: &Atom) -> (Vec<Vec<Symbol>>, Option<Error>) {
        let base = self.ctx.base_db;
        let trip = self.ensure_for_pred(base, pattern.pred).err();
        let empty = Database::new();
        let derived = self.models.get(&base).map_or(&empty, |e| &e.derived);
        let mut bindings = Bindings::new(pattern.vars().map(|v| v.index() + 1).max().unwrap_or(0));
        let mut out = Vec::new();
        for_each_match_layered(
            self.ctx.dbs.view(base),
            derived,
            pattern,
            &mut bindings,
            |b| {
                out.push(
                    pattern
                        .args
                        .iter()
                        .map(|t| match t {
                            hdl_base::Term::Const(c) => *c,
                            hdl_base::Term::Var(v) => b.get(*v).expect("bound by match"),
                        })
                        .collect(),
                );
                false
            },
        );
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        out.sort();
        out.dedup();
        (out, trip)
    }

    /// Whether a ground fact is in the perfect model of `db` (closing only
    /// the strata the fact's predicate needs).
    pub fn proves(&mut self, db: DbId, fact: &hdl_base::GroundAtom) -> Result<bool> {
        self.ensure_for_pred(db, fact.pred)?;
        let found = self.models[&db].derived.contains(fact) || self.ctx.dbs.view(db).contains(fact);
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        Ok(found)
    }

    fn ensure_for_pred(&mut self, db: DbId, pred: Symbol) -> Result<()> {
        let upto = self.eval_strata.stratum(pred) + 1;
        self.ensure_model(db, upto)
    }

    /// Ensures strata `0..upto` of `db`'s model are closed.
    fn ensure_model(&mut self, db: DbId, upto: usize) -> Result<()> {
        let upto = upto.min(self.rules_by_stratum.len());
        let mut entry = match self.models.remove(&db) {
            Some(e) => e,
            None => {
                self.stats.calls += 1;
                if self.models.len() as u64 >= self.limits.max_databases {
                    // Reinsert nothing; report the blowup.
                    return Err(Error::LimitExceeded {
                        what: "databases".into(),
                        limit: self.limits.max_databases,
                    });
                }
                // O(1): the EDB layer stays in the overlay DAG; only
                // facts the rules derive are stored here.
                ModelEntry {
                    upto: 0,
                    derived: Database::new(),
                }
            }
        };
        while entry.upto < upto {
            let stratum = entry.upto;
            let rule_ids = Arc::clone(&self.rules_by_stratum[stratum]);
            loop {
                self.stats.rounds += 1;
                // A trip here drops `entry` (the stratum was never marked
                // closed), so later queries recompute it — memo stays sound.
                if self.mem_limited {
                    self.check_memory(entry.derived.len())?;
                }
                hdl_base::failpoint!("bottomup::round");
                let mut fresh: Vec<hdl_base::GroundAtom> = Vec::new();
                for &rule_idx in rule_ids.iter() {
                    self.stats.goal_expansions += 1;
                    if self.stats.goal_expansions > self.limits.max_expansions {
                        self.models.insert(db, entry);
                        return Err(Error::LimitExceeded {
                            what: "rule firings".into(),
                            limit: self.limits.max_expansions,
                        });
                    }
                    self.fire(rule_idx, &entry.derived, db, &mut fresh)?;
                }
                let mut changed = false;
                for f in fresh {
                    // Keep `derived` disjoint from the EDB layer so the
                    // two never enumerate the same fact twice.
                    if self.ctx.dbs.view(db).contains(&f) {
                        continue;
                    }
                    changed |= entry.derived.insert(f);
                }
                if !changed {
                    break;
                }
            }
            entry.upto += 1;
        }
        self.models.insert(db, entry);
        Ok(())
    }

    /// Fires one rule against the growing model (EDB view + derived
    /// delta), collecting new heads.
    fn fire(
        &mut self,
        rule_idx: usize,
        derived: &Database,
        db: DbId,
        out: &mut Vec<hdl_base::GroundAtom>,
    ) -> Result<()> {
        let rb: &'rb Rulebase = self.ctx.rb;
        let rule: &'rb HypRule = &rb.rules[rule_idx];
        let mut bindings = Bindings::new(rule.num_vars);
        self.walk(rule, rule_idx, 0, &mut bindings, derived, db, out)
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        bindings: &mut Bindings,
        derived: &Database,
        db: DbId,
        out: &mut Vec<hdl_base::GroundAtom>,
    ) -> Result<()> {
        self.budget.check()?;
        if idx == rule.premises.len() {
            // Ground any remaining head variables over the domain
            // (Definition 3's ground substitution).
            let free = bindings.free_vars_of(&rule.head);
            return self.emit_head(rule, &free, 0, bindings, out);
        }
        match &rule.premises[idx] {
            Premise::Atom(atom) => {
                // Provable instances of same-or-lower strata are exactly
                // the EDB view plus the derived delta, so matching both
                // layers enumerates the bindings. Rows are collected
                // first: the recursive walk needs `&mut self` while the
                // view borrows the store.
                let rows = collect_matches(self.ctx.dbs.view(db), derived, atom, bindings);
                for row in rows {
                    for &(v, c) in &row {
                        bindings.set(v, c);
                    }
                    self.walk(rule, rule_idx, idx + 1, bindings, derived, db, out)?;
                    for &(v, _) in &row {
                        bindings.unset(v);
                    }
                }
                Ok(())
            }
            Premise::Neg(atom) => {
                let inner = self.ctx.plans[rule_idx].inner_neg_vars[idx].clone();
                let free = bindings.free_vars_of(atom);
                let outer: Vec<Var> = free.into_iter().filter(|v| !inner.contains(v)).collect();
                self.neg_outer(
                    rule, rule_idx, idx, atom, &outer, 0, bindings, derived, db, out,
                )
            }
            Premise::Hyp { goal, adds } => {
                let free = collect_free(goal, adds, bindings);
                self.hyp_groundings(
                    rule, rule_idx, idx, goal, adds, &free, 0, bindings, derived, db, out,
                )
            }
        }
    }

    /// Enumerates outer variables of a negated premise; for each outer
    /// assignment the premise holds iff no inner assignment is in the
    /// model (the negated predicate's stratum is strictly lower, hence
    /// closed; matching with inner vars unbound is the ∃-inner check).
    #[allow(clippy::too_many_arguments)]
    fn neg_outer(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        atom: &'rb Atom,
        outer: &[Var],
        opos: usize,
        bindings: &mut Bindings,
        derived: &Database,
        db: DbId,
        out: &mut Vec<hdl_base::GroundAtom>,
    ) -> Result<()> {
        self.budget.check()?;
        if opos == outer.len() {
            let witnessed = exists_in_model(self.ctx.dbs.view(db), derived, atom, bindings);
            if !witnessed {
                self.walk(rule, rule_idx, idx + 1, bindings, derived, db, out)?;
            }
            return Ok(());
        }
        let v = outer[opos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            self.neg_outer(
                rule,
                rule_idx,
                idx,
                atom,
                outer,
                opos + 1,
                bindings,
                derived,
                db,
                out,
            )?;
        }
        bindings.unset(v);
        Ok(())
    }

    /// Enumerates groundings of a hypothetical premise and tests each in
    /// the (recursively computed, stratum-bounded) model of the augmented
    /// database.
    #[allow(clippy::too_many_arguments)]
    fn hyp_groundings(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        goal: &'rb Atom,
        adds: &'rb [Atom],
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        derived: &Database,
        db: DbId,
        out: &mut Vec<hdl_base::GroundAtom>,
    ) -> Result<()> {
        if fpos == free.len() {
            let add_ids: Vec<FactId> = adds
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let db2 = self.ctx.dbs.extend(db, &add_ids);
            let goal_fact = goal.ground(bindings).expect("grounded");
            let holds = if db2 == db {
                // Degenerate hypothetical: all additions already present.
                // The goal is tested inside the current fixpoint, where it
                // behaves like a positive premise (monotone).
                derived.contains(&goal_fact) || self.ctx.dbs.view(db).contains(&goal_fact)
            } else {
                self.stats.databases_created += 1;
                self.proves(db2, &goal_fact)?
            };
            if holds {
                self.walk(rule, rule_idx, idx + 1, bindings, derived, db, out)?;
            }
            return Ok(());
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            self.hyp_groundings(
                rule,
                rule_idx,
                idx,
                goal,
                adds,
                free,
                fpos + 1,
                bindings,
                derived,
                db,
                out,
            )?;
        }
        bindings.unset(v);
        Ok(())
    }

    fn emit_head(
        &mut self,
        rule: &'rb HypRule,
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        out: &mut Vec<hdl_base::GroundAtom>,
    ) -> Result<()> {
        if fpos == free.len() {
            out.push(rule.head.ground(bindings).expect("head grounded"));
            return Ok(());
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            self.emit_head(rule, free, fpos + 1, bindings, out)?;
        }
        bindings.unset(v);
        Ok(())
    }

    /// `∃`-grounding of a top-level hypothetical query.
    #[allow(clippy::too_many_arguments)]
    fn exists_hyp(
        &mut self,
        goal: &Atom,
        adds: &[Atom],
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        db: DbId,
    ) -> Result<bool> {
        if fpos == free.len() {
            let add_ids: Vec<FactId> = adds
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let db2 = self.ctx.dbs.extend(db, &add_ids);
            let goal_fact = goal.ground(bindings).expect("grounded");
            return self.proves(db2, &goal_fact);
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.exists_hyp(goal, adds, free, fpos + 1, bindings, db)? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }
}

/// Runs `f` on every match of `atom` across the two model layers: the
/// interned database's overlay view, then the derived delta. The layers
/// are disjoint (see [`ModelEntry`]), so no match repeats.
fn for_each_match_layered(
    view: DbView<'_>,
    derived: &Database,
    atom: &Atom,
    bindings: &mut Bindings,
    mut f: impl FnMut(&mut Bindings) -> bool,
) -> bool {
    if view.for_each_match(atom, bindings, &mut f) {
        return true;
    }
    derived.for_each_match(atom, bindings, f)
}

/// Collects the binding rows matching `atom` in the layered model (only
/// the newly bound variables are recorded, for replay in the caller).
fn collect_matches(
    view: DbView<'_>,
    derived: &Database,
    atom: &Atom,
    bindings: &mut Bindings,
) -> Vec<Vec<(Var, Symbol)>> {
    let before: Vec<Var> = bindings.free_vars_of(atom);
    let mut rows = Vec::new();
    for_each_match_layered(view, derived, atom, bindings, |b| {
        rows.push(
            before
                .iter()
                .map(|&v| (v, b.get(v).expect("bound by match")))
                .collect(),
        );
        false
    });
    rows
}

fn exists_in_model(
    view: DbView<'_>,
    derived: &Database,
    atom: &Atom,
    bindings: &mut Bindings,
) -> bool {
    let mut found = false;
    for_each_match_layered(view, derived, atom, bindings, |_| {
        found = true;
        true
    });
    found
}

fn collect_free(goal: &Atom, adds: &[Atom], bindings: &Bindings) -> Vec<Var> {
    let mut free: Vec<Var> = Vec::new();
    for v in goal.vars().chain(adds.iter().flat_map(|a| a.vars())) {
        if bindings.get(v).is_none() && !free.contains(&v) {
            free.push(v);
        }
    }
    free
}
