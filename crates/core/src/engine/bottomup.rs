//! Bottom-up (perfect-model) hypothetical inference — the reference engine.
//!
//! For a stratified hypothetical rulebase `R` and database `DB`, the
//! *perfect model* `M(DB)` is computed stratum by stratum exactly as for
//! stratified Horn programs ([1], [20] in the paper), with one addition: a
//! hypothetical premise `B[add: Āθ, del: C̄θ]` holds iff
//! `Bθ ∈ M((DB ∖ C̄θ) ∪ Āθ)` — the perfect model of the *modified*
//! database, computed recursively (deletions apply first, so a fact in
//! both lists ends up present).
//!
//! Termination: grounding substitutions range over the fixed domain
//! `dom(R, DB)`, so the Herbrand base is finite and augmented databases
//! grow strictly; the recursion over databases bottoms out at the full
//! base. When `C̄θ ⊆ DB` the premise degenerates to a plain positive
//! premise evaluated inside the current fixpoint (monotone, so iteration
//! order is irrelevant).
//!
//! The per-stratum closure is *semi-naive* (DESIGN.md §3.11): each round
//! tracks the delta of facts first derived in the previous round, and a
//! rule fires in round `r ≥ 1` only through rotations that pin one of its
//! same-stratum positive premises to that delta
//! (`Full^{<j} ⋈ Δ_j ⋈ Old^{>j}`). Only round 0 evaluates rules against
//! the full model. Rules whose hypothetical premise can read the growing
//! model (the degenerate `add ⊆ DB` case over a same-stratum goal) are
//! re-fired fully each round instead — rotation can't see those premises
//! flip. Rules with no hypothetical premises are *pure*: their firings
//! need only shared reads, so a round can fan them out across scoped
//! worker threads (see [`BottomUpEngine::set_parallelism`]), each worker
//! carrying its own budget clone and fresh-fact buffer, merged
//! deterministically at the round barrier.
//!
//! Models are *stratum-lazy*: for an augmented database the engine only
//! closes the strata up to the hypothetical goal's stratum. Without this,
//! a rule like `within1(S,D) ← grad(S,D)[add: take(S,C)]` would re-fire
//! itself inside every augmented database and walk the exponential lattice
//! of `take`-subsets even when the query never needs those facts. With it,
//! hypothetical recursion *within* one mutual-recursion class still
//! explores the lattice — that cost is the NP-hardness of §3.1, not an
//! implementation artifact.
//!
//! Partial models are memoized per [`hdl_base::DbId`] and extended in
//! place when later queries need higher strata. This engine accepts *any*
//! rulebase with stratified negation (linearly stratified or not) and
//! serves as ground truth for the top-down engine and the `PROVE`
//! procedures.

use crate::analysis::stratify::{evaluation_strata, NegationStrata};
use crate::ast::{HypRule, Premise, Rulebase};
use crate::engine::budget::Budget;
use crate::engine::context::Context;
use crate::engine::matching::{
    chunk_tasks, collect_free, empty_layer, fire_pure, part_for, run_pure_parallel, ModelLayers,
    Part, PureTask, RuleClass, Seed, PARALLEL_MIN_DELTA,
};
use crate::engine::stats::{EngineStats, Limits};
use hdl_base::{
    Atom, Bindings, Database, DbId, Error, FactId, FxHashMap, GroundAtom, MatchCounters, Result,
    Symbol, Var,
};
use std::sync::Arc;

/// A partially computed perfect model: strata `0..upto` are closed.
///
/// Only the *derived* facts are stored — the facts the rules added above
/// the interned database itself. The EDB layer is answered through a
/// [`hdl_base::DbView`] of the overlay DAG, so memoizing a model for an
/// augmented database costs O(|derived|), not a full copy of the
/// database. The invariant `derived ∩ DB = ∅` keeps the two layers
/// disjoint, so enumerating `view ∪ derived` never repeats a fact.
#[derive(Debug)]
struct ModelEntry {
    upto: usize,
    derived: Database,
}

/// The bottom-up engine, bound to one rulebase and one base database.
pub struct BottomUpEngine<'rb> {
    ctx: Context<'rb>,
    models: FxHashMap<DbId, ModelEntry>,
    /// Evaluation strata (hypothetical edges across recursion classes are
    /// strict — see [`evaluation_strata`]).
    eval_strata: NegationStrata,
    /// Rule indices grouped by evaluation stratum of the head predicate,
    /// shared immutably so fixpoint rounds need no per-round copy.
    rules_by_stratum: Vec<Arc<[usize]>>,
    /// Per-rule semi-naive classification, indexed like `rb.rules`.
    classes: Vec<RuleClass>,
    /// Worker threads for pure-rule firings within a round (1 = inline).
    workers: usize,
    /// Semi-naive delta-rotation on (the default). Off re-fires every
    /// rule fully each round — the naive closure kept as the reference
    /// baseline (see [`crate::engine::reference::NaiveEngine`]).
    semi_naive: bool,
    stats: EngineStats,
    limits: Limits,
    budget: Budget,
    /// Cached `budget.has_memory_limits()` for the round-loop fast path.
    mem_limited: bool,
    /// Fact-store size when the budget was installed; the fact cap
    /// bounds growth past this, not absolute size (engines are reused).
    facts_baseline: u64,
}

impl<'rb> BottomUpEngine<'rb> {
    /// Builds an engine; fails if `rb` is not stratified.
    pub fn new(rb: &'rb Rulebase, db: &Database) -> Result<Self> {
        Self::new_with_constants(rb, db, &[])
    }

    /// Like [`BottomUpEngine::new`], but with `extra` constants joined
    /// into the grounding domain — used by incremental maintenance,
    /// which runs reduced rulebases that must ground negation and
    /// hypothetical premises over the full program's `dom(R, DB)`.
    pub fn new_with_constants(rb: &'rb Rulebase, db: &Database, extra: &[Symbol]) -> Result<Self> {
        let ctx = Context::new_with_constants(rb, db, extra)?;
        let eval_strata = evaluation_strata(rb)?;
        let n = eval_strata.num_strata.max(1);
        let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, rule) in rb.iter().enumerate() {
            grouped[eval_strata.stratum(rule.head.pred)].push(i);
        }
        let rules_by_stratum = grouped.into_iter().map(Arc::from).collect();
        let classes = rb
            .iter()
            .map(|rule| {
                let s = eval_strata.stratum(rule.head.pred);
                let mut pure = true;
                let mut hyp_sensitive = false;
                let mut rot = Vec::new();
                for (i, p) in rule.premises.iter().enumerate() {
                    match p {
                        Premise::Atom(a) => {
                            if eval_strata.stratum(a.pred) == s {
                                rot.push(i);
                            }
                        }
                        // Negated predicates sit strictly below the head's
                        // stratum (stratification), so they are closed and
                        // round-invariant here.
                        Premise::Neg(_) => {}
                        Premise::Hyp { goal, .. } => {
                            pure = false;
                            if eval_strata.stratum(goal.pred) == s {
                                hyp_sensitive = true;
                            }
                        }
                    }
                }
                RuleClass {
                    pure,
                    hyp_sensitive,
                    rot,
                }
            })
            .collect();
        Ok(BottomUpEngine {
            ctx,
            models: FxHashMap::default(),
            eval_strata,
            rules_by_stratum,
            classes,
            workers: 1,
            semi_naive: true,
            stats: EngineStats::default(),
            limits: Limits::default(),
            budget: Budget::default(),
            mem_limited: false,
            facts_baseline: 0,
        })
    }

    /// Replaces the resource limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the number of worker threads used for pure-rule firings
    /// within a fixpoint round (clamped to at least 1). The computed
    /// model is identical for every setting; only wall-clock changes.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Builder form of [`BottomUpEngine::set_parallelism`].
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.set_parallelism(workers);
        self
    }

    /// Toggles semi-naive delta-rotation (on by default). With it off,
    /// every round re-fires every rule against the full model — the
    /// pre-optimization naive closure, retained as an equivalence oracle
    /// and benchmark baseline.
    pub fn set_semi_naive(&mut self, on: bool) {
        self.semi_naive = on;
    }

    /// Replaces the evaluation budget (deadline / cancellation token).
    ///
    /// A tripped budget abandons the fixpoint mid-flight; the partial
    /// model of the interrupted database is discarded (its stratum was
    /// never marked closed), so later queries recompute it from scratch
    /// and memoized models stay sound.
    ///
    /// The fact cap of any memory limits bounds growth from this moment;
    /// the goal-set cap bounds the derived-fact count of the model being
    /// closed (absolute — the natural "working set" of this engine).
    pub fn set_budget(&mut self, budget: Budget) {
        self.mem_limited = budget.has_memory_limits();
        self.facts_baseline = self.ctx.fact_footprint();
        self.budget = budget;
    }

    /// Probes the memory caps at a fixpoint-round boundary.
    fn check_memory(&self, derived: usize) -> Result<()> {
        let facts = self
            .ctx
            .fact_footprint()
            .saturating_sub(self.facts_baseline);
        self.budget
            .check_memory(facts, derived as u64, self.ctx.dbs.max_depth() as u64)
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The evaluation context.
    pub fn context(&self) -> &Context<'rb> {
        &self.ctx
    }

    /// The number of strata of the global stratification.
    pub fn num_strata(&self) -> usize {
        self.rules_by_stratum.len()
    }

    /// Counts derived facts whose predicate satisfies `pred_in`, summed
    /// over every memoized model. The magic engine uses this to report
    /// how many demand facts a rewritten query materialized.
    pub fn derived_fact_count(&self, mut pred_in: impl FnMut(Symbol) -> bool) -> u64 {
        self.models
            .values()
            .map(|e| {
                e.derived
                    .predicates()
                    .filter(|&p| pred_in(p))
                    .map(|p| e.derived.count(p) as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// A snapshot of the full perfect model of the base database.
    pub fn model(&mut self) -> Result<Database> {
        let base = self.ctx.base_db;
        let all = self.num_strata();
        self.ensure_model(base, all)?;
        let mut model = self.ctx.dbs.to_database(base);
        model.absorb(&self.models[&base].derived);
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        Ok(model)
    }

    /// Evaluates a query premise against the base database (same free-
    /// variable conventions as the top-down engine).
    pub fn holds(&mut self, query: &Premise) -> Result<bool> {
        let base = self.ctx.base_db;
        let num_vars = query.vars().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut bindings = Bindings::new(num_vars);
        let result = match query {
            Premise::Atom(atom) => {
                self.ensure_for_pred(base, atom.pred)?;
                Ok(self.exists_in_model(base, atom, &mut bindings))
            }
            Premise::Neg(atom) => {
                self.ensure_for_pred(base, atom.pred)?;
                Ok(!self.exists_in_model(base, atom, &mut bindings))
            }
            Premise::Hyp { goal, adds, dels } => {
                // Definition 3: the goal is proved in `(DB ∖ C̄) ∪ B̄`, so
                // constants the query's `add:` atoms introduce belong to
                // that world's domain. Memoized models were closed under
                // the smaller domain (their negation and hypothetical
                // groundings never ranged over the fresh constants), so
                // they are stale the moment the domain grows.
                let fresh = adds
                    .iter()
                    .flat_map(|a| a.args.iter().filter_map(|t| t.as_const()));
                if self.ctx.extend_domain(fresh) {
                    self.models.clear();
                }
                let free = collect_free(goal, adds, dels, &bindings);
                self.exists_hyp(goal, adds, dels, &free, 0, &mut bindings, base)
            }
        };
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        result
    }

    /// Whether `atom` matches anywhere in the (closed) model of `db`.
    fn exists_in_model(&mut self, db: DbId, atom: &Atom, bindings: &mut Bindings) -> bool {
        let empty = Database::new();
        let derived = self.models.get(&db).map_or(&empty, |e| &e.derived);
        let mut c = MatchCounters::default();
        let layers = ModelLayers::new(self.ctx.dbs.view(db), derived, empty_layer());
        let found = layers.exists(Part::Full, atom, bindings, &mut c);
        self.stats.absorb_matches(c);
        found
    }

    /// All tuples of `pattern` in the perfect model of the base database.
    pub fn answers(&mut self, pattern: &Atom) -> Result<Vec<Vec<Symbol>>> {
        let (rows, trip) = self.answers_partial(pattern);
        match trip {
            Some(e) => Err(e),
            None => Ok(rows),
        }
    }

    /// Like [`answers`](Self::answers), but if the budget trips while
    /// closing the model the tuples already derived are returned alongside
    /// the trip error instead of being discarded. The rows are sound
    /// (stratified fixpoints only ever add true facts) but not complete
    /// when the error is `Some`.
    pub fn answers_partial(&mut self, pattern: &Atom) -> (Vec<Vec<Symbol>>, Option<Error>) {
        let base = self.ctx.base_db;
        let trip = self.ensure_for_pred(base, pattern.pred).err();
        let empty = Database::new();
        let derived = self.models.get(&base).map_or(&empty, |e| &e.derived);
        let mut bindings = Bindings::new(pattern.vars().map(|v| v.index() + 1).max().unwrap_or(0));
        let mut out = Vec::new();
        let mut c = MatchCounters::default();
        let layers = ModelLayers::new(self.ctx.dbs.view(base), derived, empty_layer());
        layers.for_each_match(Part::Full, pattern, &mut bindings, &mut c, |b| {
            out.push(
                pattern
                    .args
                    .iter()
                    .map(|t| match t {
                        hdl_base::Term::Const(c) => *c,
                        hdl_base::Term::Var(v) => b.get(*v).expect("bound by match"),
                    })
                    .collect(),
            );
            false
        });
        self.stats.absorb_matches(c);
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        out.sort();
        out.dedup();
        (out, trip)
    }

    /// Whether a ground fact is in the perfect model of `db` (closing only
    /// the strata the fact's predicate needs).
    pub fn proves(&mut self, db: DbId, fact: &GroundAtom) -> Result<bool> {
        self.ensure_for_pred(db, fact.pred)?;
        let found = self.models[&db].derived.contains(fact) || self.ctx.dbs.view(db).contains(fact);
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        Ok(found)
    }

    fn ensure_for_pred(&mut self, db: DbId, pred: Symbol) -> Result<()> {
        let upto = self.eval_strata.stratum(pred) + 1;
        self.ensure_model(db, upto)
    }

    /// Ensures strata `0..upto` of `db`'s model are closed, running the
    /// semi-naive fixpoint per stratum.
    fn ensure_model(&mut self, db: DbId, upto: usize) -> Result<()> {
        let upto = upto.min(self.rules_by_stratum.len());
        let mut entry = match self.models.remove(&db) {
            Some(e) => e,
            None => {
                self.stats.calls += 1;
                if self.models.len() as u64 >= self.limits.max_databases {
                    // Reinsert nothing; report the blowup.
                    return Err(Error::LimitExceeded {
                        what: "databases".into(),
                        limit: self.limits.max_databases,
                    });
                }
                // O(1): the EDB layer stays in the overlay DAG; only
                // facts the rules derive are stored here.
                ModelEntry {
                    upto: 0,
                    derived: Database::new(),
                }
            }
        };
        let mut trajectory: Vec<u64> = Vec::new();
        while entry.upto < upto {
            let stratum = entry.upto;
            let rule_ids = Arc::clone(&self.rules_by_stratum[stratum]);
            // Semi-naive layers: `older` = derived before the previous
            // round (seeded with lower strata), `delta` = the previous
            // round's new facts. Both live outside `entry` while the
            // stratum runs; any error path that keeps the partial model
            // must merge them back first.
            let mut older = std::mem::take(&mut entry.derived);
            let mut delta = Database::new();
            let mut round: u64 = 0;
            loop {
                self.stats.rounds += 1;
                // A trip here drops `entry` (the stratum was never marked
                // closed), so later queries recompute it — memo stays sound.
                if self.mem_limited {
                    self.check_memory(older.len() + delta.len())?;
                }
                hdl_base::failpoint!("bottomup::round");
                let mut fresh: Vec<GroundAtom> = Vec::new();
                let mut impure: Vec<(usize, Option<usize>)> = Vec::new();
                let pure_tasks =
                    self.schedule_round(db, &rule_ids, round, &older, &delta, &mut impure);
                self.run_pure(db, &older, &delta, &pure_tasks, &mut fresh)?;
                for &(rule_idx, rot_j) in &impure {
                    self.fire_impure(rule_idx, rot_j, &older, &delta, db, &mut fresh)?;
                }
                if self.stats.goal_expansions > self.limits.max_expansions {
                    older.absorb(&delta);
                    entry.derived = older;
                    self.models.insert(db, entry);
                    return Err(Error::LimitExceeded {
                        what: "rule firings".into(),
                        limit: self.limits.max_expansions,
                    });
                }
                // Round barrier: facts not seen in any layer become the
                // next delta; the old delta ages into `older`.
                let mut next_delta = Database::new();
                for f in fresh {
                    // Keep the derived layers disjoint from the EDB layer
                    // so the model never enumerates a fact twice.
                    if self.ctx.dbs.view(db).contains(&f)
                        || older.contains(&f)
                        || delta.contains(&f)
                    {
                        continue;
                    }
                    next_delta.insert(f);
                }
                older.absorb(&delta);
                delta = next_delta;
                trajectory.push(delta.len() as u64);
                if delta.is_empty() {
                    break;
                }
                round += 1;
            }
            entry.derived = older;
            entry.upto += 1;
        }
        if !trajectory.is_empty() {
            self.stats.delta_facts_per_round = trajectory;
        }
        self.models.insert(db, entry);
        Ok(())
    }

    /// Builds the round's work list: pure tasks (chunked over their seed
    /// premise's matches for data parallelism) and impure `(rule, rot_j)`
    /// firings for the sequential path.
    fn schedule_round(
        &mut self,
        db: DbId,
        rule_ids: &[usize],
        round: u64,
        older: &Database,
        delta: &Database,
        impure: &mut Vec<(usize, Option<usize>)>,
    ) -> Vec<PureTask> {
        // (rule, rot_j, seed premise + rows) before chunking.
        let mut seeded: Vec<(usize, Option<usize>, Option<Seed>)> = Vec::new();
        let mut counters = MatchCounters::default();
        let layers = ModelLayers::new(self.ctx.dbs.view(db), older, delta);
        for &rule_idx in rule_ids {
            let rule = &self.ctx.rb.rules[rule_idx];
            let class = &self.classes[rule_idx];
            if !self.semi_naive || round == 0 || class.hyp_sensitive {
                if !class.pure {
                    // Hypothetical recursion needs `&mut self`.
                    impure.push((rule_idx, None));
                    continue;
                }
                // Full evaluation, seeded on the first positive premise
                // so its matches can be chunked across workers. A
                // positive premise with no matches kills the rule.
                let seed_idx = rule
                    .premises
                    .iter()
                    .position(|p| matches!(p, Premise::Atom(_)));
                match seed_idx {
                    Some(i) => {
                        let Premise::Atom(atom) = &rule.premises[i] else {
                            unreachable!()
                        };
                        let mut b = Bindings::new(rule.num_vars);
                        let rows = layers.collect_matches(Part::Full, atom, &mut b, &mut counters);
                        if !rows.is_empty() {
                            seeded.push((rule_idx, None, Some((i, rows))));
                        }
                    }
                    None => seeded.push((rule_idx, None, None)),
                }
            } else if !class.rot.is_empty() {
                // Delta rotation: one firing per rotated premise, seeded
                // on that premise's matches against the delta. An empty
                // seed derives nothing — skip it outright.
                for &j in &class.rot {
                    let Premise::Atom(atom) = &rule.premises[j] else {
                        unreachable!("rot positions are positive atoms")
                    };
                    let mut b = Bindings::new(rule.num_vars);
                    let rows = layers.collect_matches(Part::Delta, atom, &mut b, &mut counters);
                    if rows.is_empty() {
                        continue;
                    }
                    if class.pure {
                        seeded.push((rule_idx, Some(j), Some((j, rows))));
                    } else {
                        impure.push((rule_idx, Some(j)));
                    }
                }
            }
        }
        self.stats.absorb_matches(counters);
        // Chunk seed rows so a round dominated by one rule (e.g.
        // transitive closure) still spreads across the pool.
        chunk_tasks(seeded, self.workers)
    }

    /// Runs the round's pure tasks — on scoped worker threads when the
    /// pool and the workload justify it, inline otherwise. Results are
    /// appended to `fresh` in task order, so the outcome is deterministic
    /// for every pool size.
    fn run_pure(
        &mut self,
        db: DbId,
        older: &Database,
        delta: &Database,
        tasks: &[PureTask],
        fresh: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        if tasks.is_empty() {
            return Ok(());
        }
        let weight: usize = tasks
            .iter()
            .map(|t| t.seed.as_ref().map_or(64, |(_, rows)| rows.len()))
            .sum();
        let eligible = self.workers > 1 && tasks.len() > 1;
        let spawn = eligible && weight >= PARALLEL_MIN_DELTA;
        if eligible && !spawn {
            self.stats.parallel_skipped += 1;
        }
        let layers = ModelLayers::new(self.ctx.dbs.view(db), older, delta);
        if spawn {
            self.stats.parallel_rounds += 1;
            let (counters, result) = run_pure_parallel(
                self.workers,
                &self.ctx.rb.rules,
                &self.ctx.plans,
                &self.classes,
                layers,
                &self.ctx.domain,
                "bottomup::fire",
                &self.budget,
                tasks,
                fresh,
            );
            self.stats.absorb_matches(counters);
            return result;
        }
        let mut counters = MatchCounters::default();
        let mut result = Ok(());
        for task in tasks {
            if let Err(e) = fire_pure(
                &self.ctx.rb.rules[task.rule_idx],
                &self.ctx.plans[task.rule_idx],
                &self.classes[task.rule_idx],
                layers,
                task,
                &self.ctx.domain,
                "bottomup::fire",
                &mut self.budget,
                &mut counters,
                fresh,
            ) {
                result = Err(e);
                break;
            }
        }
        self.stats.absorb_matches(counters);
        result
    }

    /// Fires one impure rule (it has hypothetical premises) against the
    /// layered model, collecting new heads. Runs on the caller's thread:
    /// augmenting databases and recursing into their models needs
    /// `&mut self`.
    fn fire_impure(
        &mut self,
        rule_idx: usize,
        rot_j: Option<usize>,
        older: &Database,
        delta: &Database,
        db: DbId,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        hdl_base::failpoint!("bottomup::fire");
        let rb: &'rb Rulebase = self.ctx.rb;
        let rule: &'rb HypRule = &rb.rules[rule_idx];
        let mut bindings = Bindings::new(rule.num_vars);
        self.walk(
            rule,
            rule_idx,
            rot_j,
            0,
            &mut bindings,
            older,
            delta,
            db,
            out,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        rot_j: Option<usize>,
        idx: usize,
        bindings: &mut Bindings,
        older: &Database,
        delta: &Database,
        db: DbId,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        self.budget.check()?;
        if idx == rule.premises.len() {
            // Ground any remaining head variables over the domain
            // (Definition 3's ground substitution).
            let free = bindings.free_vars_of(&rule.head);
            return self.emit_head(rule, &free, 0, bindings, out);
        }
        match &rule.premises[idx] {
            Premise::Atom(atom) => {
                // Provable instances of same-or-lower strata are exactly
                // the layered model slice the rotation assigns to this
                // position. Rows are collected first: the recursive walk
                // needs `&mut self` while the view borrows the store.
                let part = part_for(&self.classes[rule_idx], rot_j, idx);
                let mut c = MatchCounters::default();
                let rows = ModelLayers::new(self.ctx.dbs.view(db), older, delta)
                    .collect_matches(part, atom, bindings, &mut c);
                self.stats.absorb_matches(c);
                for row in rows {
                    for &(v, c) in &row {
                        bindings.set(v, c);
                    }
                    self.walk(
                        rule,
                        rule_idx,
                        rot_j,
                        idx + 1,
                        bindings,
                        older,
                        delta,
                        db,
                        out,
                    )?;
                    for &(v, _) in &row {
                        bindings.unset(v);
                    }
                }
                Ok(())
            }
            Premise::Neg(atom) => {
                let inner = self.ctx.plans[rule_idx].inner_neg_vars[idx].clone();
                let free = bindings.free_vars_of(atom);
                let outer: Vec<Var> = free.into_iter().filter(|v| !inner.contains(v)).collect();
                self.neg_outer(
                    rule, rule_idx, rot_j, idx, atom, &outer, 0, bindings, older, delta, db, out,
                )
            }
            Premise::Hyp { goal, adds, dels } => {
                let free = collect_free(goal, adds, dels, bindings);
                self.hyp_groundings(
                    rule, rule_idx, rot_j, idx, goal, adds, dels, &free, 0, bindings, older, delta,
                    db, out,
                )
            }
        }
    }

    /// Enumerates outer variables of a negated premise; for each outer
    /// assignment the premise holds iff no inner assignment is in the
    /// model (the negated predicate's stratum is strictly lower, hence
    /// closed; matching with inner vars unbound is the ∃-inner check).
    #[allow(clippy::too_many_arguments)]
    fn neg_outer(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        rot_j: Option<usize>,
        idx: usize,
        atom: &'rb Atom,
        outer: &[Var],
        opos: usize,
        bindings: &mut Bindings,
        older: &Database,
        delta: &Database,
        db: DbId,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        self.budget.check()?;
        if opos == outer.len() {
            let mut c = MatchCounters::default();
            let witnessed = ModelLayers::new(self.ctx.dbs.view(db), older, delta).exists(
                Part::Full,
                atom,
                bindings,
                &mut c,
            );
            self.stats.absorb_matches(c);
            if !witnessed {
                self.walk(
                    rule,
                    rule_idx,
                    rot_j,
                    idx + 1,
                    bindings,
                    older,
                    delta,
                    db,
                    out,
                )?;
            }
            return Ok(());
        }
        let v = outer[opos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            self.stats.goal_expansions += 1;
            bindings.set(v, c);
            self.neg_outer(
                rule,
                rule_idx,
                rot_j,
                idx,
                atom,
                outer,
                opos + 1,
                bindings,
                older,
                delta,
                db,
                out,
            )?;
        }
        bindings.unset(v);
        Ok(())
    }

    /// Enumerates groundings of a hypothetical premise and tests each in
    /// the (recursively computed, stratum-bounded) model of the modified
    /// database.
    #[allow(clippy::too_many_arguments)]
    fn hyp_groundings(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        rot_j: Option<usize>,
        idx: usize,
        goal: &'rb Atom,
        adds: &'rb [Atom],
        dels: &'rb [Atom],
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        older: &Database,
        delta: &Database,
        db: DbId,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        if fpos == free.len() {
            let add_ids: Vec<FactId> = adds
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let del_ids: Vec<FactId> = dels
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let db2 = self.ctx.dbs.apply(db, &add_ids, &del_ids);
            let goal_fact = goal.ground(bindings).expect("grounded");
            let holds = if db2 == db {
                // Degenerate hypothetical: every addition already present
                // and every deletion already absent. The goal is tested
                // inside the current fixpoint, where it behaves like a
                // positive premise (monotone — the EDB never changes
                // during a fixpoint, so the degeneracy is round-stable).
                older.contains(&goal_fact)
                    || delta.contains(&goal_fact)
                    || self.ctx.dbs.view(db).contains(&goal_fact)
            } else {
                self.stats.databases_created += 1;
                self.proves(db2, &goal_fact)?
            };
            if holds {
                self.walk(
                    rule,
                    rule_idx,
                    rot_j,
                    idx + 1,
                    bindings,
                    older,
                    delta,
                    db,
                    out,
                )?;
            }
            return Ok(());
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            self.stats.goal_expansions += 1;
            bindings.set(v, c);
            self.hyp_groundings(
                rule,
                rule_idx,
                rot_j,
                idx,
                goal,
                adds,
                dels,
                free,
                fpos + 1,
                bindings,
                older,
                delta,
                db,
                out,
            )?;
        }
        bindings.unset(v);
        Ok(())
    }

    fn emit_head(
        &mut self,
        rule: &'rb HypRule,
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        out: &mut Vec<GroundAtom>,
    ) -> Result<()> {
        if fpos == free.len() {
            out.push(rule.head.ground(bindings).expect("head grounded"));
            return Ok(());
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            self.stats.goal_expansions += 1;
            bindings.set(v, c);
            self.emit_head(rule, free, fpos + 1, bindings, out)?;
        }
        bindings.unset(v);
        Ok(())
    }

    /// `∃`-grounding of a top-level hypothetical query.
    #[allow(clippy::too_many_arguments)]
    fn exists_hyp(
        &mut self,
        goal: &Atom,
        adds: &[Atom],
        dels: &[Atom],
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        db: DbId,
    ) -> Result<bool> {
        if fpos == free.len() {
            let add_ids: Vec<FactId> = adds
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let del_ids: Vec<FactId> = dels
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let db2 = self.ctx.dbs.apply(db, &add_ids, &del_ids);
            let goal_fact = goal.ground(bindings).expect("grounded");
            return self.proves(db2, &goal_fact);
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.exists_hyp(goal, adds, dels, free, fpos + 1, bindings, db)? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }
}
