//! Goal-directed (top-down) hypothetical inference.
//!
//! This engine implements Definition 3 plus negation-as-failure directly:
//!
//! 1. `R, DB ⊢ A` if `A ∈ DB`;
//! 2. `R, DB ⊢ A[add: B̄, del: C̄]` if `R, (DB ∖ C̄) ∪ B̄ ⊢ A` (deletions
//!    apply first, so a fact named in both lists ends up present);
//! 3. `R, DB ⊢ A` if some rule instance `A ← φ₁,…,φₖ` (ground substitution
//!    over `dom(R, DB)`) has all premises provable;
//! 4. `R, DB ⊢ ~A` if `R, DB ⊬ A` (requires stratified negation).
//!
//! Ground goals are pairs `(fact, database)`; the database component moves
//! through the lattice as rule 2 fires. Because function-free proofs never
//! need to repeat a `(goal, db)` pair along a branch, the search fails any
//! branch that revisits an in-progress pair. Results are memoized with the
//! standard tabling refinement: successes always, failures only when the
//! failed search never touched an in-progress ancestor *above* the goal
//! (untainted failures), which keeps the memo sound in cyclic programs.
//!
//! The search recurses on the host stack, so the required stack is
//! proportional to proof depth. [`Session`](crate::session::Session) and
//! the `hdl-service` worker pool already run every evaluation on a
//! thread with an enlarged stack
//! ([`call_with_deep_stack`](crate::stack::call_with_deep_stack)); only
//! code driving this engine directly on a shallow thread needs to do the
//! same for programs with proofs thousands of steps deep.

use crate::ast::{HypRule, Premise, Rulebase};
use crate::engine::budget::Budget;
use crate::engine::context::Context;
use crate::engine::proof::{ProofChild, ProofNode};
use crate::engine::stats::{EngineStats, Limits};
use hdl_base::{Atom, Bindings, Database, DbId, Error, FactId, FxHashMap, Result, Symbol, Var};

/// Sentinel: no in-progress ancestor was hit.
const NO_CUT: u64 = u64::MAX;

/// How a proven goal was established (for proof reconstruction).
#[derive(Clone, Debug)]
enum ProofStep {
    /// Inference rule 1: present in the database.
    Membership,
    /// Inference rule 3: a rule instance, with the leaf-time bindings.
    Rule {
        rule_idx: usize,
        bindings: Vec<Option<Symbol>>,
    },
}

/// The top-down engine, bound to one rulebase and one base database.
pub struct TopDownEngine<'rb> {
    ctx: Context<'rb>,
    memo: FxHashMap<(FactId, DbId), bool>,
    in_progress: FxHashMap<(FactId, DbId), u64>,
    proof_steps: FxHashMap<(FactId, DbId), ProofStep>,
    /// Set by `walk` when a rule body closes; consumed by `prove`.
    last_success: Option<(usize, Vec<Option<Symbol>>)>,
    stats: EngineStats,
    limits: Limits,
    budget: Budget,
    /// Cached `budget.has_memory_limits()` — keeps the hot path to one
    /// branch when no memory caps are set.
    mem_limited: bool,
    /// Store sizes when the budget was installed; memory caps bound
    /// growth past these, not absolute size (engines are reused).
    facts_baseline: u64,
    goals_baseline: u64,
}

impl<'rb> TopDownEngine<'rb> {
    /// Builds an engine; fails if `rb` is not stratified.
    pub fn new(rb: &'rb Rulebase, db: &Database) -> Result<Self> {
        Ok(TopDownEngine {
            ctx: Context::new(rb, db)?,
            memo: FxHashMap::default(),
            in_progress: FxHashMap::default(),
            proof_steps: FxHashMap::default(),
            last_success: None,
            stats: EngineStats::default(),
            limits: Limits::default(),
            budget: Budget::default(),
            mem_limited: false,
            facts_baseline: 0,
            goals_baseline: 0,
        })
    }

    /// Replaces the resource limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Replaces the evaluation budget (deadline / cancellation token).
    ///
    /// A tripped budget unwinds the search with
    /// [`Error::Cancelled`] / [`Error::DeadlineExceeded`] without
    /// recording verdicts for in-flight goals, so the engine stays
    /// usable — and its memo table correct — for later queries.
    ///
    /// Memory limits carried by the budget bound *growth* from this
    /// moment: the current fact-store and memo sizes become the baseline
    /// the caps are measured against.
    pub fn set_budget(&mut self, budget: Budget) {
        self.mem_limited = budget.has_memory_limits();
        self.facts_baseline = self.ctx.fact_footprint();
        self.goals_baseline = (self.memo.len() + self.in_progress.len()) as u64;
        self.budget = budget;
    }

    /// Extends `dom(R, DB)` with constants a query-level `add:` premise
    /// introduces (Definition 3: the goal is proved in `(DB ∖ C̄) ∪ B̄`,
    /// so `B̄`'s constants are domain members there). Memoized verdicts
    /// and recorded proof steps were computed under the smaller domain —
    /// a negation judged true because no witness existed may gain one —
    /// so they are dropped whenever the domain grows.
    fn note_overlay_constants(&mut self, adds: &[Atom]) {
        let fresh = adds
            .iter()
            .flat_map(|a| a.args.iter().filter_map(|t| t.as_const()));
        if self.ctx.extend_domain(fresh) {
            self.memo.clear();
            self.proof_steps.clear();
            self.last_success = None;
        }
    }

    /// Probes the memory caps against growth since the budget was set.
    fn check_memory(&self) -> Result<()> {
        let facts = self
            .ctx
            .fact_footprint()
            .saturating_sub(self.facts_baseline);
        let goals =
            ((self.memo.len() + self.in_progress.len()) as u64).saturating_sub(self.goals_baseline);
        self.budget
            .check_memory(facts, goals, self.ctx.dbs.max_depth() as u64)
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The evaluation context (domain, lattice, stratification).
    pub fn context(&self) -> &Context<'rb> {
        &self.ctx
    }

    /// Evaluates a query premise against the base database.
    ///
    /// Free variables are quantified existentially over the domain
    /// (`∃c grad(s)[add: take(s,c)]`, Example 2) — except in a negated
    /// query, where they are quantified inside the negation (`~select(Y)`
    /// reads "no `Y` is selectable").
    pub fn holds(&mut self, query: &Premise) -> Result<bool> {
        let base = self.ctx.base_db;
        self.holds_in(query, base)
    }

    /// Like [`holds`](Self::holds) against an explicit database of the
    /// lattice.
    pub fn holds_in(&mut self, query: &Premise, db: DbId) -> Result<bool> {
        let num_vars = query.vars().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut bindings = Bindings::new(num_vars);
        let result = match query {
            Premise::Atom(atom) => {
                let free = bindings.free_vars_of(atom);
                self.exists_proof(atom, &free, &mut bindings, db, 0)
            }
            Premise::Neg(atom) => {
                let free = bindings.free_vars_of(atom);
                self.exists_proof(atom, &free, &mut bindings, db, 0)
                    .map(|found| !found)
            }
            Premise::Hyp { goal, adds, dels } => {
                self.note_overlay_constants(adds);
                let mut free: Vec<Var> = Vec::new();
                for v in goal
                    .vars()
                    .chain(adds.iter().flat_map(|a| a.vars()))
                    .chain(dels.iter().flat_map(|a| a.vars()))
                {
                    if bindings.get(v).is_none() && !free.contains(&v) {
                        free.push(v);
                    }
                }
                self.exists_hyp_proof(goal, adds, dels, &free, 0, &mut bindings, db, 0)
            }
        };
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        result
    }

    /// Produces a proof tree for `query`, if it is provable.
    ///
    /// For queries with free variables the proof covers the first witness
    /// found (domain order). Negated queries have no proof object — their
    /// evidence is an absence — so they return `Ok(None)`.
    pub fn explain(&mut self, query: &Premise) -> Result<Option<ProofNode>> {
        let base = self.ctx.base_db;
        let num_vars = query.vars().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut bindings = Bindings::new(num_vars);
        match query {
            Premise::Neg(_) => Ok(None),
            Premise::Atom(atom) => {
                let free = bindings.free_vars_of(atom);
                let mut found: Option<(FactId, DbId)> = None;
                self.for_each_grounding(&free, 0, &mut bindings, &mut |eng, b| {
                    let fact = atom.ground(b).expect("grounded");
                    let fid = eng.ctx.fact_id(fact);
                    let mut cut = NO_CUT;
                    if eng.prove(fid, base, 0, &mut cut)? {
                        found = Some((fid, base));
                        return Ok(true);
                    }
                    Ok(false)
                })?;
                let node = found.and_then(|(f, d)| self.reconstruct(f, d));
                self.stats.record_overlay(self.ctx.dbs.overlay_stats());
                Ok(node)
            }
            Premise::Hyp { goal, adds, dels } => {
                self.note_overlay_constants(adds);
                let mut free: Vec<Var> = Vec::new();
                for v in goal
                    .vars()
                    .chain(adds.iter().flat_map(|a| a.vars()))
                    .chain(dels.iter().flat_map(|a| a.vars()))
                {
                    if bindings.get(v).is_none() && !free.contains(&v) {
                        free.push(v);
                    }
                }
                let mut found: Option<(FactId, DbId)> = None;
                self.for_each_grounding(&free, 0, &mut bindings, &mut |eng, b| {
                    let add_ids: Vec<FactId> = adds
                        .iter()
                        .map(|a| {
                            let f = a.ground(b).expect("grounded");
                            eng.ctx.fact_id(f)
                        })
                        .collect();
                    let del_ids: Vec<FactId> = dels
                        .iter()
                        .map(|a| {
                            let f = a.ground(b).expect("grounded");
                            eng.ctx.fact_id(f)
                        })
                        .collect();
                    let db2 = eng.apply_db(base, &add_ids, &del_ids)?;
                    let gfact = goal.ground(b).expect("grounded");
                    let gid = eng.ctx.fact_id(gfact);
                    let mut cut = NO_CUT;
                    if eng.prove(gid, db2, 0, &mut cut)? {
                        found = Some((gid, db2));
                        return Ok(true);
                    }
                    Ok(false)
                })?;
                let node = found.and_then(|(f, d)| self.reconstruct(f, d));
                self.stats.record_overlay(self.ctx.dbs.overlay_stats());
                Ok(node)
            }
        }
    }

    /// Rebuilds the proof tree for a proven `(fact, db)` goal from the
    /// recorded steps.
    fn reconstruct(&mut self, fact: FactId, db: DbId) -> Option<ProofNode> {
        let fact_atom = self.ctx.dbs.facts().fact(fact).clone();
        let Some(step) = self.proof_steps.get(&(fact, db)).cloned() else {
            // EDB premises are matched against the database directly and
            // never pass through `prove`, so they carry no recorded step.
            if self.ctx.db_contains(db, fact) {
                return Some(ProofNode::Membership {
                    fact: fact_atom,
                    db,
                });
            }
            return None;
        };
        match step {
            ProofStep::Membership => Some(ProofNode::Membership {
                fact: fact_atom,
                db,
            }),
            ProofStep::Rule { rule_idx, bindings } => {
                let rb: &'rb Rulebase = self.ctx.rb;
                let rule: &'rb HypRule = &rb.rules[rule_idx];
                let subst = |atom: &Atom| -> Atom {
                    Atom::new(
                        atom.pred,
                        atom.args
                            .iter()
                            .map(|t| match t {
                                hdl_base::Term::Var(v) => {
                                    bindings[v.index()].map_or(*t, hdl_base::Term::Const)
                                }
                                c => *c,
                            })
                            .collect(),
                    )
                };
                let mut children = Vec::with_capacity(rule.premises.len());
                for premise in &rule.premises {
                    match premise {
                        Premise::Atom(a) => {
                            let inst = subst(a).to_ground().expect("positive premise ground");
                            let fid = self.ctx.fact_id(inst);
                            let sub = self.reconstruct(fid, db)?;
                            children.push(ProofChild::Positive(Box::new(sub)));
                        }
                        Premise::Neg(a) => {
                            children.push(ProofChild::NegationHolds { atom: subst(a), db });
                        }
                        Premise::Hyp { goal, adds, dels } => {
                            let ground_adds: Vec<hdl_base::GroundAtom> = adds
                                .iter()
                                .map(|a| subst(a).to_ground().expect("add atom ground"))
                                .collect();
                            let ground_dels: Vec<hdl_base::GroundAtom> = dels
                                .iter()
                                .map(|a| subst(a).to_ground().expect("del atom ground"))
                                .collect();
                            let add_ids: Vec<FactId> = ground_adds
                                .iter()
                                .map(|g| self.ctx.fact_id(g.clone()))
                                .collect();
                            let del_ids: Vec<FactId> = ground_dels
                                .iter()
                                .map(|g| self.ctx.fact_id(g.clone()))
                                .collect();
                            let db2 = self.ctx.dbs.apply(db, &add_ids, &del_ids);
                            let gfact = subst(goal).to_ground().expect("hyp goal ground");
                            let gid = self.ctx.fact_id(gfact);
                            let sub = self.reconstruct(gid, db2)?;
                            children.push(ProofChild::Hypothetical {
                                adds: ground_adds,
                                dels: ground_dels,
                                db: db2,
                                sub: Box::new(sub),
                            });
                        }
                    }
                }
                Some(ProofNode::Derived {
                    fact: fact_atom,
                    db,
                    rule_idx,
                    children,
                })
            }
        }
    }

    /// All domain tuples `x̄` such that `pattern(x̄)` is provable from the
    /// base database, sorted.
    pub fn answers(&mut self, pattern: &Atom) -> Result<Vec<Vec<Symbol>>> {
        let (rows, trip) = self.answers_partial(pattern);
        match trip {
            Some(e) => Err(e),
            None => Ok(rows),
        }
    }

    /// Like [`answers`](Self::answers), but if the budget trips mid-scan
    /// the tuples proven so far are returned alongside the trip error
    /// instead of being discarded — callers can degrade to a partial
    /// answer set. The rows are sound (each was fully proven) but not
    /// complete when the error is `Some`.
    pub fn answers_partial(&mut self, pattern: &Atom) -> (Vec<Vec<Symbol>>, Option<Error>) {
        let num_vars = pattern.vars().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut bindings = Bindings::new(num_vars);
        let free = bindings.free_vars_of(pattern);
        let base = self.ctx.base_db;
        let mut out = Vec::new();
        let walked = self.for_each_grounding(&free, 0, &mut bindings, &mut |eng, b| {
            let fact = pattern.ground(b).expect("grounded");
            let fid = eng.ctx.fact_id(fact);
            let mut cut = NO_CUT;
            if eng.prove(fid, base, 0, &mut cut)? {
                out.push(
                    pattern
                        .args
                        .iter()
                        .map(|t| match t {
                            hdl_base::Term::Const(c) => *c,
                            hdl_base::Term::Var(v) => b.get(*v).expect("bound"),
                        })
                        .collect(),
                );
            }
            Ok(false)
        });
        self.stats.record_overlay(self.ctx.dbs.overlay_stats());
        out.sort();
        out.dedup();
        (out, walked.err())
    }

    /// Proves one ground goal `(fact, db)`.
    ///
    /// Returns the verdict; `cut` is lowered to the depth of the shallowest
    /// in-progress ancestor this (failing) search touched.
    fn prove(&mut self, goal: FactId, db: DbId, depth: u64, cut: &mut u64) -> Result<bool> {
        self.budget.check()?;
        if self.mem_limited {
            self.check_memory()?;
        }
        hdl_base::failpoint!("topdown::prove");
        self.stats.calls += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        let key = (goal, db);
        if let Some(&r) = self.memo.get(&key) {
            self.stats.memo_hits += 1;
            return Ok(r);
        }
        // Inference rule 1: database membership.
        if self.ctx.db_contains(db, goal) {
            self.memo.insert(key, true);
            self.proof_steps.entry(key).or_insert(ProofStep::Membership);
            return Ok(true);
        }
        if let Some(&d0) = self.in_progress.get(&key) {
            *cut = (*cut).min(d0);
            return Ok(false);
        }

        self.stats.goal_expansions += 1;
        if self.stats.goal_expansions > self.limits.max_expansions {
            return Err(Error::LimitExceeded {
                what: "goal expansions".into(),
                limit: self.limits.max_expansions,
            });
        }

        self.in_progress.insert(key, depth);
        let result = self.prove_by_rules(goal, db, depth);
        self.in_progress.remove(&key);

        match result {
            Ok((true, _)) => {
                self.memo.insert(key, true);
                if let Some((rule_idx, bindings)) = self.last_success.take() {
                    self.proof_steps
                        .entry(key)
                        .or_insert(ProofStep::Rule { rule_idx, bindings });
                }
                Ok(true)
            }
            Ok((false, my_cut)) => {
                if my_cut >= depth {
                    // All cycles were internal to this goal's search: the
                    // failure is definitive.
                    self.memo.insert(key, false);
                } else {
                    *cut = (*cut).min(my_cut);
                }
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Inference rule 3: try every defining rule of the goal's predicate.
    fn prove_by_rules(&mut self, goal: FactId, db: DbId, depth: u64) -> Result<(bool, u64)> {
        let rb: &'rb Rulebase = self.ctx.rb;
        let pred = self.ctx.dbs.facts().fact(goal).pred;
        let Some(rule_ids) = self.ctx.defs.get(&pred) else {
            return Ok((false, NO_CUT));
        };
        // O(1) shared handle — the group itself is never copied, even
        // though rule bodies below re-borrow `self` mutably.
        let rule_ids = std::sync::Arc::clone(rule_ids);
        let mut my_cut = NO_CUT;
        for &rule_idx in rule_ids.iter() {
            let rule: &'rb HypRule = &rb.rules[rule_idx];
            let mut bindings = Bindings::new(rule.num_vars);
            let trail = {
                let fact = self.ctx.dbs.facts().fact(goal).clone();
                bindings.match_atom(&rule.head, &fact)
            };
            let Some(trail) = trail else { continue };
            // Definition 3: substitutions range over dom(R, DB); a goal
            // mentioning foreign constants cannot instantiate a rule.
            if trail
                .iter()
                .any(|&v| !self.ctx.in_domain(bindings.get(v).expect("bound")))
            {
                continue;
            }
            if self.walk(rule, rule_idx, 0, &mut bindings, db, depth, &mut my_cut)? {
                return Ok((true, NO_CUT));
            }
        }
        Ok((false, my_cut))
    }

    /// Proves premises `idx..` of `rule` under `bindings`; returns whether
    /// a full match of the remaining premises was found.
    #[allow(clippy::too_many_arguments)]
    fn walk(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        bindings: &mut Bindings,
        db: DbId,
        depth: u64,
        cut: &mut u64,
    ) -> Result<bool> {
        if idx == rule.premises.len() {
            // Body closed: remember the witnessing instance for proofs.
            self.last_success = Some((rule_idx, bindings.snapshot()));
            return Ok(true);
        }
        match &rule.premises[idx] {
            Premise::Atom(atom) => {
                if !self.ctx.has_rules(atom.pred) {
                    // Pure EDB predicate: drive bindings from stored facts.
                    return self
                        .walk_edb_matches(rule, rule_idx, idx, atom, bindings, db, depth, cut);
                }
                let free = bindings.free_vars_of(atom);
                self.walk_groundings(
                    rule, rule_idx, idx, atom, &free, 0, bindings, db, depth, cut,
                )
            }
            Premise::Neg(atom) => {
                let inner = self.ctx.plans[rule_idx].inner_neg_vars[idx].clone();
                let free = bindings.free_vars_of(atom);
                let outer: Vec<Var> = free.into_iter().filter(|v| !inner.contains(v)).collect();
                let mut found = false;
                self.for_each_grounding(&outer, 0, bindings, &mut |eng, b| {
                    // ¬∃ inner-assignment with a proof; stratification
                    // keeps these sub-searches untainted, so the verdict
                    // is definitive.
                    let exists = eng.exists_proof(atom, &inner, b, db, depth + 1)?;
                    if !exists && eng.walk(rule, rule_idx, idx + 1, b, db, depth, cut)? {
                        found = true;
                        return Ok(true);
                    }
                    Ok(false)
                })?;
                Ok(found)
            }
            Premise::Hyp { goal, adds, dels } => {
                let mut free: Vec<Var> = Vec::new();
                for v in goal
                    .vars()
                    .chain(adds.iter().flat_map(|a| a.vars()))
                    .chain(dels.iter().flat_map(|a| a.vars()))
                {
                    if bindings.get(v).is_none() && !free.contains(&v) {
                        free.push(v);
                    }
                }
                let mut found = false;
                self.for_each_grounding(&free, 0, bindings, &mut |eng, b| {
                    let add_ids: Vec<FactId> = adds
                        .iter()
                        .map(|a| {
                            let f = a.ground(b).expect("add atom grounded");
                            eng.ctx.fact_id(f)
                        })
                        .collect();
                    let del_ids: Vec<FactId> = dels
                        .iter()
                        .map(|a| {
                            let f = a.ground(b).expect("del atom grounded");
                            eng.ctx.fact_id(f)
                        })
                        .collect();
                    let db2 = eng.apply_db(db, &add_ids, &del_ids)?;
                    let gfact = goal.ground(b).expect("goal grounded");
                    let gid = eng.ctx.fact_id(gfact);
                    if eng.prove(gid, db2, depth + 1, cut)? {
                        let ok = eng.walk(rule, rule_idx, idx + 1, b, db, depth, cut)?;
                        if ok {
                            found = true;
                            return Ok(true);
                        }
                    }
                    Ok(false)
                })?;
                Ok(found)
            }
        }
    }

    /// Walks an EDB premise by matching against the database's stored
    /// facts for that predicate.
    #[allow(clippy::too_many_arguments)]
    fn walk_edb_matches(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        atom: &'rb Atom,
        bindings: &mut Bindings,
        db: DbId,
        depth: u64,
        cut: &mut u64,
    ) -> Result<bool> {
        // Candidates come straight off the overlay view: the flat root's
        // shared index plus this database's own additions. Collected so
        // the recursive walk below can re-borrow `self`.
        let candidates: Vec<FactId> = self.ctx.dbs.view(db).facts_of(atom.pred).collect();
        for fid in candidates {
            let trail = {
                let fact = self.ctx.dbs.facts().fact(fid);
                bindings.match_atom(atom, fact)
            };
            if let Some(trail) = trail {
                let ok = self.walk(rule, rule_idx, idx + 1, bindings, db, depth, cut)?;
                bindings.undo(&trail);
                if ok {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Walks an IDB positive premise by enumerating groundings of its free
    /// variables and proving each.
    #[allow(clippy::too_many_arguments)]
    fn walk_groundings(
        &mut self,
        rule: &'rb HypRule,
        rule_idx: usize,
        idx: usize,
        atom: &'rb Atom,
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        db: DbId,
        depth: u64,
        cut: &mut u64,
    ) -> Result<bool> {
        if fpos == free.len() {
            let fact = atom.ground(bindings).expect("grounded");
            let fid = self.ctx.fact_id(fact);
            if self.prove(fid, db, depth + 1, cut)? {
                return self.walk(rule, rule_idx, idx + 1, bindings, db, depth, cut);
            }
            return Ok(false);
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.walk_groundings(
                rule,
                rule_idx,
                idx,
                atom,
                free,
                fpos + 1,
                bindings,
                db,
                depth,
                cut,
            )? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }

    /// `∃` assignment of `vars` over the domain making `atom` provable.
    fn exists_proof(
        &mut self,
        atom: &Atom,
        vars: &[Var],
        bindings: &mut Bindings,
        db: DbId,
        depth: u64,
    ) -> Result<bool> {
        let mut found = false;
        self.for_each_grounding(vars, 0, bindings, &mut |eng, b| {
            let fact = atom.ground(b).expect("grounded");
            let fid = eng.ctx.fact_id(fact);
            let mut cut = NO_CUT;
            let ok = eng.prove(fid, db, depth, &mut cut)?;
            debug_assert_eq!(
                cut, NO_CUT,
                "stratification must keep negation sub-searches untainted"
            );
            if ok {
                found = true;
            }
            Ok(found)
        })?;
        Ok(found)
    }

    /// `∃` grounding of a hypothetical query (used by `holds`).
    #[allow(clippy::too_many_arguments)]
    fn exists_hyp_proof(
        &mut self,
        goal: &Atom,
        adds: &[Atom],
        dels: &[Atom],
        free: &[Var],
        fpos: usize,
        bindings: &mut Bindings,
        db: DbId,
        depth: u64,
    ) -> Result<bool> {
        if fpos == free.len() {
            let add_ids: Vec<FactId> = adds
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let del_ids: Vec<FactId> = dels
                .iter()
                .map(|a| {
                    let f = a.ground(bindings).expect("grounded");
                    self.ctx.fact_id(f)
                })
                .collect();
            let db2 = self.apply_db(db, &add_ids, &del_ids)?;
            let gfact = goal.ground(bindings).expect("grounded");
            let gid = self.ctx.fact_id(gfact);
            let mut cut = NO_CUT;
            return self.prove(gid, db2, depth, &mut cut);
        }
        let v = free[fpos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.exists_hyp_proof(goal, adds, dels, free, fpos + 1, bindings, db, depth)? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }

    /// Enumerates groundings of `vars` over the domain, calling `f` until
    /// it returns `Ok(true)`.
    fn for_each_grounding(
        &mut self,
        vars: &[Var],
        pos: usize,
        bindings: &mut Bindings,
        f: &mut impl FnMut(&mut Self, &mut Bindings) -> Result<bool>,
    ) -> Result<bool> {
        if pos == vars.len() {
            return f(self, bindings);
        }
        let v = vars[pos];
        for i in 0..self.ctx.domain.len() {
            let c = self.ctx.domain[i];
            bindings.set(v, c);
            if self.for_each_grounding(vars, pos + 1, bindings, f)? {
                bindings.unset(v);
                return Ok(true);
            }
        }
        bindings.unset(v);
        Ok(false)
    }

    fn apply_db(&mut self, db: DbId, adds: &[FactId], dels: &[FactId]) -> Result<DbId> {
        let before = self.ctx.dbs.len();
        let db2 = self.ctx.dbs.apply(db, adds, dels);
        if self.ctx.dbs.len() > before {
            self.stats.databases_created += 1;
            if self.stats.databases_created > self.limits.max_databases {
                return Err(Error::LimitExceeded {
                    what: "databases".into(),
                    limit: self.limits.max_databases,
                });
            }
        }
        Ok(db2)
    }
}
