//! Instrumentation counters shared by the evaluation engines.
//!
//! The counters make the paper's complexity claims *measurable*: experiment
//! E7 checks goal-sequence lengths against the Theorem 3 bound
//! `O(n^{2kᵢk₀})`, and E9 plots how work grows with the number of strata.

use hdl_base::OverlayStats;

/// Work counters for one engine run.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Goals expanded (top-down) or rule firings (bottom-up).
    pub goal_expansions: u64,
    /// Distinct databases interned in the database lattice.
    pub databases_created: u64,
    /// Memo-table hits.
    pub memo_hits: u64,
    /// Recursive model computations (bottom-up) / proof calls (top-down).
    pub calls: u64,
    /// Maximum recursion depth observed.
    pub max_depth: u64,
    /// Fixpoint rounds (bottom-up only).
    pub rounds: u64,
    /// Storage counters of the overlay DAG backing the database lattice —
    /// a snapshot of [`hdl_base::DbStore::overlay_stats`] taken when the
    /// engine finished its last query. `overlay.delta_facts` versus
    /// `overlay.materialized_facts` measures how much sharing the
    /// parent+delta representation bought over full materialization.
    pub overlay: OverlayStats,
}

impl EngineStats {
    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = EngineStats::default();
    }

    /// Records a snapshot of the overlay DAG's storage counters.
    pub fn record_overlay(&mut self, o: OverlayStats) {
        self.overlay = o;
    }
}

/// Resource limits guarding against runaway searches.
///
/// The paper's language is `Σₖᴾ`-complete, so worst-case blowups are
/// inherent; limits turn them into [`hdl_base::Error::LimitExceeded`]
/// instead of hangs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum goal expansions / rule firings per query.
    pub max_expansions: u64,
    /// Maximum distinct databases in the lattice per query.
    pub max_databases: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_expansions: 50_000_000,
            max_databases: 1_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_counters() {
        let mut s = EngineStats {
            goal_expansions: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, EngineStats::default());
    }

    #[test]
    fn default_limits_are_positive() {
        let l = Limits::default();
        assert!(l.max_expansions > 0);
        assert!(l.max_databases > 0);
    }
}
