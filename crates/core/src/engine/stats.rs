//! Instrumentation counters shared by the evaluation engines.
//!
//! The counters make the paper's complexity claims *measurable*: experiment
//! E7 checks goal-sequence lengths against the Theorem 3 bound
//! `O(n^{2kᵢk₀})`, and E9 plots how work grows with the number of strata.

use hdl_base::{MatchCounters, OverlayStats};

/// Work counters for one engine run.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Premise-match attempts: every candidate fact tested against a rule
    /// premise (successful or not), plus every domain-enumeration step
    /// while grounding hypothetical premises. Top-down engines count one
    /// per goal expanded. This is the unit [`Limits::max_expansions`]
    /// bounds; see DESIGN.md §3.11 for the accounting change.
    pub goal_expansions: u64,
    /// Distinct databases interned in the database lattice.
    pub databases_created: u64,
    /// Memo-table hits.
    pub memo_hits: u64,
    /// Recursive model computations (bottom-up) / proof calls (top-down).
    pub calls: u64,
    /// Maximum recursion depth observed.
    pub max_depth: u64,
    /// Fixpoint rounds (bottom-up only).
    pub rounds: u64,
    /// Facts newly derived in each fixpoint round of the *last* model
    /// computed (bottom-up only) — the semi-naive delta trajectory.
    pub delta_facts_per_round: Vec<u64>,
    /// Premise matches answered via an argument-index hash probe instead
    /// of a relation scan.
    pub index_probes: u64,
    /// Index probes that found at least one candidate.
    pub index_hits: u64,
    /// Fixpoint rounds whose pure-rule firings ran on worker threads.
    pub parallel_rounds: u64,
    /// Fixpoint rounds that were eligible for worker threads but ran
    /// inline because the round's delta was narrower than
    /// [`crate::engine::matching::PARALLEL_MIN_DELTA`] — rule-level
    /// splitting loses to scope/merge overhead on narrow deltas.
    pub parallel_skipped: u64,
    /// Magic/guard rules emitted by the demand rewrite for the last
    /// query (magic engine only).
    pub magic_rules: u64,
    /// Facts of invented magic predicates derived while answering,
    /// demand seeds included (magic engine only).
    pub demand_facts: u64,
    /// Negation strata of the rewritten program for the last query
    /// (magic engine only).
    pub adorned_strata: u64,
    /// Predicates the demand rewrite left unrestricted (evaluated via
    /// their original rules) because no sound bound adornment exists —
    /// plus, on a whole-query fallback, every rulebase predicate.
    pub unbound_fallbacks: u64,
    /// Storage counters of the overlay DAG backing the database lattice —
    /// a snapshot of [`hdl_base::DbStore::overlay_stats`] taken when the
    /// engine finished its last query. `overlay.delta_facts` versus
    /// `overlay.materialized_facts` measures how much sharing the
    /// parent+delta representation bought over full materialization.
    pub overlay: OverlayStats,
}

impl EngineStats {
    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = EngineStats::default();
    }

    /// Records a snapshot of the overlay DAG's storage counters.
    pub fn record_overlay(&mut self, o: OverlayStats) {
        self.overlay = o;
    }

    /// Folds one batch of premise-match work into the counters:
    /// `attempts` lands in [`EngineStats::goal_expansions`], probe
    /// statistics in the index counters.
    pub fn absorb_matches(&mut self, c: MatchCounters) {
        self.goal_expansions += c.attempts;
        self.index_probes += c.probes;
        self.index_hits += c.hits;
    }

    /// Folds a delegate engine run into these counters — used by the
    /// magic engine, which answers each query through a fresh inner
    /// semi-naive engine. Monotone counters sum, `max_depth` maxes, and
    /// the per-round/overlay snapshots are replaced by the inner run's.
    pub fn merge_run(&mut self, other: &EngineStats) {
        self.goal_expansions += other.goal_expansions;
        self.databases_created += other.databases_created;
        self.memo_hits += other.memo_hits;
        self.calls += other.calls;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.rounds += other.rounds;
        self.delta_facts_per_round = other.delta_facts_per_round.clone();
        self.index_probes += other.index_probes;
        self.index_hits += other.index_hits;
        self.parallel_rounds += other.parallel_rounds;
        self.parallel_skipped += other.parallel_skipped;
        self.magic_rules += other.magic_rules;
        self.demand_facts += other.demand_facts;
        self.adorned_strata = other.adorned_strata.max(self.adorned_strata);
        self.unbound_fallbacks += other.unbound_fallbacks;
        self.overlay = other.overlay;
    }

    /// One-line JSON object of the counters (for `:stats --json` and
    /// the network protocol's `stats` op). Keys are stable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(384);
        let _ = write!(
            out,
            "{{\"goal_expansions\":{},\"databases_created\":{},\"memo_hits\":{},\"calls\":{},\
             \"max_depth\":{},\"rounds\":{},\"parallel_rounds\":{},\"parallel_skipped\":{},\
             \"magic_rules\":{},\"demand_facts\":{},\"adorned_strata\":{},\
             \"unbound_fallbacks\":{},\"index_probes\":{},\
             \"index_hits\":{},\"delta_facts_per_round\":[",
            self.goal_expansions,
            self.databases_created,
            self.memo_hits,
            self.calls,
            self.max_depth,
            self.rounds,
            self.parallel_rounds,
            self.parallel_skipped,
            self.magic_rules,
            self.demand_facts,
            self.adorned_strata,
            self.unbound_fallbacks,
            self.index_probes,
            self.index_hits,
        );
        for (i, d) in self.delta_facts_per_round.iter().enumerate() {
            let _ = write!(out, "{}{d}", if i > 0 { "," } else { "" });
        }
        let _ = write!(
            out,
            "],\"overlay_nodes\":{},\"overlay_delta_facts\":{},\"overlay_materialized_facts\":{}}}",
            self.overlay.nodes, self.overlay.delta_facts, self.overlay.materialized_facts
        );
        out
    }
}

/// Resource limits guarding against runaway searches.
///
/// The paper's language is `Σₖᴾ`-complete, so worst-case blowups are
/// inherent; limits turn them into [`hdl_base::Error::LimitExceeded`]
/// instead of hangs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum goal expansions (top-down) / premise-match attempts
    /// (bottom-up) per query.
    pub max_expansions: u64,
    /// Maximum distinct databases in the lattice per query.
    pub max_databases: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_expansions: 50_000_000,
            max_databases: 1_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_counters() {
        let mut s = EngineStats {
            goal_expansions: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, EngineStats::default());
    }

    #[test]
    fn default_limits_are_positive() {
        let l = Limits::default();
        assert!(l.max_expansions > 0);
        assert!(l.max_databases > 0);
    }
}
