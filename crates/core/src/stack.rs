//! Running evaluations on a thread with an enlarged stack.
//!
//! The top-down engine recurses on the host stack, so the stack it needs
//! is proportional to proof depth — programs with proofs thousands of
//! steps deep (long hypothetical chains, deep linear recursion) can
//! overflow the default ~8 MiB main stack. Every public entry point that
//! evaluates a query ([`crate::session::Session`] and the `hdl-service`
//! worker pool) routes the evaluation through [`call_with_deep_stack`],
//! which runs the closure on a scoped thread with [`DEEP_STACK_BYTES`]
//! of stack, so the caveat never reaches users.

use std::thread;

/// Stack size for evaluation threads (64 MiB — roughly three orders of
/// magnitude deeper proofs than the default main stack allows).
pub const DEEP_STACK_BYTES: usize = 64 << 20;

/// Runs `f` to completion on a scoped thread with [`DEEP_STACK_BYTES`]
/// of stack and returns its result. Panics in `f` are propagated to the
/// caller. Borrows in `f` may reference the caller's stack (the thread
/// is scoped), so existing `&self`/`&mut self` call patterns work
/// unchanged.
pub fn call_with_deep_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    thread::scope(|scope| {
        let handle = thread::Builder::new()
            .name("hdl-eval".into())
            .stack_size(DEEP_STACK_BYTES)
            .spawn_scoped(scope, f)
            .expect("spawn evaluation thread");
        match handle.join() {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_closure_result() {
        let data = [1u64, 2, 3];
        let sum = call_with_deep_stack(|| data.iter().sum::<u64>());
        assert_eq!(sum, 6);
    }

    #[test]
    fn survives_recursion_far_beyond_the_default_stack() {
        // 200k frames with a stack-resident payload need tens of MiB —
        // far past an 8 MiB default stack, comfortably inside 64 MiB.
        fn down(n: u64) -> u64 {
            let pad = [n; 8]; // keep the frame from being optimized away
            if n == 0 {
                pad[0]
            } else {
                down(n - 1) + 1
            }
        }
        let depth = 200_000;
        assert_eq!(call_with_deep_stack(|| down(depth)), depth);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics() {
        call_with_deep_stack(|| panic!("boom"));
    }
}
