//! # hdl-core
//!
//! Hypothetical Datalog — the primary contribution of Bonner, *Hypothetical
//! Datalog: Negation and Linear Recursion* (PODS 1989).
//!
//! The language extends function-free Horn logic with hypothetical
//! premises `A[add: B₁,…,Bₘ]` ("infer `A` after inserting the `Bᵢ`"),
//! their deleting duals `A[del: C₁,…,Cₖ]` ("infer `A` after removing the
//! `Cᵢ`", which stratify like negation — see [`maintain`] and DESIGN.md
//! §3.13), and negation-as-failure. This crate provides:
//!
//! - [`ast`] — premises, rules (Definitions 1–2), rulebases;
//! - [`parser`] — a Prolog-flavoured concrete syntax with `[add: …]`;
//! - [`pretty`] — printing back to that syntax;
//! - [`analysis`] — mutual-recursion classes, Definition 8 linearity, the
//!   Lemma 1 decision procedure and relaxation algorithm producing
//!   `(Δᵢ, Σᵢ)` linear stratifications, and the coarser stratifications
//!   the engines evaluate under;
//! - [`engine`] — three interchangeable evaluators: a bottom-up
//!   perfect-model reference engine, a goal-directed top-down engine with
//!   taint-aware tabling, and the paper's own `PROVE_Σᵢ`/`PROVE_Δᵢ`
//!   procedures (§5.2) with Theorem 3 instrumentation.
//!
//! ## Semantics in one paragraph
//!
//! For stratified rulebases, a premise `B[add: C̄]θ` holds in database
//! `DB` iff `Bθ` is in the perfect model of `DB ∪ C̄θ`; grounding
//! substitutions range over the fixed domain `dom(R, DB)` (Definition 3),
//! so evaluation walks a finite lattice of databases. Negation `~A` holds
//! iff `A` is not derivable in the current database; a variable occurring
//! *only* in a negated premise is read inside the negation
//! (`path(X) ← ~select(Y)` means "no `Y` is selectable"), matching the
//! paper's Examples 6–7.

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod engine;
pub mod maintain;
pub mod parser;
pub mod pretty;
pub mod session;
pub mod snapshot;
pub mod stack;
pub mod transform;

pub use analysis::stratify::{linear_stratification, LinearStratification};
pub use ast::{HypRule, Premise, Rulebase};
pub use engine::{
    BottomUpEngine, Budget, CancelToken, MemoryLimits, NaiveEngine, ProveEngine, TopDownEngine,
};
pub use maintain::{MaintenanceStats, MaterializedModel};
pub use parser::{parse_program, parse_query, split_facts};
pub use session::{Mutation, Session, SessionObserver};
pub use snapshot::Snapshot;
pub use stack::call_with_deep_stack;
