//! Text syntax for hypothetical Datalog.
//!
//! The concrete syntax follows Prolog conventions, extended with the
//! paper's bracketed hypothetical operator:
//!
//! ```text
//! % Example 3 of the paper:
//! within1(S, D) :- grad(S, D)[add: take(S, C)].
//! grad(S, mathphys) :- within1(S, math), within1(S, phys).
//!
//! % Negation as failure (section 3.1):
//! select(X) :- a(X), ~b(X).
//!
//! % Facts are rules with empty bodies:
//! take(tony, cs250).
//! ```
//!
//! Identifiers starting with a lowercase letter (or a digit) are constants
//! and predicate names; identifiers starting with an uppercase letter or
//! `_` are variables, scoped to their rule. `%` and `//` start line
//! comments. Propositional atoms may omit the parentheses.

use crate::ast::{HypRule, Premise, Rulebase};
use hdl_base::{Atom, Error, FxHashMap, GroundAtom, Result, SymbolTable, Term, Var};

/// A parsed goal for `?-` query lines: a premise evaluated against the
/// database (no head).
pub type Query = Premise;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    UpperIdent(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Turnstile, // :-
    Colon,
    Tilde,
    Query, // ?-
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

type Spanned = (Tok, usize, usize);

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line,
            column: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = *self.src.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn tokens(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else { break };
            let tok = match b {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b'~' => {
                    self.bump();
                    Tok::Tilde
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::Turnstile
                    } else {
                        Tok::Colon
                    }
                }
                b'?' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::Query
                    } else {
                        return Err(self.error("expected `?-`"));
                    }
                }
                b if b.is_ascii_alphanumeric() || b == b'_' => {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                    {
                        self.bump();
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos])
                        .expect("ascii identifier")
                        .to_owned();
                    if b.is_ascii_uppercase() || b == b'_' {
                        Tok::UpperIdent(text)
                    } else {
                        Tok::Ident(text)
                    }
                }
                other => {
                    return Err(self.error(format!("unexpected character `{}`", other as char)))
                }
            };
            out.push((tok, line, col));
        }
        Ok(out)
    }
}

/// Parser state over a token stream.
struct Parser<'s> {
    toks: Vec<Spanned>,
    pos: usize,
    symbols: &'s mut SymbolTable,
    /// Per-rule variable numbering.
    vars: FxHashMap<String, Var>,
}

impl<'s> Parser<'s> {
    fn error_at(&self, message: impl Into<String>) -> Error {
        let (line, column) = self
            .toks
            .get(self.pos)
            .map(|&(_, l, c)| (l, c))
            .unwrap_or_else(|| {
                self.toks
                    .last()
                    .map(|&(_, l, c)| (l, c + 1))
                    .unwrap_or((1, 1))
            });
        Error::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error_at(format!("expected {what}")))
        }
    }

    fn fresh_var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = Var(self.vars.len() as u32);
        self.vars.insert(name.to_owned(), v);
        v
    }

    fn parse_atom(&mut self) -> Result<Atom> {
        let name = match self.bump() {
            Some(Tok::Ident(n)) => n,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error_at("expected predicate name"));
            }
        };
        let pred = self.symbols.intern(&name);
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    args.push(self.parse_term()?);
                    match self.peek() {
                        Some(Tok::Comma) => {
                            self.bump();
                        }
                        Some(Tok::RParen) => break,
                        _ => return Err(self.error_at("expected `,` or `)` in argument list")),
                    }
                }
            }
            self.expect(&Tok::RParen, "`)`")?;
        }
        Ok(Atom::new(pred, args))
    }

    fn parse_term(&mut self) -> Result<Term> {
        match self.bump() {
            Some(Tok::Ident(n)) => Ok(Term::Const(self.symbols.intern(&n))),
            Some(Tok::UpperIdent(n)) => {
                // An underscore by itself is an anonymous variable: each
                // occurrence is distinct (the paper writes these as blanks
                // in the frame-axiom rules of section 5.1.4). The internal
                // key contains `#`, which the lexer rejects in identifiers,
                // so a user variable can never collide with (and silently
                // co-constrain) an anonymous one.
                if n == "_" {
                    let id = self.vars.len();
                    Ok(Term::Var(self.fresh_var(&format!("#anon{id}"))))
                } else {
                    Ok(Term::Var(self.fresh_var(&n)))
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error_at("expected term"))
            }
        }
    }

    fn parse_premise(&mut self) -> Result<Premise> {
        if self.peek() == Some(&Tok::Tilde) {
            self.bump();
            let atom = self.parse_atom()?;
            if self.peek() == Some(&Tok::LBracket) {
                return Err(self.error_at(
                    "negated hypothetical premises `~a[add: b]` are not allowed; \
                     introduce `c :- a[add: b].` and negate `c` (section 3.1)",
                ));
            }
            return Ok(Premise::Neg(atom));
        }
        let goal = self.parse_atom()?;
        if self.peek() == Some(&Tok::LBracket) {
            self.bump();
            let (adds, dels) = self.parse_hyp_lists()?;
            return Ok(Premise::Hyp { goal, adds, dels });
        }
        Ok(Premise::Atom(goal))
    }

    /// Parses the body of a hypothetical bracket after `[`: one or more
    /// keyword groups `add: A₁,…,Aₘ` / `del: C₁,…,Cₙ`, comma-separated, up
    /// to the closing `]`. Each keyword may appear at most once; an atom
    /// after a group's atoms continues that group.
    fn parse_hyp_lists(&mut self) -> Result<(Vec<Atom>, Vec<Atom>)> {
        let mut adds: Vec<Atom> = Vec::new();
        let mut dels: Vec<Atom> = Vec::new();
        // Which list the current keyword group appends to; `None` until the
        // first keyword has been seen.
        let mut current: Option<bool> = None; // true = adds, false = dels
        loop {
            // A keyword introducer is an identifier followed by `:` — a
            // plain atom can never match because `:` cannot follow an atom
            // inside the bracket.
            let at_keyword = matches!(
                (self.peek(), self.toks.get(self.pos + 1).map(|(t, _, _)| t)),
                (Some(Tok::Ident(_)), Some(Tok::Colon))
            );
            if at_keyword {
                let Some(Tok::Ident(kw)) = self.bump() else {
                    unreachable!("peeked an identifier")
                };
                let is_add = match kw.as_str() {
                    "add" => true,
                    "del" => false,
                    other => {
                        self.pos = self.pos.saturating_sub(1);
                        return Err(self.error_at(format!(
                            "unknown premise keyword `{other}` in hypothetical \
                             bracket; expected `add:` or `del:`"
                        )));
                    }
                };
                let seen = if is_add {
                    !adds.is_empty()
                } else {
                    !dels.is_empty()
                };
                if seen || current == Some(is_add) {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(
                        self.error_at(format!("duplicate `{kw}:` group in hypothetical bracket"))
                    );
                }
                current = Some(is_add);
                self.expect(&Tok::Colon, format!("`:` after `{kw}`").as_str())?;
            } else if current.is_none() {
                return Err(self.error_at("expected `add:` or `del:` after `[`"));
            }
            let atom = self.parse_atom()?;
            if current == Some(true) {
                adds.push(atom);
            } else {
                dels.push(atom);
            }
            match self.peek() {
                Some(Tok::Comma) => {
                    self.bump();
                }
                Some(Tok::RBracket) => {
                    self.bump();
                    return Ok((adds, dels));
                }
                _ => return Err(self.error_at("expected `,` or `]` in hypothetical bracket")),
            }
        }
    }

    fn parse_rule(&mut self) -> Result<HypRule> {
        self.vars.clear();
        let head = self.parse_atom()?;
        let mut premises = Vec::new();
        if self.peek() == Some(&Tok::Turnstile) {
            self.bump();
            loop {
                premises.push(self.parse_premise()?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Tok::Dot, "`.` at end of rule")?;
        Ok(HypRule::new(head, premises))
    }

    fn parse_query(&mut self) -> Result<Premise> {
        self.vars.clear();
        self.expect(&Tok::Query, "`?-`")?;
        let p = self.parse_premise()?;
        self.expect(&Tok::Dot, "`.` at end of query")?;
        Ok(p)
    }
}

/// Parses a whole program (rules and facts) into a [`Rulebase`].
///
/// Facts (ground rules with empty bodies) stay in the rulebase; use
/// [`split_facts`] to pull them into a database.
///
/// ```
/// use hdl_base::SymbolTable;
/// use hdl_core::parser::parse_program;
/// let mut syms = SymbolTable::new();
/// let rb = parse_program(
///     "within1(S, D) :- grad(S, D)[add: take(S, C)].",
///     &mut syms,
/// ).unwrap();
/// assert_eq!(rb.len(), 1);
/// assert!(rb.rules[0].premises[0].is_hypothetical());
/// ```
pub fn parse_program(src: &str, symbols: &mut SymbolTable) -> Result<Rulebase> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser {
        toks,
        pos: 0,
        symbols,
        vars: FxHashMap::default(),
    };
    let mut rb = Rulebase::new();
    while p.peek().is_some() {
        rb.push(p.parse_rule()?);
    }
    check_arities(&rb, p.symbols)?;
    Ok(rb)
}

/// Parses a single query line `?- premise.`.
pub fn parse_query(src: &str, symbols: &mut SymbolTable) -> Result<Query> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser {
        toks,
        pos: 0,
        symbols,
        vars: FxHashMap::default(),
    };
    let q = p.parse_query()?;
    if p.peek().is_some() {
        return Err(p.error_at("trailing input after query"));
    }
    Ok(q)
}

/// Splits ground, body-less rules out of `rb` into a database; returns the
/// remaining rules and the extracted facts.
pub fn split_facts(rb: Rulebase) -> (Rulebase, Vec<GroundAtom>) {
    let mut rules = Rulebase::new();
    let mut facts = Vec::new();
    for r in rb.rules {
        match (r.is_fact(), r.head.to_ground()) {
            (true, Some(g)) => facts.push(g),
            _ => rules.push(r),
        }
    }
    (rules, facts)
}

/// Checks that every predicate is used with one arity throughout.
pub fn check_arities(rb: &Rulebase, symbols: &SymbolTable) -> Result<()> {
    let mut arities: FxHashMap<hdl_base::Symbol, usize> = FxHashMap::default();
    for rule in rb.iter() {
        for atom in std::iter::once(&rule.head).chain(rule.premises.iter().flat_map(|p| p.atoms()))
        {
            match arities.get(&atom.pred) {
                Some(&a) if a != atom.arity() => {
                    return Err(Error::ArityMismatch {
                        predicate: symbols.name(atom.pred).to_owned(),
                        expected: a,
                        found: atom.arity(),
                    });
                }
                Some(_) => {}
                None => {
                    arities.insert(atom.pred, atom.arity());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (Rulebase, SymbolTable) {
        let mut syms = SymbolTable::new();
        let rb = parse_program(src, &mut syms).expect("parse");
        (rb, syms)
    }

    #[test]
    fn parses_facts_and_horn_rules() {
        let (rb, syms) = parse(
            "take(tony, cs250).\n\
             grad(S) :- take(S, his101), take(S, eng201).",
        );
        assert_eq!(rb.len(), 2);
        assert!(rb.rules[0].is_fact());
        let grad = syms.lookup("grad").unwrap();
        assert_eq!(rb.rules[1].head.pred, grad);
        assert_eq!(rb.rules[1].premises.len(), 2);
        assert_eq!(rb.rules[1].num_vars, 1, "S is one shared variable");
    }

    #[test]
    fn parses_hypothetical_premises() {
        let (rb, syms) = parse("within1(S, D) :- grad(S, D)[add: take(S, C)].");
        let r = &rb.rules[0];
        assert_eq!(r.premises.len(), 1);
        let Premise::Hyp { goal, adds, dels } = &r.premises[0] else {
            panic!("expected hypothetical premise");
        };
        assert!(dels.is_empty());
        assert_eq!(goal.pred, syms.lookup("grad").unwrap());
        assert_eq!(adds.len(), 1);
        assert_eq!(adds[0].pred, syms.lookup("take").unwrap());
        assert_eq!(r.num_vars, 3);
    }

    #[test]
    fn parses_multi_add_lists() {
        let (rb, _) = parse("a :- b[add: c, d(X), e].");
        let Premise::Hyp { adds, .. } = &rb.rules[0].premises[0] else {
            panic!()
        };
        assert_eq!(adds.len(), 3);
    }

    #[test]
    fn parses_del_lists() {
        let (rb, syms) = parse("p(X) :- q(X)[del: r(X)].");
        let Premise::Hyp { goal, adds, dels } = &rb.rules[0].premises[0] else {
            panic!("expected hypothetical premise");
        };
        assert_eq!(goal.pred, syms.lookup("q").unwrap());
        assert!(adds.is_empty());
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].pred, syms.lookup("r").unwrap());
    }

    #[test]
    fn parses_combined_add_del_lists_with_whitespace() {
        let (rb, _) = parse("a :- b[ add:  c , d(X) ,\n  del:  e , f ].");
        let Premise::Hyp { adds, dels, .. } = &rb.rules[0].premises[0] else {
            panic!()
        };
        assert_eq!(adds.len(), 2);
        assert_eq!(dels.len(), 2);
        // del-first order also parses.
        let (rb, _) = parse("a :- b[del: e, add: c].");
        let Premise::Hyp { adds, dels, .. } = &rb.rules[0].premises[0] else {
            panic!()
        };
        assert_eq!(adds.len(), 1);
        assert_eq!(dels.len(), 1);
    }

    #[test]
    fn add_and_del_may_name_atoms_called_add_or_del() {
        // `add` / `del` are only keywords when followed by `:`.
        let (rb, _) = parse("a :- b[add: add, del, del: add].");
        let Premise::Hyp { adds, dels, .. } = &rb.rules[0].premises[0] else {
            panic!()
        };
        assert_eq!(adds.len(), 2);
        assert_eq!(dels.len(), 1);
    }

    #[test]
    fn unknown_premise_keyword_is_a_spanned_error() {
        let mut syms = SymbolTable::new();
        let err = parse_program("p :- q[remove: r].", &mut syms).unwrap_err();
        let Error::Parse {
            line,
            column,
            message,
        } = err
        else {
            panic!("expected parse error")
        };
        assert_eq!(line, 1);
        assert_eq!(column, 8, "error points at the keyword itself");
        assert!(
            message.contains("unknown premise keyword `remove`"),
            "{message}"
        );
        assert!(message.contains("`add:` or `del:`"), "{message}");
    }

    #[test]
    fn duplicate_keyword_groups_are_rejected() {
        let mut syms = SymbolTable::new();
        let err = parse_program("p :- q[add: a, del: b, add: c].", &mut syms).unwrap_err();
        assert!(err.to_string().contains("duplicate `add:`"), "{err}");
        let err = parse_program("p :- q[del: a, del: b].", &mut syms).unwrap_err();
        assert!(err.to_string().contains("duplicate `del:`"), "{err}");
    }

    #[test]
    fn empty_bracket_is_rejected() {
        let mut syms = SymbolTable::new();
        let err = parse_program("p :- q[r].", &mut syms).unwrap_err();
        assert!(
            err.to_string().contains("expected `add:` or `del:`"),
            "{err}"
        );
    }

    #[test]
    fn parses_negation_and_propositional_atoms() {
        let (rb, syms) = parse("even :- ~select(X).");
        let r = &rb.rules[0];
        assert_eq!(r.head.arity(), 0);
        assert!(r.premises[0].is_negative());
        assert_eq!(r.premises[0].goal().pred, syms.lookup("select").unwrap());
    }

    #[test]
    fn rejects_negated_hypotheticals_with_guidance() {
        let mut syms = SymbolTable::new();
        let err = parse_program("p :- ~a[add: b].", &mut syms).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("negated hypothetical"), "{msg}");
    }

    #[test]
    fn anonymous_variables_are_distinct() {
        // accept(T) :- control(_, _, T).  — two `_` must not co-constrain.
        let (rb, _) = parse("accept(T) :- control(_, _, T).");
        assert_eq!(rb.rules[0].num_vars, 3);
    }

    #[test]
    fn user_variables_cannot_collide_with_anonymous_ones() {
        // `_anon0` is a legal user variable name; it must stay distinct
        // from the internally numbered blanks.
        let (rb, _) = parse("p(T) :- q(_, _anon0, T), r(_anon0).");
        // Variables: #anon0 (the blank), _anon0, T — three distinct.
        assert_eq!(rb.rules[0].num_vars, 3);
        let (rb, _) = parse("p :- q(_anon1, _), r(_anon1).");
        // _anon1 is shared across premises; the blank is separate.
        assert_eq!(rb.rules[0].num_vars, 2);
    }

    #[test]
    fn variables_are_rule_scoped() {
        let (rb, _) = parse("p(X) :- q(X).\nr(X) :- s(X, Y).");
        assert_eq!(rb.rules[0].num_vars, 1);
        assert_eq!(rb.rules[1].num_vars, 2);
    }

    #[test]
    fn comments_are_skipped() {
        let (rb, _) = parse("% comment\n// another\np :- q. % trailing");
        assert_eq!(rb.len(), 1);
    }

    #[test]
    fn arity_mismatch_reported_with_name() {
        let mut syms = SymbolTable::new();
        let err = parse_program("p(X) :- q(X).\nq(a, b).", &mut syms).unwrap_err();
        assert!(matches!(err, Error::ArityMismatch { ref predicate, .. } if predicate == "q"));
    }

    #[test]
    fn parse_error_positions() {
        let mut syms = SymbolTable::new();
        let err = parse_program("p :- q\nr.", &mut syms).unwrap_err();
        // After `q`, `r` on line 2 is treated as a continuation error: the
        // missing dot is discovered at `r`.
        let Error::Parse { line, .. } = err else {
            panic!("expected parse error")
        };
        assert_eq!(line, 2);
    }

    #[test]
    fn split_facts_separates_ground_facts() {
        let (rb, _) = parse("e(a, b).\ne(b, c).\ntc(X, Y) :- e(X, Y).");
        let (rules, facts) = split_facts(rb);
        assert_eq!(rules.len(), 1);
        assert_eq!(facts.len(), 2);
    }

    #[test]
    fn parse_query_forms() {
        let mut syms = SymbolTable::new();
        let q = parse_query("?- grad(tony)[add: take(tony, cs452)].", &mut syms).unwrap();
        assert!(q.is_hypothetical());
        let q = parse_query("?- ~yes.", &mut syms).unwrap();
        assert!(q.is_negative());
    }

    #[test]
    fn example9_shape_parses() {
        // The three-stratum rulebase of Example 9.
        let src = "
            a3 :- b3, a3[add: c3].
            a3 :- d3, ~a2.
            a2 :- b2, a2[add: c2].
            a2 :- d2, ~a1.
            a1 :- b1, a1[add: c1].
            a1 :- d1.
        ";
        let (rb, _) = parse(src);
        assert_eq!(rb.len(), 6);
        assert_eq!(
            rb.iter()
                .filter(|r| r.premises.iter().any(Premise::is_hypothetical))
                .count(),
            3
        );
    }
}
