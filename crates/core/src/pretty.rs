//! Pretty-printing of rules, premises, and databases back to the concrete
//! syntax accepted by [`crate::parser`].

use crate::ast::{HypRule, Premise, Rulebase};
use hdl_base::{Atom, Database, GroundAtom, SymbolTable, Term};
use std::fmt::Write as _;

/// Renders a variable index as `X0`, `X1`, ….
fn var_name(i: u32) -> String {
    format!("X{i}")
}

/// Renders a term.
pub fn term(t: Term, symbols: &SymbolTable) -> String {
    match t {
        Term::Var(v) => var_name(v.0),
        Term::Const(c) => symbols.name(c).to_owned(),
    }
}

/// Renders an atom; propositional atoms print without parentheses.
pub fn atom(a: &Atom, symbols: &SymbolTable) -> String {
    let mut out = symbols.name(a.pred).to_owned();
    if !a.args.is_empty() {
        out.push('(');
        for (i, &t) in a.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&term(t, symbols));
        }
        out.push(')');
    }
    out
}

/// Renders a ground atom.
pub fn ground_atom(g: &GroundAtom, symbols: &SymbolTable) -> String {
    atom(&g.to_atom(), symbols)
}

/// Renders a premise.
pub fn premise(p: &Premise, symbols: &SymbolTable) -> String {
    match p {
        Premise::Atom(a) => atom(a, symbols),
        Premise::Neg(a) => format!("~{}", atom(a, symbols)),
        Premise::Hyp { goal, adds, dels } => {
            let mut out = atom(goal, symbols);
            out.push('[');
            if !adds.is_empty() {
                out.push_str("add: ");
                for (i, a) in adds.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&atom(a, symbols));
                }
            }
            if !dels.is_empty() {
                if !adds.is_empty() {
                    out.push_str(", ");
                }
                out.push_str("del: ");
                for (i, a) in dels.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&atom(a, symbols));
                }
            }
            out.push(']');
            out
        }
    }
}

/// Renders a rule, ending with `.`.
pub fn rule(r: &HypRule, symbols: &SymbolTable) -> String {
    let mut out = atom(&r.head, symbols);
    if !r.premises.is_empty() {
        out.push_str(" :- ");
        for (i, p) in r.premises.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&premise(p, symbols));
        }
    }
    out.push('.');
    out
}

/// Renders a whole rulebase, one rule per line.
pub fn rulebase(rb: &Rulebase, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    for r in rb.iter() {
        let _ = writeln!(out, "{}", rule(r, symbols));
    }
    out
}

/// Renders a database as sorted fact lines (deterministic output).
pub fn database(db: &Database, symbols: &SymbolTable) -> String {
    let mut lines: Vec<String> = db
        .iter_facts()
        .map(|f| format!("{}.", ground_atom(&f, symbols)))
        .collect();
    lines.sort();
    let mut out = String::new();
    for l in lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn roundtrip_through_parser() {
        let src = "\
within1(X0, X1) :- grad(X0, X1)[add: take(X0, X2)].
grad(X0, mathphys) :- within1(X0, math), within1(X0, phys).
even :- ~select(X0).
a :- b[add: c, d].
p(X0) :- q(X0)[del: r(X0)].
s :- t[add: u, del: w, x].
";
        let mut syms = SymbolTable::new();
        let rb = parse_program(src, &mut syms).unwrap();
        let printed = rulebase(&rb, &syms);
        assert_eq!(printed, src);
        // And the printed form re-parses to the same AST.
        let mut syms2 = SymbolTable::new();
        let rb2 = parse_program(&printed, &mut syms2).unwrap();
        assert_eq!(rb.len(), rb2.len());
    }

    #[test]
    fn database_output_is_sorted() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("p");
        let b = syms.intern("b");
        let a = syms.intern("a");
        let mut db = Database::new();
        db.insert(GroundAtom::new(p, vec![b]));
        db.insert(GroundAtom::new(p, vec![a]));
        assert_eq!(database(&db, &syms), "p(a).\np(b).\n");
    }
}
