//! Immutable published snapshots of a session's program state.
//!
//! A [`Snapshot`] freezes everything a query evaluation reads — the
//! symbol table, the rulebase, and the base database — into one
//! immutable value that many worker threads can share behind an `Arc`.
//! Publication is epoch-stamped from a global counter, so consumers
//! (notably the `hdl-service` answer cache) can tell answers computed
//! against different snapshots apart without comparing contents: two
//! snapshots never share an epoch, and anything keyed by epoch can never
//! leak an answer across a publish.
//!
//! The symbol table is *frozen* at snapshot time: workers that need to
//! intern query-only constants do so in a private extension cloned from
//! the frozen table, which keeps every symbol the snapshot mentions
//! stable across threads (the `Send + Sync` audit in `hdl-base`
//! guarantees sharing is safe).

use crate::ast::Rulebase;
use hdl_base::{Database, SymbolTable};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global epoch counter; every published snapshot gets the next value.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// An immutable, epoch-stamped copy of a program + database.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    symbols: SymbolTable,
    rulebase: Rulebase,
    database: Database,
    /// The perfect model of `(rulebase, database)` if the publishing
    /// session had one materialized — workers can then answer plain-atom
    /// queries by membership instead of re-running a fixpoint.
    model: Option<Database>,
}

impl Snapshot {
    /// Freezes the given parts into a snapshot with a fresh epoch.
    pub fn new(symbols: SymbolTable, rulebase: Rulebase, database: Database) -> Arc<Self> {
        Self::with_model(symbols, rulebase, database, None)
    }

    /// Like [`Snapshot::new`], carrying an already-materialized perfect
    /// model of the same program state.
    pub fn with_model(
        symbols: SymbolTable,
        rulebase: Rulebase,
        database: Database,
        model: Option<Database>,
    ) -> Arc<Self> {
        Arc::new(Snapshot {
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            symbols,
            rulebase,
            database,
            model,
        })
    }

    /// The materialized perfect model, if the publisher carried one.
    pub fn model(&self) -> Option<&Database> {
        self.model.as_ref()
    }

    /// Ensures future epochs are strictly greater than `watermark`.
    ///
    /// Recovery calls this with the epoch counter stored in a checkpoint,
    /// so a restored process never re-issues an epoch that pre-crash
    /// cache entries or persisted artifacts were stamped with.
    pub fn advance_epoch_to(watermark: u64) {
        NEXT_EPOCH.fetch_max(watermark, Ordering::Relaxed);
    }

    /// The next epoch a publish would be stamped with (a watermark for
    /// checkpoints; monotone but not a reservation).
    pub fn epoch_watermark() -> u64 {
        NEXT_EPOCH.load(Ordering::Relaxed)
    }

    /// Parses `src` as a program and freezes it — convenience for tests
    /// and the batch CLI.
    pub fn from_program(src: &str) -> hdl_base::Result<Arc<Self>> {
        let mut session = crate::session::Session::new();
        session.load(src)?;
        Ok(session.snapshot())
    }

    /// The globally unique publication stamp of this snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The frozen rulebase.
    pub fn rulebase(&self) -> &Rulebase {
        &self.rulebase
    }

    /// The frozen base database.
    pub fn database(&self) -> &Database {
        &self.database
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_unique_and_increasing() {
        let a = Snapshot::new(SymbolTable::new(), Rulebase::new(), Database::new());
        let b = Snapshot::new(SymbolTable::new(), Rulebase::new(), Database::new());
        assert!(b.epoch() > a.epoch());
    }

    #[test]
    fn epoch_watermark_advances_monotonically() {
        let a = Snapshot::new(SymbolTable::new(), Rulebase::new(), Database::new());
        Snapshot::advance_epoch_to(a.epoch() + 100);
        let b = Snapshot::new(SymbolTable::new(), Rulebase::new(), Database::new());
        assert!(b.epoch() >= a.epoch() + 100);
        // Advancing backwards is a no-op.
        Snapshot::advance_epoch_to(1);
        let c = Snapshot::new(SymbolTable::new(), Rulebase::new(), Database::new());
        assert!(c.epoch() > b.epoch());
    }

    #[test]
    fn from_program_freezes_rules_and_facts() {
        let snap = Snapshot::from_program("edge(a, b). tc(X, Y) :- edge(X, Y).").unwrap();
        assert_eq!(snap.rulebase().len(), 1);
        assert_eq!(snap.database().len(), 1);
        assert!(snap.symbols().lookup("edge").is_some());
    }

    #[test]
    fn snapshot_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
    }
}
