//! Program lints: diagnostics for common rulebase mistakes.
//!
//! None of these conditions are errors — Definition 3's domain-grounded
//! semantics gives every program a meaning — but each usually signals a
//! typo or a misunderstanding (e.g. an unbound head variable silently
//! multiplying a conclusion across the whole domain). The `hdl` shell
//! surfaces them via `:lint`.

use crate::ast::{Premise, Rulebase};
use hdl_base::{FxHashSet, Symbol, SymbolTable, Var};

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lint {
    /// A head variable not bound by any positive or hypothetical premise:
    /// the conclusion will be emitted for *every* domain constant.
    UnboundHeadVariable {
        /// Rule index in the rulebase.
        rule: usize,
        /// The variable's index (display name `X{n}`).
        var: Var,
    },
    /// A predicate that is read (positively or hypothetically) but has no
    /// rules and is never hypothetically inserted — it can only come from
    /// the extensional database. Often intentional; flagged when the name
    /// resembles a typo of a defined predicate (edit distance 1).
    ProbableTypo {
        /// The undefined predicate.
        used: Symbol,
        /// The defined predicate it resembles.
        similar: Symbol,
    },
    /// A predicate inserted via `add:` that is never read by any premise:
    /// the insertion cannot influence anything.
    AddedButNeverRead {
        /// Rule index performing the insertion.
        rule: usize,
        /// The inserted predicate.
        pred: Symbol,
    },
    /// A predicate defined by rules but never used in any premise or
    /// query position (dead code, unless it is the intended output).
    DefinedButUnused {
        /// The predicate.
        pred: Symbol,
    },
}

/// Runs all lints over `rb`.
pub fn lint(rb: &Rulebase, syms: &SymbolTable) -> Vec<Lint> {
    let mut out = Vec::new();
    unbound_head_variables(rb, &mut out);
    let defined: FxHashSet<Symbol> = rb.iter().map(|r| r.head.pred).collect();
    let mut read: FxHashSet<Symbol> = FxHashSet::default();
    let mut added: FxHashSet<Symbol> = FxHashSet::default();
    for rule in rb.iter() {
        for p in &rule.premises {
            read.insert(p.goal().pred);
            for a in p.adds() {
                added.insert(a.pred);
            }
        }
    }
    probable_typos(rb, syms, &defined, &added, &mut out);
    added_never_read(rb, &read, &mut out);
    defined_unused(rb, &defined, &read, &mut out);
    out
}

fn unbound_head_variables(rb: &Rulebase, out: &mut Vec<Lint>) {
    for (i, rule) in rb.iter().enumerate() {
        let bound: FxHashSet<Var> = rule
            .premises
            .iter()
            .flat_map(|p| match p {
                // Positive premises bind by matching; hypothetical goals
                // and adds are grounded by enumeration, which still
                // "binds" in the sense of constraining — but a variable
                // appearing ONLY in the head is enumerated blindly.
                Premise::Atom(a) => a.vars().collect::<Vec<_>>(),
                Premise::Hyp { goal, adds, dels } => goal
                    .vars()
                    .chain(adds.iter().flat_map(|a| a.vars()))
                    .chain(dels.iter().flat_map(|a| a.vars()))
                    .collect(),
                Premise::Neg(a) => a.vars().collect(),
            })
            .collect();
        let mut seen = FxHashSet::default();
        for v in rule.head.vars() {
            if !bound.contains(&v) && seen.insert(v) {
                out.push(Lint::UnboundHeadVariable { rule: i, var: v });
            }
        }
    }
}

fn probable_typos(
    rb: &Rulebase,
    syms: &SymbolTable,
    defined: &FxHashSet<Symbol>,
    added: &FxHashSet<Symbol>,
    out: &mut Vec<Lint>,
) {
    let mut reported = FxHashSet::default();
    for rule in rb.iter() {
        for p in &rule.premises {
            let pred = p.goal().pred;
            if defined.contains(&pred) || added.contains(&pred) || !reported.insert(pred) {
                continue;
            }
            // EDB-looking predicate: compare against defined names.
            let name = syms.name(pred);
            for &d in defined {
                if edit_distance_is_one(name, syms.name(d)) {
                    out.push(Lint::ProbableTypo {
                        used: pred,
                        similar: d,
                    });
                    break;
                }
            }
        }
    }
}

fn added_never_read(rb: &Rulebase, read: &FxHashSet<Symbol>, out: &mut Vec<Lint>) {
    let mut reported = FxHashSet::default();
    for (i, rule) in rb.iter().enumerate() {
        for p in &rule.premises {
            for a in p.adds() {
                if !read.contains(&a.pred) && reported.insert((i, a.pred)) {
                    out.push(Lint::AddedButNeverRead {
                        rule: i,
                        pred: a.pred,
                    });
                }
            }
        }
    }
}

fn defined_unused(
    _rb: &Rulebase,
    defined: &FxHashSet<Symbol>,
    read: &FxHashSet<Symbol>,
    out: &mut Vec<Lint>,
) {
    let mut preds: Vec<Symbol> = defined
        .iter()
        .copied()
        .filter(|p| !read.contains(p))
        .collect();
    preds.sort_unstable();
    // The "topmost" such predicate is usually the intended query output;
    // flag only when there are at least two, keeping the rest.
    if preds.len() >= 2 {
        for pred in preds.into_iter().skip(1) {
            out.push(Lint::DefinedButUnused { pred });
        }
    }
}

/// Whether `a` and `b` differ by exactly one edit (insert/delete/replace).
fn edit_distance_is_one(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > 1 || (n == m && a == b) {
        return false;
    }
    if n == m {
        return a.iter().zip(b).filter(|(x, y)| x != y).count() == 1;
    }
    // One is one longer: check subsequence with one skip.
    let (short, long) = if n < m { (a, b) } else { (b, a) };
    let mut i = 0;
    let mut skipped = false;
    for &cur in long {
        if i < short.len() && short[i] == cur {
            i += 1;
        } else if skipped {
            return false;
        } else {
            skipped = true;
        }
    }
    true
}

/// Renders a lint for display.
pub fn render_lint(l: &Lint, syms: &SymbolTable) -> String {
    match l {
        Lint::UnboundHeadVariable { rule, var } => format!(
            "rule {rule}: head variable X{} is unbound — the conclusion \
             will be emitted for every domain constant",
            var.0
        ),
        Lint::ProbableTypo { used, similar } => format!(
            "predicate `{}` has no rules and is never inserted; did you \
             mean `{}`?",
            syms.name(*used),
            syms.name(*similar)
        ),
        Lint::AddedButNeverRead { rule, pred } => format!(
            "rule {rule}: inserts `{}` hypothetically, but nothing reads it",
            syms.name(*pred)
        ),
        Lint::DefinedButUnused { pred } => format!(
            "predicate `{}` is defined but never used by any premise",
            syms.name(*pred)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str) -> (Vec<Lint>, SymbolTable) {
        let mut syms = SymbolTable::new();
        let rb = parse_program(src, &mut syms).unwrap();
        let lints = lint(&rb, &syms);
        (lints, syms)
    }

    #[test]
    fn unbound_head_variable_flagged() {
        let (lints, _) = run("all(X) :- trigger.");
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::UnboundHeadVariable { rule: 0, .. })));
        // Bound case: no lint.
        let (lints, _) = run("copy(X) :- src(X).");
        assert!(lints.is_empty());
    }

    #[test]
    fn typo_detection() {
        let (lints, syms) = run("reachable(X) :- edge(X, Y).
             out(X) :- reachible(X).");
        let typo = lints.iter().find_map(|l| match l {
            Lint::ProbableTypo { used, similar } => {
                Some((syms.name(*used).to_owned(), syms.name(*similar).to_owned()))
            }
            _ => None,
        });
        assert_eq!(
            typo,
            Some(("reachible".to_string(), "reachable".to_string()))
        );
    }

    #[test]
    fn added_but_never_read_flagged() {
        let (lints, syms) = run("p :- q[add: orphan].\nq :- marker.");
        assert!(lints.iter().any(|l| matches!(
            l,
            Lint::AddedButNeverRead { pred, .. } if syms.name(*pred) == "orphan"
        )));
        // The parity rulebase reads its added predicate: no such lint.
        let (lints, _) = run("even :- select(X), odd[add: b(X)].
             odd :- select(X), even[add: b(X)].
             even :- ~select(X).
             select(X) :- a(X), ~b(X).");
        assert!(!lints
            .iter()
            .any(|l| matches!(l, Lint::AddedButNeverRead { .. })));
    }

    #[test]
    fn edit_distance() {
        assert!(edit_distance_is_one("edge", "edges"));
        assert!(edit_distance_is_one("edge", "edgy"));
        assert!(edit_distance_is_one("dge", "edge"));
        assert!(!edit_distance_is_one("edge", "edge"));
        assert!(!edit_distance_is_one("edge", "ridge"));
        assert!(!edit_distance_is_one("a", "abc"));
    }

    #[test]
    fn defined_but_unused_keeps_one_output() {
        // `yes` is the intended output; `junk` is dead.
        let (lints, syms) = run("yes :- path.
             junk :- path.
             path :- edge.");
        let unused: Vec<&str> = lints
            .iter()
            .filter_map(|l| match l {
                Lint::DefinedButUnused { pred } => Some(syms.name(*pred)),
                _ => None,
            })
            .collect();
        assert_eq!(unused.len(), 1, "one of yes/junk kept as output");
    }

    #[test]
    fn render_is_humane() {
        let (lints, syms) = run("all(X) :- trigger.");
        let text = render_lint(&lints[0], &syms);
        assert!(text.contains("every domain constant"));
    }
}
