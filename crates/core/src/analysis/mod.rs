//! Static analysis of hypothetical rulebases (§4 of the paper).
//!
//! - [`recursion`] — the predicate dependency graph of a hypothetical
//!   rulebase and its mutual-recursion equivalence classes;
//! - [`linearity`] — Definition 8's linear-rule test;
//! - [`stratify`] — Lemma 1: the polynomial-time decision procedure for
//!   linear stratifiability and the relaxation algorithm that constructs a
//!   concrete `(Δᵢ, Σᵢ)` stratification, plus the global
//!   negation-stratification used by the evaluation engines;
//! - [`lint`] — diagnostics for common rulebase mistakes (unbound head
//!   variables, probable typos, insertions nothing reads).

pub mod linearity;
pub mod lint;
pub mod recursion;
pub mod stratify;

pub use linearity::{is_linear_rule, rule_recursion};
pub use lint::{lint, render_lint, Lint};
pub use recursion::{HypEdge, RecursionAnalysis};
pub use stratify::{
    global_negation_strata, linear_stratification, LinearStratification, NegationStrata, Stratum,
};
