//! Dependency structure and mutual-recursion classes of a hypothetical
//! rulebase.
//!
//! The dependency graph has an edge `head → q` for every occurrence of `q`
//! in a rule premise, labelled by the occurrence kind of Definition 4
//! (positive, negative, or hypothetical — the goal of `q(x̄)[add: …]`).
//! Atoms inside `add`-lists are *not* occurrences: inserting facts for a
//! predicate does not depend on its definition.
//!
//! Two predicates are *mutually recursive* when they lie on a common cycle,
//! i.e. in the same strongly connected component that is actually cyclic.
//! These equivalence classes drive both the Lemma 1 decision procedure and
//! the goal-counting constants `kᵢ` of Theorem 3.

use crate::ast::Rulebase;
use hdl_base::{FxHashMap, Symbol};
use hdl_datalog::depgraph::{DepGraph, EdgeKind};

/// One labelled dependency of a rule head on a premise predicate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HypEdge {
    /// Positive occurrence `q(x̄)`.
    Positive,
    /// Negative occurrence `~q(x̄)`.
    Negative,
    /// Hypothetical occurrence `q(x̄)[add: …]`.
    Hypothetical,
}

/// Mutual-recursion analysis of a rulebase.
#[derive(Debug, Clone)]
pub struct RecursionAnalysis {
    /// Dense predicate numbering (only predicates that occur in rules).
    pub preds: Vec<Symbol>,
    /// Equivalence-class id per predicate.
    pub class_of: FxHashMap<Symbol, usize>,
    /// Number of equivalence classes.
    pub num_classes: usize,
    /// Whether each class is genuinely recursive (a cycle exists through
    /// it: size > 1 or a self-edge).
    pub class_recursive: Vec<bool>,
    /// All labelled edges `(from, to, kind)`.
    pub edges: Vec<(Symbol, Symbol, HypEdge)>,
}

impl RecursionAnalysis {
    /// Builds the analysis for `rb`.
    pub fn new(rb: &Rulebase) -> Self {
        let mut graph = DepGraph::new();
        let mut edges = Vec::new();
        for rule in rb.iter() {
            graph.add_node(rule.head.pred);
            for q in rule.positive_preds() {
                graph.add_edge(rule.head.pred, q, EdgeKind::Positive);
                edges.push((rule.head.pred, q, HypEdge::Positive));
            }
            for q in rule.negative_preds() {
                graph.add_edge(rule.head.pred, q, EdgeKind::Negative);
                edges.push((rule.head.pred, q, HypEdge::Negative));
            }
            for premise in rule.premises.iter().filter(|p| p.is_hypothetical()) {
                let q = premise.goal().pred;
                // Hypothetical goals participate in cycles like positive
                // occurrences; the label distinction matters only for the
                // stratification conditions, not for SCCs.
                graph.add_edge(rule.head.pred, q, EdgeKind::Positive);
                edges.push((rule.head.pred, q, HypEdge::Hypothetical));
                // A `del:` list makes the goal occurrence negation-like:
                // the premise's truth depends on facts of `q`'s database
                // being *absent*, so recursion through it is as unsafe as
                // recursion through `~q` and must cross a stratum.
                if !premise.dels().is_empty() {
                    graph.add_edge(rule.head.pred, q, EdgeKind::Negative);
                    edges.push((rule.head.pred, q, HypEdge::Negative));
                }
            }
            // Predicates that only appear inside add-lists or as premises
            // still need nodes so class lookups succeed.
            for p in rule.all_preds() {
                graph.add_node(p);
            }
        }
        let (comp, num_classes) = graph.sccs();
        let mut class_of = FxHashMap::default();
        let mut class_size = vec![0usize; num_classes];
        let mut preds = Vec::with_capacity(graph.len());
        for i in 0..graph.len() {
            let p = graph.pred(i);
            preds.push(p);
            class_of.insert(p, comp[i]);
            class_size[comp[i]] += 1;
        }
        let mut class_recursive: Vec<bool> = class_size.iter().map(|&s| s > 1).collect();
        for i in 0..graph.len() {
            for &(j, _) in graph.edges_of(i) {
                if i == j {
                    class_recursive[comp[i]] = true;
                }
            }
        }
        RecursionAnalysis {
            preds,
            class_of,
            num_classes,
            class_recursive,
            edges,
        }
    }

    /// Class id of `p` (predicates never occurring in rules get their own
    /// implicit non-recursive class, reported as `None`).
    pub fn class(&self, p: Symbol) -> Option<usize> {
        self.class_of.get(&p).copied()
    }

    /// Whether `a` and `b` are mutually recursive (Definition 16 of the
    /// appendix): same class *and* the class is cyclic. A predicate is
    /// mutually recursive with itself iff it lies on a cycle.
    pub fn mutually_recursive(&self, a: Symbol, b: Symbol) -> bool {
        match (self.class(a), self.class(b)) {
            (Some(ca), Some(cb)) => ca == cb && self.class_recursive[ca],
            _ => false,
        }
    }

    /// Whether any class contains a negative edge — recursion through
    /// negation, which makes the rulebase non-stratifiable.
    pub fn negation_in_cycle(&self) -> Option<(Symbol, Symbol)> {
        self.edges
            .iter()
            .find(|&&(f, t, k)| k == HypEdge::Negative && self.mutually_recursive(f, t))
            .map(|&(f, t, _)| (f, t))
    }

    /// The number of mutual-recursion equivalence classes among the
    /// predicates in `preds` (the constant `kᵢ` of Theorem 3 when applied
    /// to a segment's predicates).
    pub fn classes_among(&self, preds: &[Symbol]) -> usize {
        let mut seen: Vec<usize> = preds.iter().filter_map(|&p| self.class(p)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use hdl_base::SymbolTable;

    fn analyze(src: &str) -> (RecursionAnalysis, SymbolTable) {
        let mut syms = SymbolTable::new();
        let rb = parse_program(src, &mut syms).unwrap();
        (RecursionAnalysis::new(&rb), syms)
    }

    #[test]
    fn even_odd_are_mutually_recursive() {
        // Example 6 of the paper.
        let (ra, syms) = analyze(
            "even :- select(X), odd[add: b(X)].
             odd :- select(X), even[add: b(X)].
             even :- ~select(X).
             select(X) :- a(X), ~b(X).",
        );
        let even = syms.lookup("even").unwrap();
        let odd = syms.lookup("odd").unwrap();
        let select = syms.lookup("select").unwrap();
        assert!(ra.mutually_recursive(even, odd));
        assert!(ra.mutually_recursive(even, even));
        assert!(!ra.mutually_recursive(even, select));
        assert!(
            !ra.mutually_recursive(select, select),
            "select is not on a cycle"
        );
        assert!(ra.negation_in_cycle().is_none());
    }

    #[test]
    fn self_loop_counts_as_recursive() {
        let (ra, syms) = analyze("p(X) :- e(X, Y), p(Y).");
        let p = syms.lookup("p").unwrap();
        let e = syms.lookup("e").unwrap();
        assert!(ra.mutually_recursive(p, p));
        assert!(!ra.mutually_recursive(e, e));
    }

    #[test]
    fn negation_in_cycle_detected_through_hypothetical_edges() {
        // p :- q[add: c].   q :- ~p.   — the cycle passes a negative edge.
        let (ra, _) = analyze("p :- q[add: c].\nq :- ~p.");
        assert!(ra.negation_in_cycle().is_some());
    }

    #[test]
    fn add_atoms_are_not_dependencies() {
        // p :- q[add: p(a)] — wait, p is propositional here; use distinct:
        // p :- q[add: r].   r :- p.   If `r` inside add counted as an
        // occurrence, p and r would be mutually recursive through it; the
        // genuine cycle is p -> q? No: p depends on q (hyp); r depends on p
        // (pos). No cycle.
        let (ra, syms) = analyze("p :- q[add: r].\nr :- p.");
        let p = syms.lookup("p").unwrap();
        let r = syms.lookup("r").unwrap();
        assert!(!ra.mutually_recursive(p, r));
        assert!(ra.negation_in_cycle().is_none());
    }

    #[test]
    fn del_goals_are_negation_like_in_cycles() {
        // Recursion through a del-carrying hypothetical goal is recursion
        // through negation.
        let (ra, _) = analyze("p :- p[del: c].");
        assert!(ra.negation_in_cycle().is_some());
        // Non-recursive del: use is fine.
        let (ra, _) = analyze("p :- q[del: c].\nq :- r.");
        assert!(ra.negation_in_cycle().is_none());
        // del-list *atoms* are still not occurrences.
        let (ra, syms) = analyze("p :- q[del: r].\nr :- p.");
        let p = syms.lookup("p").unwrap();
        let r = syms.lookup("r").unwrap();
        assert!(!ra.mutually_recursive(p, r));
        assert!(ra.negation_in_cycle().is_none());
    }

    #[test]
    fn classes_among_counts_distinct_classes() {
        let (ra, syms) = analyze(
            "a :- b.
             b :- a.
             c :- c.
             d :- a, c.",
        );
        let a = syms.lookup("a").unwrap();
        let b = syms.lookup("b").unwrap();
        let c = syms.lookup("c").unwrap();
        let d = syms.lookup("d").unwrap();
        assert_eq!(ra.classes_among(&[a, b]), 1);
        assert_eq!(ra.classes_among(&[a, b, c]), 2);
        assert_eq!(ra.classes_among(&[a, b, c, d]), 3);
    }
}
