//! Linear stratification (Definitions 6–9) and the Lemma 1 algorithms.
//!
//! Two related computations live here:
//!
//! 1. [`global_negation_strata`] — the coarse stratification the
//!    *evaluation engines* need: every predicate gets a stratum such that
//!    positive and hypothetical dependencies stay within or below it and
//!    negative dependencies go strictly below. This exists iff no cycle of
//!    the dependency graph passes through negation, and covers every
//!    well-defined rulebase (a superset of the linearly stratified ones).
//!
//! 2. [`linear_stratification`] — the paper's finer `(Δᵢ, Σᵢ)` structure:
//!    - *decision* (Lemma 1): compute mutual-recursion classes; fail if a
//!      class has recursion through negation; fail if a class has both
//!      hypothetical recursion and non-linear recursion;
//!    - *construction*: the relaxation algorithm — every predicate starts
//!      in partition 1 and partition numbers are incremented until the
//!      Definition 6 conditions hold. Odd partitions `R₂ᵢ₋₁` are the Horn
//!      segments `Δᵢ` (negation allowed, hypothetical goals must be
//!      defined strictly below); even partitions `R₂ᵢ` are the
//!      hypothetical segments `Σᵢ` (hypothetical recursion allowed,
//!      negated predicates must be defined strictly below).

use crate::analysis::linearity::{rule_recursion, RuleRecursion};
use crate::analysis::recursion::RecursionAnalysis;
use crate::ast::{HypRule, Premise, Rulebase};
use hdl_base::{Error, FxHashMap, Result, Symbol};

/// Global negation-stratification for the evaluation engines.
#[derive(Debug, Clone)]
pub struct NegationStrata {
    /// Stratum per predicate occurring in the rulebase.
    pub stratum_of: FxHashMap<Symbol, usize>,
    /// Number of strata (0 for an empty rulebase).
    pub num_strata: usize,
}

impl NegationStrata {
    /// Stratum of `p` (0 for predicates with no rules — EDB predicates).
    pub fn stratum(&self, p: Symbol) -> usize {
        self.stratum_of.get(&p).copied().unwrap_or(0)
    }
}

/// Computes [`NegationStrata`], or fails if some cycle passes through
/// negation (the rulebase is then not well-defined, §3.1).
pub fn global_negation_strata(rb: &Rulebase) -> Result<NegationStrata> {
    let ra = RecursionAnalysis::new(rb);
    if let Some((f, t)) = ra.negation_in_cycle() {
        return Err(Error::NotStratified {
            cycle: format!("predicate #{} negates #{} inside a cycle", f.0, t.0),
        });
    }
    // Iterate to the least fixpoint of:
    //   stratum(p) ≥ stratum(q)      for positive/hypothetical deps p → q
    //   stratum(p) ≥ stratum(q) + 1  for negative deps p → q
    // Termination: strata are bounded by the number of predicates because
    // there is no negative cycle.
    let mut stratum: FxHashMap<Symbol, usize> = ra.preds.iter().map(|&p| (p, 0usize)).collect();
    let bound = ra.preds.len() + 1;
    loop {
        let mut changed = false;
        for &(from, to, kind) in &ra.edges {
            let need = stratum.get(&to).copied().unwrap_or(0)
                + usize::from(kind == crate::analysis::recursion::HypEdge::Negative);
            let cur = stratum.get_mut(&from).expect("node registered");
            if *cur < need {
                *cur = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Defensive: cannot loop forever without a negative cycle.
        if stratum.values().any(|&s| s > bound) {
            return Err(Error::NotStratified {
                cycle: "internal: stratum bound exceeded".into(),
            });
        }
    }
    let num_strata = if ra.preds.is_empty() {
        0
    } else {
        stratum.values().copied().max().unwrap_or(0) + 1
    };
    Ok(NegationStrata {
        stratum_of: stratum,
        num_strata,
    })
}

/// Computes the *evaluation strata* used by the bottom-up engine: like
/// [`global_negation_strata`] but hypothetical dependencies between
/// *different* recursion classes are also strict.
///
/// Any assignment with positive edges non-strict and negative edges strict
/// is a sound evaluation order; tightening cross-class hypothetical edges
/// keeps rules *above* a hypothetical goal out of the fixpoints of
/// augmented databases — so `bridge(X,Y) ← reach(a,d)[add: edge(X,Y)]`
/// never re-fires itself inside the databases it creates. Hypothetical
/// recursion *within* one class (Example 6's EVEN/ODD) stays in one
/// stratum, as it must.
pub fn evaluation_strata(rb: &Rulebase) -> Result<NegationStrata> {
    let ra = RecursionAnalysis::new(rb);
    if let Some((f, t)) = ra.negation_in_cycle() {
        return Err(Error::NotStratified {
            cycle: format!("predicate #{} negates #{} inside a cycle", f.0, t.0),
        });
    }
    use crate::analysis::recursion::HypEdge;
    let mut stratum: FxHashMap<Symbol, usize> = ra.preds.iter().map(|&p| (p, 0usize)).collect();
    let bound = 2 * ra.preds.len() + 2;
    loop {
        let mut changed = false;
        for &(from, to, kind) in &ra.edges {
            let strict = match kind {
                HypEdge::Positive => false,
                HypEdge::Negative => true,
                HypEdge::Hypothetical => !ra.mutually_recursive(from, to),
            };
            let need = stratum.get(&to).copied().unwrap_or(0) + usize::from(strict);
            let cur = stratum.get_mut(&from).expect("node registered");
            if *cur < need {
                *cur = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if stratum.values().any(|&s| s > bound) {
            return Err(Error::NotStratified {
                cycle: "internal: evaluation stratum bound exceeded".into(),
            });
        }
    }
    let num_strata = if ra.preds.is_empty() {
        0
    } else {
        stratum.values().copied().max().unwrap_or(0) + 1
    };
    Ok(NegationStrata {
        stratum_of: stratum,
        num_strata,
    })
}

/// One stratum `Δᵢ ∪ Σᵢ` (Definition 7), holding rule indices into the
/// originating [`Rulebase`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stratum {
    /// Rules of the lower, Horn-with-negation part `Δᵢ = R₂ᵢ₋₁`.
    pub delta: Vec<usize>,
    /// Rules of the upper, hypothetical part `Σᵢ = R₂ᵢ`.
    pub sigma: Vec<usize>,
}

/// A linear stratification (Definition 9) of a rulebase.
#[derive(Debug, Clone)]
pub struct LinearStratification {
    /// Partition number per predicate (1-based, as in Definition 6).
    pub part_of: FxHashMap<Symbol, usize>,
    /// Strata in order; `strata[i]` is stratum `i+1`.
    pub strata: Vec<Stratum>,
    /// Iterations of the relaxation algorithm's outer loop (Lemma 1 claims
    /// `O(m²)`; experiment E5 measures this).
    pub relaxation_iterations: usize,
    /// The mutual-recursion analysis used.
    pub recursion: RecursionAnalysis,
}

impl LinearStratification {
    /// Number of strata `k` (each stratum is one `(Δᵢ, Σᵢ)` pair).
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Partition number of `p` (0 for predicates without rules; such
    /// predicates behave as EDB input and live below every stratum).
    pub fn part(&self, p: Symbol) -> usize {
        self.part_of.get(&p).copied().unwrap_or(0)
    }

    /// The stratum index (1-based) of `p`: `⌈part / 2⌉`.
    pub fn stratum(&self, p: Symbol) -> usize {
        self.part(p).div_ceil(2)
    }

    /// Whether `p` is defined in a `Σ` (even) partition.
    pub fn in_sigma(&self, p: Symbol) -> bool {
        let part = self.part(p);
        part > 0 && part.is_multiple_of(2)
    }
}

/// Occurrence conditions of Definition 6 for a predicate placed in
/// partition `part`, given the partitions of the predicates its definition
/// mentions. Returns the smallest partition `≥ part` at which all
/// conditions hold.
fn required_part(rules: &[&HypRule], part_of: &FxHashMap<Symbol, usize>, part: usize) -> usize {
    let mut p = part.max(1);
    loop {
        let even = p.is_multiple_of(2);
        let mut ok = true;
        'rules: for rule in rules {
            for premise in &rule.premises {
                let (q, strict) = match premise {
                    // Positive occurrences: defined at or below, always.
                    Premise::Atom(a) => (a.pred, false),
                    // Negative occurrences: strictly below when the rule
                    // sits in an even (Σ) segment; within a Δ segment the
                    // intra-Δ stratified-negation check handles ordering.
                    Premise::Neg(a) => (a.pred, even),
                    // Hypothetical occurrences: strictly below when the
                    // rule sits in an odd (Δ) segment; even segments allow
                    // hypothetical recursion — unless the premise carries a
                    // `del:` list, which is negation-like (the goal's facts
                    // must be *absent*) and is strict everywhere.
                    Premise::Hyp { goal, dels, .. } => (goal.pred, !even || !dels.is_empty()),
                };
                let qp = part_of.get(&q).copied().unwrap_or(0);
                if qp > p || (strict && qp == p) {
                    ok = false;
                    break 'rules;
                }
            }
        }
        if ok {
            return p;
        }
        p += 1;
    }
}

/// Decides linear stratifiability and constructs a stratification
/// (Lemma 1).
pub fn linear_stratification(rb: &Rulebase) -> Result<LinearStratification> {
    let ra = RecursionAnalysis::new(rb);

    // Decision test 1: no equivalence class may have recursion through
    // negation.
    if let Some((f, t)) = ra.negation_in_cycle() {
        return Err(Error::NotStratified {
            cycle: format!("predicate #{} negates #{} inside a cycle", f.0, t.0),
        });
    }

    // Decision test 2: no class may have both hypothetical recursion and
    // non-linear recursion.
    let mut class_hyp_recursive = vec![false; ra.num_classes];
    let mut class_nonlinear = vec![false; ra.num_classes];
    for rule in rb.iter() {
        let Some(head_class) = ra.class(rule.head.pred) else {
            continue;
        };
        for premise in &rule.premises {
            if let Premise::Hyp { goal, .. } = premise {
                if ra.mutually_recursive(rule.head.pred, goal.pred) {
                    class_hyp_recursive[head_class] = true;
                }
            }
        }
        if let RuleRecursion::NonLinear(_) = rule_recursion(rule, &ra) {
            class_nonlinear[head_class] = true;
        }
    }
    for c in 0..ra.num_classes {
        if class_hyp_recursive[c] && class_nonlinear[c] {
            let member = ra
                .preds
                .iter()
                .find(|&&p| ra.class(p) == Some(c))
                .copied()
                .map(|p| p.0)
                .unwrap_or(0);
            return Err(Error::NotLinearlyStratified {
                reason: format!(
                    "the recursion class of predicate #{member} mixes hypothetical \
                     recursion with non-linear recursion (Definition 9)"
                ),
            });
        }
    }

    // Construction: the Definition 6 relaxation, shared with
    // h_stratification.
    let (part_of, strata, iterations) = relaxation(rb)?;

    // Mutually recursive predicates must share a partition (they are one
    // definition unit); the relaxation guarantees this, assert in debug.
    debug_assert!(rb.iter().all(|r| rb.iter().all(|q| {
        !ra.mutually_recursive(r.head.pred, q.head.pred)
            || part_of[&r.head.pred] == part_of[&q.head.pred]
    })));

    Ok(LinearStratification {
        part_of,
        strata,
        relaxation_iterations: iterations,
        recursion: ra,
    })
}

/// An H-stratification (Definition 6) without the Definition 9 linearity
/// and intra-Δ conditions — the weaker notion the paper contrasts with
/// linear stratification (Example 10 is H-stratified but not linearly
/// stratified).
#[derive(Debug, Clone)]
pub struct HStratification {
    /// Partition number per predicate (1-based).
    pub part_of: FxHashMap<Symbol, usize>,
    /// Strata `(Δᵢ, Σᵢ)` in order.
    pub strata: Vec<Stratum>,
    /// Relaxation sweeps used.
    pub relaxation_iterations: usize,
}

impl HStratification {
    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Partition of `p` (0 = no rules / EDB).
    pub fn part(&self, p: Symbol) -> usize {
        self.part_of.get(&p).copied().unwrap_or(0)
    }
}

/// Computes an H-stratification (Definition 6) by relaxation, without
/// requiring linearity or stratified negation inside Δ segments.
///
/// Not every rulebase is H-stratifiable: a mutual-recursion class that
/// combines a hypothetical occurrence with a negative one (e.g.
/// `a ← b[add:c]. b ← ~a.`) has no partition satisfying the conditions,
/// and the relaxation reports it.
pub fn h_stratification(rb: &Rulebase) -> Result<HStratification> {
    let (part_of, strata, relaxation_iterations) = relaxation(rb)?;
    Ok(HStratification {
        part_of,
        strata,
        relaxation_iterations,
    })
}

/// The Definition 6 relaxation: least partition assignment satisfying
/// the occurrence conditions. Fails (`NotLinearlyStratified` with an
/// H-stratification message) if no assignment exists.
#[allow(clippy::type_complexity)]
fn relaxation(rb: &Rulebase) -> Result<(FxHashMap<Symbol, usize>, Vec<Stratum>, usize)> {
    // Only predicates with definitions participate; rule-less predicates
    // stay in implicit partition 0 (EDB).
    let defined: Vec<Symbol> = {
        let mut v: Vec<Symbol> = rb.iter().map(|r| r.head.pred).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut defs: FxHashMap<Symbol, Vec<&HypRule>> = FxHashMap::default();
    for rule in rb.iter() {
        defs.entry(rule.head.pred).or_default().push(rule);
    }
    let mut part_of: FxHashMap<Symbol, usize> = defined.iter().map(|&p| (p, 1usize)).collect();
    let cap = 2 * defined.len() + 2;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        for &p in &defined {
            let cur = part_of[&p];
            let need = required_part(&defs[&p], &part_of, cur);
            if need > cur {
                // The paper increments by 1 per pass; jumping straight to
                // the locally required partition computes the same least
                // fixpoint in fewer sweeps.
                part_of.insert(p, need.min(cap));
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if part_of.values().any(|&v| v >= cap) {
            return Err(Error::NotLinearlyStratified {
                reason: "no partition satisfies the Definition 6 conditions                          (not H-stratifiable)"
                    .into(),
            });
        }
    }

    // Assemble strata: stratum i holds Δᵢ = R₂ᵢ₋₁ and Σᵢ = R₂ᵢ.
    let max_part = part_of.values().copied().max().unwrap_or(0);
    let num_strata = max_part.div_ceil(2);
    let mut strata = vec![Stratum::default(); num_strata];
    for (idx, rule) in rb.iter().enumerate() {
        let part = part_of[&rule.head.pred];
        let stratum = part.div_ceil(2);
        if part % 2 == 1 {
            strata[stratum - 1].delta.push(idx);
        } else {
            strata[stratum - 1].sigma.push(idx);
        }
    }
    Ok((part_of, strata, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use hdl_base::SymbolTable;

    fn strat(src: &str) -> (Result<LinearStratification>, SymbolTable) {
        let mut syms = SymbolTable::new();
        let rb = parse_program(src, &mut syms).unwrap();
        (linear_stratification(&rb), syms)
    }

    #[test]
    fn example_9_has_three_strata() {
        let (ls, syms) = strat(
            "a3 :- b3, a3[add: c3].
             a3 :- d3, ~a2.
             a2 :- b2, a2[add: c2].
             a2 :- d2, ~a1.
             a1 :- b1, a1[add: c1].
             a1 :- d1.",
        );
        let ls = ls.expect("Example 9 is linearly stratified");
        assert_eq!(ls.num_strata(), 3);
        for (name, stratum) in [("a1", 1), ("a2", 2), ("a3", 3)] {
            let p = syms.lookup(name).unwrap();
            assert_eq!(ls.stratum(p), stratum, "{name}");
            assert!(ls.in_sigma(p), "{name} sits in a Σ segment");
        }
    }

    #[test]
    fn example_10_is_rejected() {
        // H-stratified but not linearly stratified: Σ₂ has a rule of form
        // (2) and Δ₂ has recursion through negation.
        let (ls, _) = strat(
            "a2 :- a2[add: e2], a2[add: f2].
             a2 :- ~b2.
             b2 :- ~c2, b2.
             c2 :- ~d2, c2.
             d2 :- a1[add: g1].
             a1 :- a1[add: e1].
             a1 :- a1[add: f1].
             a1 :- ~b1.",
        );
        assert!(ls.is_err());
    }

    #[test]
    fn parity_rulebase_is_one_stratum() {
        // Example 6: EVEN/ODD in Σ₁, SELECT in Δ₁.
        let (ls, syms) = strat(
            "even :- select(X), odd[add: b(X)].
             odd :- select(X), even[add: b(X)].
             even :- ~select(X).
             select(X) :- a(X), ~b(X).",
        );
        let ls = ls.unwrap();
        assert_eq!(ls.num_strata(), 1);
        let even = syms.lookup("even").unwrap();
        let select = syms.lookup("select").unwrap();
        assert!(ls.in_sigma(even));
        assert!(!ls.in_sigma(select));
        assert_eq!(ls.part(select), 1);
        assert_eq!(ls.part(even), 2);
    }

    #[test]
    fn hamiltonian_rulebase_is_one_stratum() {
        // Example 7.
        let (ls, syms) = strat(
            "yes :- node(X), path(X)[add: pnode(X)].
             path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
             path(X) :- ~select(Y).
             select(Y) :- node(Y), ~pnode(Y).",
        );
        let ls = ls.unwrap();
        assert_eq!(ls.num_strata(), 1);
        let path = syms.lookup("path").unwrap();
        assert!(ls.in_sigma(path));
    }

    #[test]
    fn example_8_negated_yes_forces_second_stratum() {
        // Adding `no :- ~yes.` to Example 7 lifts `no` above `yes`:
        // a Σ-definition may only be negated from a strictly higher part.
        let (ls, syms) = strat(
            "yes :- node(X), path(X)[add: pnode(X)].
             path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
             path(X) :- ~select(Y).
             select(Y) :- node(Y), ~pnode(Y).
             no :- ~yes.",
        );
        let ls = ls.unwrap();
        let yes = syms.lookup("yes").unwrap();
        let no = syms.lookup("no").unwrap();
        assert!(ls.part(no) > ls.part(yes));
        assert_eq!(ls.num_strata(), 2, "NO lands in Δ₂");
        assert!(!ls.in_sigma(no));
    }

    #[test]
    fn plain_horn_stays_in_delta_1() {
        let (ls, syms) = strat(
            "tc(X, Y) :- e(X, Y).
             tc(X, Z) :- tc(X, Y), tc(Y, Z).",
        );
        // Non-linear recursion is fine in Δ (Horn) segments.
        let ls = ls.unwrap();
        let tc = syms.lookup("tc").unwrap();
        assert_eq!(ls.part(tc), 1);
        assert_eq!(ls.num_strata(), 1);
        assert!(!ls.in_sigma(tc));
    }

    #[test]
    fn recursion_through_negation_rejected() {
        let (ls, _) = strat("a :- ~b.\nb :- ~a.");
        assert!(matches!(ls, Err(Error::NotStratified { .. })));
    }

    #[test]
    fn hyp_plus_nonlinear_in_one_class_rejected() {
        let (ls, _) = strat(
            "a :- b, d1, d2.
             d1 :- a[add: c1].
             d2 :- a[add: c2].",
        );
        assert!(matches!(ls, Err(Error::NotLinearlyStratified { .. })));
    }

    #[test]
    fn hyp_with_negation_can_share_the_sigma_segment() {
        // `d :- a1[add: g], ~other.` is the §5.1.3 oracle-invocation shape:
        // a hypothetical premise plus negation of something strictly below.
        // The minimal Definition-6 partition puts d in the same Σ segment
        // as a1 (negating part-1 `other` from part 2 is strictly below).
        let (ls, syms) = strat(
            "a1 :- a1[add: c1].
             a1 :- base.
             d :- a1[add: g], ~other.
             other :- base2.",
        );
        let ls = ls.unwrap();
        let a1 = syms.lookup("a1").unwrap();
        let d = syms.lookup("d").unwrap();
        let other = syms.lookup("other").unwrap();
        assert!(ls.in_sigma(a1));
        assert!(ls.in_sigma(d));
        assert_eq!(ls.stratum(d), ls.stratum(a1));
        assert!(
            ls.part(other) < ls.part(d),
            "negated predicate strictly below"
        );
        assert_eq!(ls.num_strata(), 1);
    }

    #[test]
    fn hyp_goal_in_delta_forces_next_stratum() {
        // A Δ-shaped rule (negation of a predicate in the *same* odd
        // segment would be fine, but) whose hypothetical goal is a Σ
        // predicate must sit strictly above that Σ: here `d` negates a
        // predicate that itself negates d's... simpler: force d odd by
        // making it the target of intra-Δ negation from a sibling.
        let (ls, syms) = strat(
            "a1 :- a1[add: c1].
             a1 :- base.
             d :- a1[add: g].
             e :- ~d, d2.
             d2 :- ~e2.
             e2 :- d[add: z].",
        );
        let ls = ls.unwrap();
        let a1 = syms.lookup("a1").unwrap();
        let e2 = syms.lookup("e2").unwrap();
        let d = syms.lookup("d").unwrap();
        // e2 queries d hypothetically; whatever segment e2 lands in, it is
        // at or above d's, and a1 stays at the bottom Σ.
        assert!(ls.part(e2) >= ls.part(d));
        assert!(ls.part(d) >= ls.part(a1));
        assert!(ls.in_sigma(a1));
    }

    #[test]
    fn del_recursion_is_rejected_like_negation() {
        let (ls, _) = strat("p :- p[del: c].");
        assert!(matches!(ls, Err(Error::NotStratified { .. })));
        let (ls, _) = strat("a :- b[del: c].\nb :- a.");
        assert!(matches!(ls, Err(Error::NotStratified { .. })));
    }

    #[test]
    fn del_goal_sits_strictly_below_even_in_sigma() {
        // A del-carrying premise is negation-like: its goal must be
        // defined strictly below, even inside a Σ segment where plain
        // hypothetical recursion would be allowed.
        let (ls, syms) = strat(
            "a1 :- a1[add: c1].
             a1 :- base.
             d :- a1[add: g, del: c1].",
        );
        let ls = ls.unwrap();
        let a1 = syms.lookup("a1").unwrap();
        let d = syms.lookup("d").unwrap();
        assert!(ls.part(d) > ls.part(a1), "del: goal strictly below");
        let ns = {
            let mut syms2 = SymbolTable::new();
            let rb = parse_program(
                "a1 :- a1[add: c1].
                 a1 :- base.
                 d :- a1[add: g, del: c1].",
                &mut syms2,
            )
            .unwrap();
            global_negation_strata(&rb).unwrap()
        };
        assert_eq!(ns.num_strata, 2, "global strata are strict across del:");
    }

    #[test]
    fn global_negation_strata_orders_negation() {
        let mut syms = SymbolTable::new();
        let rb = parse_program(
            "p :- ~q.
             q :- r[add: c].
             r :- base.",
            &mut syms,
        )
        .unwrap();
        let ns = global_negation_strata(&rb).unwrap();
        let p = syms.lookup("p").unwrap();
        let q = syms.lookup("q").unwrap();
        let r = syms.lookup("r").unwrap();
        assert!(ns.stratum(p) > ns.stratum(q));
        assert_eq!(ns.stratum(q), ns.stratum(r));
        assert_eq!(ns.num_strata, 2);
    }

    #[test]
    fn global_strata_reject_negative_cycles() {
        let mut syms = SymbolTable::new();
        let rb = parse_program("a :- b[add: c].\nb :- ~a.", &mut syms).unwrap();
        assert!(global_negation_strata(&rb).is_err());
    }

    #[test]
    fn relaxation_iteration_count_is_small() {
        let (ls, _) = strat(
            "a3 :- b3, a3[add: c3].
             a3 :- d3, ~a2.
             a2 :- b2, a2[add: c2].
             a2 :- d2, ~a1.
             a1 :- b1, a1[add: c1].
             a1 :- d1.",
        );
        let ls = ls.unwrap();
        // Lemma 1 bounds the outer loop by O(m²); with jump-relaxation the
        // count is far smaller, but certainly within the bound.
        let m = ls.part_of.len();
        assert!(ls.relaxation_iterations <= m * m + 2);
    }
}

#[cfg(test)]
mod h_tests {
    use super::*;
    use crate::parser::parse_program;
    use hdl_base::SymbolTable;

    #[test]
    fn example_10_is_h_stratified_but_not_linear() {
        let mut syms = SymbolTable::new();
        let rb = parse_program(
            "a2 :- a2[add: e2], a2[add: f2].
             a2 :- ~b2.
             b2 :- ~c2, b2.
             c2 :- ~d2, c2.
             d2 :- a1[add: g1].
             a1 :- a1[add: e1].
             a1 :- a1[add: f1].
             a1 :- ~b1.",
            &mut syms,
        )
        .unwrap();
        let h = h_stratification(&rb).expect("Example 10 is H-stratified");
        assert_eq!(h.num_strata(), 2, "the paper says two strata");
        let a1 = syms.lookup("a1").unwrap();
        let a2 = syms.lookup("a2").unwrap();
        let d2 = syms.lookup("d2").unwrap();
        assert!(h.part(a2) > h.part(a1));
        // The paper's displayed partition puts d2 in Δ₂; the *least*
        // Definition-6 partition may place it in Σ₁ (even segments do not
        // constrain hypothetical occurrences of lower predicates). Both
        // satisfy Definition 6.
        assert!(h.part(d2) >= h.part(a1));
        // …but linear stratification rejects it.
        assert!(linear_stratification(&rb).is_err());
    }

    #[test]
    fn hyp_neg_mutual_recursion_is_not_h_stratifiable() {
        let mut syms = SymbolTable::new();
        let rb = parse_program("a :- b[add: c].\nb :- ~a.", &mut syms).unwrap();
        assert!(h_stratification(&rb).is_err());
    }

    #[test]
    fn h_stratification_matches_linear_when_linear_exists() {
        let mut syms = SymbolTable::new();
        let rb = parse_program(
            "a2 :- b2, a2[add: c2].
             a2 :- d2, ~a1.
             a1 :- a1[add: c1].
             a1 :- d1.",
            &mut syms,
        )
        .unwrap();
        let h = h_stratification(&rb).unwrap();
        let l = linear_stratification(&rb).unwrap();
        assert_eq!(h.part_of, l.part_of, "same least Definition-6 partition");
    }
}
