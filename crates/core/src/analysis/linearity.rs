//! Linearity of hypothetical rules (Definition 8).
//!
//! A rule `B ← φ₁,…,φₙ` is *recursive* if some premise mentions (positively
//! or hypothetically) a predicate mutually recursive with `B`, and *linear*
//! if there is exactly one such occurrence. A set of rules is linear iff
//! every recursive rule is linear. Linearity is what caps `PROVE_Σᵢ`'s goal
//! sequences at polynomial length (Theorem 3): each recursive expansion
//! spawns at most one goal in the same equivalence class.

use crate::analysis::recursion::RecursionAnalysis;
use crate::ast::{HypRule, Premise};

/// Classification of a single rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RuleRecursion {
    /// No premise is mutually recursive with the head.
    NonRecursive,
    /// Exactly one premise occurrence is mutually recursive with the head.
    Linear,
    /// Two or more premise occurrences are mutually recursive with the
    /// head, with the count.
    NonLinear(usize),
}

/// Counts the premise occurrences mutually recursive with the head and
/// classifies the rule per Definition 8.
///
/// Negative occurrences are included in the count: recursion through
/// negation also makes a rule recursive (such rules are rejected earlier by
/// the stratifiability test, but the classification stays faithful).
pub fn rule_recursion(rule: &HypRule, ra: &RecursionAnalysis) -> RuleRecursion {
    let head = rule.head.pred;
    let mut count = 0usize;
    for p in &rule.premises {
        let goal_pred = match p {
            Premise::Atom(a) | Premise::Neg(a) => a.pred,
            Premise::Hyp { goal, .. } => goal.pred,
        };
        if ra.mutually_recursive(head, goal_pred) {
            count += 1;
        }
    }
    match count {
        0 => RuleRecursion::NonRecursive,
        1 => RuleRecursion::Linear,
        n => RuleRecursion::NonLinear(n),
    }
}

/// Whether `rule` is linear (non-recursive rules are trivially linear —
/// "a set of rules is linear iff every *recursive* rule is linear").
pub fn is_linear_rule(rule: &HypRule, ra: &RecursionAnalysis) -> bool {
    !matches!(rule_recursion(rule, ra), RuleRecursion::NonLinear(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Rulebase;
    use crate::parser::parse_program;
    use hdl_base::SymbolTable;

    fn setup(src: &str) -> (Rulebase, RecursionAnalysis) {
        let mut syms = SymbolTable::new();
        let rb = parse_program(src, &mut syms).unwrap();
        let ra = RecursionAnalysis::new(&rb);
        (rb, ra)
    }

    #[test]
    fn plain_linear_recursion() {
        let (rb, ra) = setup("p(X) :- e(X, Y), p(Y).\np(X) :- base(X).");
        assert_eq!(rule_recursion(&rb.rules[0], &ra), RuleRecursion::Linear);
        assert_eq!(
            rule_recursion(&rb.rules[1], &ra),
            RuleRecursion::NonRecursive
        );
        assert!(rb.rules.iter().all(|r| is_linear_rule(r, &ra)));
    }

    #[test]
    fn form_2_rules_are_nonlinear() {
        // The paper's rule form (2): A ← B, A[add:C1], A[add:C2].
        let (rb, ra) = setup("a :- b, a[add: c1], a[add: c2].");
        assert_eq!(
            rule_recursion(&rb.rules[0], &ra),
            RuleRecursion::NonLinear(2)
        );
        assert!(!is_linear_rule(&rb.rules[0], &ra));
    }

    #[test]
    fn hidden_nonlinearity_through_helpers() {
        // The paper's n+1 rule example after Definition 7: each rule looks
        // linear, but D1/D2 route recursion back to A, making the class
        // {A, D1, D2} jointly recursive; the A-rule has two occurrences of
        // class members.
        let (rb, ra) = setup(
            "a :- b, d1, d2.
             d1 :- a[add: c1].
             d2 :- a[add: c2].",
        );
        assert_eq!(
            rule_recursion(&rb.rules[0], &ra),
            RuleRecursion::NonLinear(2)
        );
        assert_eq!(rule_recursion(&rb.rules[1], &ra), RuleRecursion::Linear);
    }

    #[test]
    fn mutual_recursion_is_linear_when_single_occurrence() {
        // Example 6: EVEN/ODD flip-flop — one recursive occurrence each.
        let (rb, ra) = setup(
            "even :- select(X), odd[add: b(X)].
             odd :- select(X), even[add: b(X)].
             even :- ~select(X).
             select(X) :- a(X), ~b(X).",
        );
        for r in rb.iter() {
            assert!(is_linear_rule(r, &ra));
        }
        assert_eq!(rule_recursion(&rb.rules[0], &ra), RuleRecursion::Linear);
        assert_eq!(
            rule_recursion(&rb.rules[2], &ra),
            RuleRecursion::NonRecursive,
            "even :- ~select(X) has no recursive premise"
        );
    }

    #[test]
    fn two_positive_recursive_occurrences_are_nonlinear() {
        // Nonlinear transitive closure: tc(X,Z) :- tc(X,Y), tc(Y,Z).
        let (rb, ra) = setup("tc(X, Z) :- tc(X, Y), tc(Y, Z).\ntc(X, Y) :- e(X, Y).");
        assert_eq!(
            rule_recursion(&rb.rules[0], &ra),
            RuleRecursion::NonLinear(2)
        );
    }
}
