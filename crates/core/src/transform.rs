//! Program transformations: inner-negation elimination and grounding.
//!
//! - [`eliminate_inner_negation`] — the paper's §3.1 remark in executable
//!   form: a premise `~A` whose variables occur nowhere else reads as
//!   ¬∃; introducing `aux(outer̄) ← A(…)` and negating `aux` instead
//!   makes every negated premise variable-closed under the outer
//!   substitution. (The paper uses the same move to reduce `~A[add:B]`
//!   to atomic negation.)
//! - [`ground_program`] — Definition 3 made literal: instantiate every
//!   rule with every ground substitution over `dom(R, DB)`. The result
//!   is a propositional-by-construction rulebase that any engine
//!   evaluates identically to the original — a fourth, independent
//!   evaluation path used as a cross-check oracle in the test suite.

use crate::analysis::stratify::global_negation_strata;
use crate::ast::{HypRule, Premise, Rulebase};
use hdl_base::{Atom, Bindings, Database, Error, Result, Symbol, SymbolTable, Term, Var};

/// Replaces every negated premise containing *inner-existential*
/// variables (occurring nowhere else in the rule) by a negated auxiliary
/// predicate parameterized over the premise's other variables.
///
/// The output program has the same meaning and no inner-negation
/// variables, so a grounding of it needs no ¬∃ special-casing.
pub fn eliminate_inner_negation(rb: &Rulebase, syms: &mut SymbolTable) -> Rulebase {
    let mut out = Rulebase::new();
    let mut aux_count = 0usize;
    for rule in rb.iter() {
        let mut new_premises = Vec::with_capacity(rule.premises.len());
        for (idx, premise) in rule.premises.iter().enumerate() {
            let Premise::Neg(atom) = premise else {
                new_premises.push(premise.clone());
                continue;
            };
            // Inner vars: occur in this premise and nowhere else.
            let inner: Vec<Var> = {
                let mut inner = Vec::new();
                for v in atom.vars() {
                    if inner.contains(&v) {
                        continue;
                    }
                    let in_head = rule.head.vars().any(|h| h == v);
                    let elsewhere = rule
                        .premises
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != idx)
                        .any(|(_, p)| p.vars().any(|o| o == v));
                    if !in_head && !elsewhere {
                        inner.push(v);
                    }
                }
                inner
            };
            if inner.is_empty() {
                new_premises.push(premise.clone());
                continue;
            }
            // aux(outer̄) :- A(args).   …and use ~aux(outer̄).
            let outer: Vec<Var> = {
                let mut outer = Vec::new();
                for v in atom.vars() {
                    if !inner.contains(&v) && !outer.contains(&v) {
                        outer.push(v);
                    }
                }
                outer
            };
            let aux = syms.intern(&format!("exists_aux_{aux_count}"));
            aux_count += 1;
            // The aux rule renumbers its variables densely.
            let mut renumber: Vec<Option<Var>> = vec![None; rule.num_vars];
            let mut next = 0u32;
            let mut map = |v: Var, renumber: &mut Vec<Option<Var>>| -> Var {
                if let Some(m) = renumber[v.index()] {
                    return m;
                }
                let m = Var(next);
                next += 1;
                renumber[v.index()] = Some(m);
                m
            };
            let aux_head_args: Vec<Term> = outer
                .iter()
                .map(|&v| Term::Var(map(v, &mut renumber)))
                .collect();
            let body_args: Vec<Term> = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(map(*v, &mut renumber)),
                    c => *c,
                })
                .collect();
            out.push(HypRule::new(
                Atom::new(aux, aux_head_args),
                vec![Premise::Atom(Atom::new(atom.pred, body_args))],
            ));
            new_premises.push(Premise::Neg(Atom::new(
                aux,
                outer.iter().map(|&v| Term::Var(v)).collect(),
            )));
        }
        out.push(HypRule::new(rule.head.clone(), new_premises));
    }
    out
}

/// Grounds `rb` over `dom(rb, db)`, instantiating each rule with every
/// total substitution. Fails (with `LimitExceeded`) if the instance
/// count would exceed `max_instances`.
///
/// The input should be free of inner-negation variables (run
/// [`eliminate_inner_negation`] first); otherwise a ¬∃ premise would be
/// split into independent ground instances, changing its meaning — this
/// function rejects such programs.
pub fn ground_program(rb: &Rulebase, db: &Database, max_instances: u64) -> Result<Rulebase> {
    // Reject remaining inner-negation variables.
    for rule in rb.iter() {
        for (idx, premise) in rule.premises.iter().enumerate() {
            if let Premise::Neg(atom) = premise {
                for v in atom.vars() {
                    let in_head = rule.head.vars().any(|h| h == v);
                    let elsewhere = rule
                        .premises
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != idx)
                        .any(|(_, p)| p.vars().any(|o| o == v));
                    if !in_head && !elsewhere {
                        return Err(Error::Invalid(
                            "ground_program: eliminate inner-negation variables first".into(),
                        ));
                    }
                }
            }
        }
    }
    let mut domain: Vec<Symbol> = db.constants().into_iter().collect();
    domain.extend(rb.constants());
    domain.sort_unstable();
    domain.dedup();

    // Instance budget check.
    let mut total: u64 = 0;
    for rule in rb.iter() {
        let count = (domain.len() as u64)
            .checked_pow(rule.num_vars as u32)
            .unwrap_or(u64::MAX);
        total = total.saturating_add(count.max(1));
    }
    if total > max_instances {
        return Err(Error::LimitExceeded {
            what: "ground instances".into(),
            limit: max_instances,
        });
    }

    let mut out = Rulebase::new();
    for rule in rb.iter() {
        let mut bindings = Bindings::new(rule.num_vars);
        ground_rule(rule, &domain, 0, &mut bindings, &mut out);
    }
    // The grounded program must still stratify (it does iff the original
    // did); check now so engines don't have to.
    global_negation_strata(&out)?;
    Ok(out)
}

fn ground_rule(
    rule: &HypRule,
    domain: &[Symbol],
    var: usize,
    bindings: &mut Bindings,
    out: &mut Rulebase,
) {
    if var == rule.num_vars {
        let subst_atom = |a: &Atom| -> Atom {
            Atom::new(
                a.pred,
                a.args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => Term::Const(bindings.get(*v).expect("total substitution")),
                        c => *c,
                    })
                    .collect(),
            )
        };
        let premises = rule
            .premises
            .iter()
            .map(|p| match p {
                Premise::Atom(a) => Premise::Atom(subst_atom(a)),
                Premise::Neg(a) => Premise::Neg(subst_atom(a)),
                Premise::Hyp { goal, adds, dels } => Premise::Hyp {
                    goal: subst_atom(goal),
                    adds: adds.iter().map(&subst_atom).collect(),
                    dels: dels.iter().map(&subst_atom).collect(),
                },
            })
            .collect();
        out.push(HypRule::new(subst_atom(&rule.head), premises));
        return;
    }
    if domain.is_empty() {
        return; // rules with variables are vacuous over an empty domain
    }
    for &c in domain {
        bindings.set(Var(var as u32), c);
        ground_rule(rule, domain, var + 1, bindings, out);
    }
    bindings.unset(Var(var as u32));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BottomUpEngine, TopDownEngine};
    use crate::parser::{parse_program, parse_query, split_facts};

    fn cross_check(src: &str, queries: &[&str]) {
        let mut syms = SymbolTable::new();
        let program = parse_program(src, &mut syms).unwrap();
        let (rules, facts) = split_facts(program);
        let db: Database = facts.into_iter().collect();

        let normalized = eliminate_inner_negation(&rules, &mut syms);
        let grounded = ground_program(&normalized, &db, 1_000_000).unwrap();

        let mut original = TopDownEngine::new(&rules, &db).unwrap();
        let mut via_ground = BottomUpEngine::new(&grounded, &db).unwrap();
        for q in queries {
            let query = parse_query(q, &mut syms).unwrap();
            assert_eq!(
                original.holds(&query).unwrap(),
                via_ground.holds(&query).unwrap(),
                "grounded evaluation disagrees on {q}"
            );
        }
    }

    #[test]
    fn grounding_preserves_horn_semantics() {
        cross_check(
            "e(a, b). e(b, c).
             tc(X, Y) :- e(X, Y).
             tc(X, Z) :- e(X, Y), tc(Y, Z).",
            &["?- tc(a, c).", "?- tc(c, a).", "?- tc(b, c)."],
        );
    }

    #[test]
    fn grounding_preserves_parity_semantics() {
        for n in 0..4 {
            let mut src = String::from(
                "even :- select(X), odd[add: b(X)].
                 odd :- select(X), even[add: b(X)].
                 even :- ~select(X).
                 select(X) :- a(X), ~b(X).\n",
            );
            for i in 0..n {
                src.push_str(&format!("a(t{i}).\n"));
            }
            cross_check(&src, &["?- even.", "?- odd."]);
        }
    }

    #[test]
    fn normalization_makes_negation_variable_closed() {
        let mut syms = SymbolTable::new();
        let rb = parse_program("path(X) :- ~select(Y).", &mut syms).unwrap();
        let normalized = eliminate_inner_negation(&rb, &mut syms);
        assert_eq!(normalized.len(), 2, "aux rule + rewritten rule");
        // Second rule's negated premise is now 0-ary.
        let rewritten = &normalized.rules[1];
        let Premise::Neg(atom) = &rewritten.premises[0] else {
            panic!()
        };
        assert_eq!(atom.arity(), 0);
        // And grounding now accepts it.
        ground_program(&normalized, &Database::new(), 1000).unwrap();
    }

    #[test]
    fn normalization_keeps_outer_vars_as_parameters() {
        let mut syms = SymbolTable::new();
        // Y inner, X outer: aux(X) :- q(X, Y).
        let rb = parse_program("p(X) :- d(X), ~q(X, Y).", &mut syms).unwrap();
        let normalized = eliminate_inner_negation(&rb, &mut syms);
        let aux_rule = &normalized.rules[0];
        assert_eq!(aux_rule.head.arity(), 1);
        assert_eq!(aux_rule.premises.len(), 1);
        // Semantics preserved.
        cross_check(
            "d(a). d(b). q(a, z).
             p(X) :- d(X), ~q(X, Y).",
            &["?- p(a).", "?- p(b)."],
        );
    }

    #[test]
    fn grounding_rejects_unnormalized_programs() {
        let mut syms = SymbolTable::new();
        let rb = parse_program("path(X) :- ~select(Y).", &mut syms).unwrap();
        let mut db = Database::new();
        let d = syms.intern("dconst");
        let p = syms.intern("seed");
        db.insert(hdl_base::GroundAtom::new(p, vec![d]));
        assert!(matches!(
            ground_program(&rb, &db, 1000),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn grounding_respects_the_instance_budget() {
        let mut syms = SymbolTable::new();
        let rb = parse_program(
            "p(V, W, X, Y, Z) :- q(V, W, X, Y, Z).
             q(a, b, c, d, e).",
            &mut syms,
        )
        .unwrap();
        let (rules, facts) = split_facts(rb);
        let db: Database = facts.into_iter().collect();
        // 5 constants, 5 vars → 3125 instances > 100.
        assert!(ground_program(&rules, &db, 100).is_err());
        let g = ground_program(&rules, &db, 10_000).unwrap();
        assert_eq!(g.len(), 3125);
    }

    #[test]
    fn empty_domain_grounds_to_fact_rules_only() {
        let mut syms = SymbolTable::new();
        let rb = parse_program("p :- q.\nr(X) :- s(X).", &mut syms).unwrap();
        let g = ground_program(&rb, &Database::new(), 1000).unwrap();
        assert_eq!(g.len(), 1, "only the propositional rule survives");
    }
}
