//! Abstract syntax of hypothetical Datalog (Definitions 1–2 of the paper).
//!
//! A *premise* is an atom `A`, a negated atom `~A` (§3.1), or a
//! hypothetical query `A[add: B₁,…,Bₘ]`. Definition 1 gives the single-atom
//! form `A[add: B]`; the multi-atom form is the generalization the paper
//! itself uses in the §5.1.3 transition rules, which insert a control atom
//! and two cell atoms in one step. The `del:` list is the removal dual
//! (after Sáenz-Pérez's restricted hypothetical Datalog):
//! `A[add: B̄, del: C̄]` asks whether `A` is provable in
//! `(DB ∖ C̄) ∪ B̄` — deletions apply first, so a fact listed in both ends
//! up present. A *hypothetical rule* is `H ← φ₁, …, φₖ` with atomic
//! head `H`.

use hdl_base::{Atom, Symbol, Var};

/// A rule premise (Definition 1, extended with negation per §3.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Premise {
    /// `A` — provable in the current database.
    Atom(Atom),
    /// `~A` — not provable in the current database (negation as failure).
    ///
    /// Only atomic queries may be negated (the paper's simplifying
    /// assumption); `~A[add:B]` must be expressed via an auxiliary
    /// predicate `C ← A[add:B]` and `~C`.
    Neg(Atom),
    /// `A[add: B₁,…,Bₘ, del: C₁,…,Cₙ]` — `A` provable after hypothetically
    /// removing the (ground instances of the) `Cⱼ` and inserting the `Bᵢ`,
    /// in that order. At least one of the lists must be nonempty.
    Hyp {
        /// The goal to prove in the modified database.
        goal: Atom,
        /// The atoms to insert (may be empty if `dels` is not).
        adds: Vec<Atom>,
        /// The atoms to remove (may be empty if `adds` is not). Removal is
        /// negation-like for stratification: the goal's evaluation depends
        /// on facts being *absent*.
        dels: Vec<Atom>,
    },
}

impl Premise {
    /// The goal atom of this premise (the atom whose provability is
    /// tested; for `Hyp` this is the goal, not the additions).
    pub fn goal(&self) -> &Atom {
        match self {
            Premise::Atom(a) | Premise::Neg(a) => a,
            Premise::Hyp { goal, .. } => goal,
        }
    }

    /// The atoms hypothetically added by this premise (empty unless `Hyp`).
    pub fn adds(&self) -> &[Atom] {
        match self {
            Premise::Hyp { adds, .. } => adds,
            _ => &[],
        }
    }

    /// The atoms hypothetically removed by this premise (empty unless
    /// `Hyp` with a `del:` list).
    pub fn dels(&self) -> &[Atom] {
        match self {
            Premise::Hyp { dels, .. } => dels,
            _ => &[],
        }
    }

    /// Whether this premise is a negation.
    pub fn is_negative(&self) -> bool {
        matches!(self, Premise::Neg(_))
    }

    /// Whether this premise is hypothetical.
    pub fn is_hypothetical(&self) -> bool {
        matches!(self, Premise::Hyp { .. })
    }

    /// All atoms mentioned (goal, additions, removals).
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> {
        std::iter::once(self.goal())
            .chain(self.adds().iter())
            .chain(self.dels().iter())
    }

    /// All variables mentioned (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.atoms().flat_map(|a| a.vars())
    }
}

/// A hypothetical rule (Definition 2): `head ← premises`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HypRule {
    /// Atomic conclusion.
    pub head: Atom,
    /// Conjunctive premises (possibly empty: a fact schema).
    pub premises: Vec<Premise>,
    /// Number of distinct variables (densely numbered `0..num_vars`).
    pub num_vars: usize,
}

impl HypRule {
    /// Builds a rule, computing `num_vars` from the maximum variable index.
    pub fn new(head: Atom, premises: Vec<Premise>) -> Self {
        let max = head
            .vars()
            .chain(
                premises
                    .iter()
                    .flat_map(|p| p.atoms().flat_map(|a| a.vars()).collect::<Vec<_>>()),
            )
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);
        HypRule {
            head,
            premises,
            num_vars: max,
        }
    }

    /// Whether the rule body is empty.
    pub fn is_fact(&self) -> bool {
        self.premises.is_empty()
    }

    /// Predicates occurring positively (Definition 4): plain atoms `B(x̄)`.
    pub fn positive_preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.premises.iter().filter_map(|p| match p {
            Premise::Atom(a) => Some(a.pred),
            _ => None,
        })
    }

    /// Predicates occurring negatively (Definition 4): `~B(x̄)`.
    pub fn negative_preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.premises.iter().filter_map(|p| match p {
            Premise::Neg(a) => Some(a.pred),
            _ => None,
        })
    }

    /// Predicates occurring hypothetically (Definition 4): the goal `B` of
    /// `B(x̄)[add: C(ȳ)]`.
    pub fn hypothetical_preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.premises.iter().filter_map(|p| match p {
            Premise::Hyp { goal, .. } => Some(goal.pred),
            _ => None,
        })
    }

    /// Predicates of atoms appearing in `add` lists (the inserted facts).
    ///
    /// Definition 4 does not treat these as "occurrences" for
    /// stratification, but analyses and pretty-printers still need them.
    pub fn added_preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.premises
            .iter()
            .flat_map(|p| p.adds().iter().map(|a| a.pred))
    }

    /// Predicates of atoms appearing in `del` lists (the removed facts).
    ///
    /// Like `add`-list atoms these are not occurrences; but a premise
    /// carrying a `del:` list makes its *goal* occurrence negation-like
    /// (see [`crate::analysis::RecursionAnalysis`]).
    pub fn deleted_preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.premises
            .iter()
            .flat_map(|p| p.dels().iter().map(|a| a.pred))
    }

    /// Every predicate the rule mentions anywhere (head, premises, adds).
    pub fn all_preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        std::iter::once(self.head.pred)
            .chain(self.premises.iter().flat_map(|p| p.atoms().map(|a| a.pred)))
    }

    /// Whether the rule mentions any constant symbol (used by the §6
    /// constant-free genericity condition).
    pub fn mentions_constants(&self) -> bool {
        std::iter::once(&self.head)
            .chain(self.premises.iter().flat_map(|p| p.atoms()))
            .any(|a| a.args.iter().any(|t| !t.is_var()))
    }
}

/// A rulebase: an ordered collection of hypothetical rules.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Rulebase {
    /// Rules in source order.
    pub rules: Vec<HypRule>,
}

impl Rulebase {
    /// Creates an empty rulebase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: HypRule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the rulebase is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> impl Iterator<Item = &HypRule> {
        self.rules.iter()
    }

    /// The rules whose head predicate is `p` (the *definition* of `p`,
    /// Definition 5).
    pub fn definition(&self, p: Symbol) -> impl Iterator<Item = &HypRule> {
        self.rules.iter().filter(move |r| r.head.pred == p)
    }

    /// All constant symbols mentioned by any rule.
    pub fn constants(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self
            .rules
            .iter()
            .flat_map(|r| {
                std::iter::once(&r.head)
                    .chain(r.premises.iter().flat_map(|p| p.atoms()))
                    .flat_map(|a| a.args.iter().filter_map(|t| t.as_const()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the rulebase is constant-free (§6: such rulebases express
    /// only generic queries).
    pub fn is_constant_free(&self) -> bool {
        self.rules.iter().all(|r| !r.mentions_constants())
    }
}

impl FromIterator<HypRule> for Rulebase {
    fn from_iter<I: IntoIterator<Item = HypRule>>(iter: I) -> Self {
        Rulebase {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl_base::Term;

    fn s(i: u32) -> Symbol {
        Symbol(i)
    }
    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }
    fn atom(p: u32, args: &[Term]) -> Atom {
        Atom::new(s(p), args.to_vec())
    }

    #[test]
    fn premise_accessors() {
        let hyp = Premise::Hyp {
            goal: atom(0, &[v(0)]),
            adds: vec![atom(1, &[v(0)]), atom(2, &[])],
            dels: vec![atom(4, &[v(1)])],
        };
        assert_eq!(hyp.goal().pred, s(0));
        assert_eq!(hyp.adds().len(), 2);
        assert_eq!(hyp.dels().len(), 1);
        assert!(hyp.is_hypothetical());
        assert!(!hyp.is_negative());
        assert_eq!(hyp.atoms().count(), 4);

        let neg = Premise::Neg(atom(3, &[]));
        assert!(neg.is_negative());
        assert!(neg.adds().is_empty());
    }

    #[test]
    fn occurrence_classification_follows_definition_4() {
        // h :- a(X), ~b(X), c(X)[add: d(X)].
        let r = HypRule::new(
            atom(9, &[]),
            vec![
                Premise::Atom(atom(0, &[v(0)])),
                Premise::Neg(atom(1, &[v(0)])),
                Premise::Hyp {
                    goal: atom(2, &[v(0)]),
                    adds: vec![atom(3, &[v(0)])],
                    dels: vec![atom(4, &[v(0)])],
                },
            ],
        );
        assert_eq!(r.positive_preds().collect::<Vec<_>>(), vec![s(0)]);
        assert_eq!(r.negative_preds().collect::<Vec<_>>(), vec![s(1)]);
        assert_eq!(r.hypothetical_preds().collect::<Vec<_>>(), vec![s(2)]);
        assert_eq!(r.added_preds().collect::<Vec<_>>(), vec![s(3)]);
        assert_eq!(r.deleted_preds().collect::<Vec<_>>(), vec![s(4)]);
        assert_eq!(r.num_vars, 1);
    }

    #[test]
    fn definition_selects_by_head() {
        let mut rb = Rulebase::new();
        rb.push(HypRule::new(atom(0, &[]), vec![]));
        rb.push(HypRule::new(atom(1, &[]), vec![]));
        rb.push(HypRule::new(
            atom(0, &[]),
            vec![Premise::Atom(atom(1, &[]))],
        ));
        assert_eq!(rb.definition(s(0)).count(), 2);
        assert_eq!(rb.definition(s(1)).count(), 1);
        assert_eq!(rb.definition(s(7)).count(), 0);
    }

    #[test]
    fn constant_freedom() {
        let open = HypRule::new(atom(0, &[v(0)]), vec![Premise::Atom(atom(1, &[v(0)]))]);
        let closed = HypRule::new(atom(0, &[Term::Const(s(5))]), vec![]);
        let rb: Rulebase = [open.clone()].into_iter().collect();
        assert!(rb.is_constant_free());
        let rb2: Rulebase = [open, closed].into_iter().collect();
        assert!(!rb2.is_constant_free());
        assert_eq!(rb2.constants(), vec![s(5)]);
    }
}
