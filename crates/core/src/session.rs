//! A convenience façade: load programs and ask queries as text.
//!
//! [`Session`] owns the symbol table, rulebase, and database, and answers
//! textual queries with a fresh engine per call (engine construction is
//! cheap — a linear stratification pass; memo tables are per-call). For
//! long query sequences against one database, construct a
//! [`TopDownEngine`](crate::engine::TopDownEngine) directly and reuse it.
//!
//! ```
//! use hdl_core::session::Session;
//!
//! let mut s = Session::new();
//! s.load("
//!     take(tony, his101).
//!     grad(S) :- take(S, his101), take(S, eng201).
//! ").unwrap();
//! assert!(s.ask("?- grad(tony)[add: take(tony, eng201)].").unwrap());
//! assert!(!s.ask("?- grad(tony).").unwrap());
//! ```

use crate::ast::Rulebase;
use crate::engine::{BottomUpEngine, EngineStats, TopDownEngine};
use crate::parser::{check_arities, parse_program, parse_query, split_facts};
use hdl_base::{Database, GroundAtom, Result, SymbolTable};

/// Which engine a [`Session`] evaluates with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// Goal-directed with tabling (default; best for search workloads).
    #[default]
    TopDown,
    /// Perfect-model reference engine.
    BottomUp,
}

/// An owned program + database with a textual query interface.
#[derive(Default)]
pub struct Session {
    symbols: SymbolTable,
    rulebase: Rulebase,
    database: Database,
    engine: EngineKind,
    last_stats: Option<EngineStats>,
    arities: hdl_base::FxHashMap<hdl_base::Symbol, usize>,
}

impl Session {
    /// Creates an empty session using the top-down engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the evaluation engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Parses `src`; rules join the rulebase, ground facts the database.
    ///
    /// Arity consistency is enforced across *all* loads, facts included.
    pub fn load(&mut self, src: &str) -> Result<()> {
        let parsed = parse_program(src, &mut self.symbols)?;
        // Check new atoms against the session-wide arity registry before
        // committing anything.
        for rule in parsed.iter() {
            for atom in
                std::iter::once(&rule.head).chain(rule.premises.iter().flat_map(|p| p.atoms()))
            {
                match self.arities.get(&atom.pred) {
                    Some(&a) if a != atom.arity() => {
                        return Err(hdl_base::Error::ArityMismatch {
                            predicate: self.symbols.name(atom.pred).to_owned(),
                            expected: a,
                            found: atom.arity(),
                        });
                    }
                    Some(_) => {}
                    None => {
                        self.arities.insert(atom.pred, atom.arity());
                    }
                }
            }
        }
        let (rules, facts) = split_facts(parsed);
        for r in rules.rules {
            self.rulebase.push(r);
        }
        check_arities(&self.rulebase, &self.symbols)?;
        for f in facts {
            self.database.insert(f);
        }
        Ok(())
    }

    /// Inserts one ground fact directly.
    pub fn assert_fact(&mut self, fact: GroundAtom) {
        self.database.insert(fact);
    }

    /// Evaluates a textual query (`?- premise.`).
    pub fn ask(&mut self, query: &str) -> Result<bool> {
        let q = parse_query(query, &mut self.symbols)?;
        match self.engine {
            EngineKind::TopDown => {
                let mut eng = TopDownEngine::new(&self.rulebase, &self.database)?;
                let r = eng.holds(&q)?;
                self.last_stats = Some(*eng.stats());
                Ok(r)
            }
            EngineKind::BottomUp => {
                let mut eng = BottomUpEngine::new(&self.rulebase, &self.database)?;
                let r = eng.holds(&q)?;
                self.last_stats = Some(*eng.stats());
                Ok(r)
            }
        }
    }

    /// All tuples satisfying a non-ground atom pattern, e.g.
    /// `answers("tc(X, Y)")`.
    pub fn answers(&mut self, pattern: &str) -> Result<Vec<Vec<String>>> {
        let q = parse_query(&format!("?- {pattern}."), &mut self.symbols)?;
        let crate::ast::Premise::Atom(atom) = q else {
            return Err(hdl_base::Error::Invalid(
                "answers() takes a plain atom pattern".into(),
            ));
        };
        let rows = match self.engine {
            EngineKind::TopDown => {
                let mut eng = TopDownEngine::new(&self.rulebase, &self.database)?;
                eng.answers(&atom)?
            }
            EngineKind::BottomUp => {
                let mut eng = BottomUpEngine::new(&self.rulebase, &self.database)?;
                eng.answers(&atom)?
            }
        };
        Ok(rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|s| self.symbols.name(s).to_owned())
                    .collect()
            })
            .collect())
    }

    /// Evaluates a textual query and, if provable, renders a proof tree
    /// (top-down engine only; see
    /// [`TopDownEngine::explain`](crate::engine::TopDownEngine::explain)).
    pub fn explain(&mut self, query: &str) -> Result<Option<String>> {
        let q = parse_query(query, &mut self.symbols)?;
        let mut eng = TopDownEngine::new(&self.rulebase, &self.database)?;
        let proof = eng.explain(&q)?;
        self.last_stats = Some(*eng.stats());
        Ok(proof.map(|p| crate::engine::proof::render(&p, &self.symbols)))
    }

    /// The statistics of the most recent [`ask`](Self::ask).
    pub fn last_stats(&self) -> Option<&EngineStats> {
        self.last_stats.as_ref()
    }

    /// Read access to the loaded rulebase.
    pub fn rulebase(&self) -> &Rulebase {
        &self.rulebase
    }

    /// Read access to the database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Read access to the symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Renders the current rulebase back to source text.
    pub fn show_rules(&self) -> String {
        crate::pretty::rulebase(&self.rulebase, &self.symbols)
    }

    /// Serializes the whole session (rules then facts) as a program that
    /// [`Session::load`] accepts — a save file.
    pub fn dump(&self) -> String {
        let mut out = crate::pretty::rulebase(&self.rulebase, &self.symbols);
        out.push_str(&crate::pretty::database(&self.database, &self.symbols));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_ask_roundtrip() {
        let mut s = Session::new();
        s.load(
            "edge(a, b). edge(b, c).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        )
        .unwrap();
        assert!(s.ask("?- tc(a, c).").unwrap());
        assert!(!s.ask("?- tc(c, a).").unwrap());
        assert!(s.last_stats().is_some());
    }

    #[test]
    fn last_stats_surface_overlay_counters() {
        let mut s = Session::new();
        s.load(
            "wet :- rain.
             wet_if_rains :- wet [add: rain].",
        )
        .unwrap();
        assert!(s.ask("?- wet_if_rains.").unwrap());
        let overlay = s.last_stats().unwrap().overlay;
        // The hypothetical premise interned base+{rain}, so the DAG holds
        // at least two nodes, and the added fact is stored as a delta.
        assert!(overlay.nodes >= 2, "{overlay:?}");
        assert!(overlay.delta_facts > 0, "{overlay:?}");
    }

    #[test]
    fn incremental_loads_accumulate() {
        let mut s = Session::new();
        s.load("p :- q.").unwrap();
        assert!(!s.ask("?- p.").unwrap());
        s.load("q.").unwrap();
        assert!(s.ask("?- p.").unwrap());
    }

    #[test]
    fn answers_renders_names() {
        let mut s = Session::new();
        s.load("likes(ann, bo). likes(bo, cy). popular(X) :- likes(Y, X).")
            .unwrap();
        let rows = s.answers("popular(X)").unwrap();
        assert_eq!(rows, vec![vec!["bo".to_string()], vec!["cy".to_string()]]);
    }

    #[test]
    fn arity_errors_surface_on_load() {
        let mut s = Session::new();
        s.load("p(a).").unwrap();
        assert!(s.load("p(a, b).").is_err());
    }

    #[test]
    fn bottom_up_engine_selectable() {
        let mut s = Session::new().with_engine(EngineKind::BottomUp);
        s.load("even :- ~odd.\nodd :- marker.").unwrap();
        assert!(s.ask("?- even.").unwrap());
        s.load("marker.").unwrap();
        assert!(!s.ask("?- even.").unwrap());
    }

    #[test]
    fn dump_roundtrips_through_load() {
        let mut s = Session::new();
        s.load(
            "edge(a, b).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).
             island(X) :- node(X), ~touched(X).
             touched(X) :- edge(X, Y).",
        )
        .unwrap();
        let saved = s.dump();
        let mut s2 = Session::new();
        s2.load(&saved).expect("dump re-loads");
        assert_eq!(
            s.ask("?- tc(a, b).").unwrap(),
            s2.ask("?- tc(a, b).").unwrap()
        );
        assert_eq!(saved, s2.dump(), "dump is a fixpoint");
    }

    #[test]
    fn hypothetical_queries_via_session() {
        let mut s = Session::new();
        s.load("goal :- f1, f2.").unwrap();
        assert!(s.ask("?- goal[add: f1, f2].").unwrap());
        assert!(!s.ask("?- goal[add: f1].").unwrap());
    }
}
