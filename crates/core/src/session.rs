//! A convenience façade: load programs and ask queries as text.
//!
//! [`Session`] owns the symbol table, rulebase, and database, and answers
//! textual queries with a fresh engine per call (engine construction is
//! cheap — a linear stratification pass; memo tables are per-call).
//! Every evaluation runs on a dedicated thread with an enlarged stack,
//! so deep proofs cannot overflow the caller. For long query sequences
//! against one database, construct a
//! [`TopDownEngine`](crate::engine::TopDownEngine) directly and reuse it,
//! or publish a [`Session::snapshot`] and drive it through the
//! `hdl-service` concurrent query service.
//!
//! ```
//! use hdl_core::session::Session;
//!
//! let mut s = Session::new();
//! s.load("
//!     take(tony, his101).
//!     grad(S) :- take(S, his101), take(S, eng201).
//! ").unwrap();
//! assert!(s.ask("?- grad(tony)[add: take(tony, eng201)].").unwrap());
//! assert!(!s.ask("?- grad(tony).").unwrap());
//! ```

use crate::ast::{HypRule, Rulebase};
use crate::engine::{BottomUpEngine, Budget, EngineStats, MagicEngine, TopDownEngine};
use crate::maintain::{MaintenanceStats, MaterializedModel};
use crate::parser::{parse_program, parse_query, split_facts};
use crate::snapshot::Snapshot;
use crate::stack::call_with_deep_stack;
use hdl_base::{Database, GroundAtom, Result, SymbolTable};
use std::sync::Arc;
use std::time::Duration;

/// A state change about to be committed to a [`Session`].
///
/// Observers see the mutation *before* it takes effect (write-ahead): if
/// the observer errors, the session is left unchanged and the error is
/// returned to the caller.
#[derive(Debug)]
pub enum Mutation<'a> {
    /// Rules and base facts from one [`Session::load`] (or a single
    /// [`Session::assert_fact`]), committed atomically.
    Program {
        /// Rules joining the rulebase.
        rules: &'a [HypRule],
        /// Ground facts joining the base database.
        facts: &'a [GroundAtom],
    },
    /// One base fact retracted.
    Retract(&'a GroundAtom),
    /// A new assumption frame pushed ([`Session::assume`]).
    Assume(&'a [GroundAtom]),
    /// The top assumption frame popped.
    PopAssumption,
}

/// Write-ahead hook for session mutations (implemented by the durability
/// layer in `hdl-persist`).
///
/// The observer runs after validation but before the mutation is applied,
/// so a durable log can guarantee: anything the in-memory session holds
/// has been offered to the log first. `symbols` is the table *after*
/// parsing (new names are already interned — a replay that re-interns in
/// the same order reproduces identical ids).
pub trait SessionObserver: Send {
    /// Called once per mutation; an `Err` aborts the mutation.
    fn on_mutation(&mut self, symbols: &SymbolTable, mutation: &Mutation<'_>) -> Result<()>;
}

/// Which engine a [`Session`] evaluates with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum EngineKind {
    /// Goal-directed with tabling (default; best for search workloads).
    #[default]
    TopDown,
    /// Perfect-model reference engine.
    BottomUp,
    /// Demand-driven: magic-sets rewrite in front of a semi-naive
    /// bottom-up run (best for point queries with bound arguments).
    Magic,
}

impl std::str::FromStr for EngineKind {
    type Err = hdl_base::Error;

    /// Accepts the CLI spellings `top-down` / `topdown` / `td`,
    /// `bottom-up` / `bottomup` / `bu`, and `magic` / `demand`.
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "top-down" | "topdown" | "td" => Ok(EngineKind::TopDown),
            "bottom-up" | "bottomup" | "bu" => Ok(EngineKind::BottomUp),
            "magic" | "demand" => Ok(EngineKind::Magic),
            other => Err(hdl_base::Error::Invalid(format!(
                "unknown engine `{other}` (expected top-down, bottom-up, or magic)"
            ))),
        }
    }
}

/// An owned program + database with a textual query interface.
#[derive(Default)]
pub struct Session {
    symbols: SymbolTable,
    rulebase: Rulebase,
    database: Database,
    /// DES-style assumption frames: each `:assume` pushes a set of ground
    /// facts; queries run against base ∪ frames. Frames are popped LIFO.
    assumptions: Vec<Vec<GroundAtom>>,
    /// Write-ahead observer; offered every mutation before commit.
    observer: Option<Box<dyn SessionObserver>>,
    engine: EngineKind,
    parallelism: usize,
    deadline: Option<Duration>,
    last_stats: Option<EngineStats>,
    arities: hdl_base::FxHashMap<hdl_base::Symbol, usize>,
    /// Materialized perfect model of the effective database, built on
    /// demand by [`Session::model`] and then kept current across
    /// [`Session::assert_fact`] / [`Session::retract_fact`] by
    /// delete-and-rederive instead of full recomputation. Structural
    /// mutations (rule loads, assumption frames) drop it; the next
    /// [`Session::model`] call rebuilds.
    materialized: Option<MaterializedModel>,
}

impl Session {
    /// Creates an empty session using the top-down engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a session from restored parts (checkpoint + WAL replay).
    ///
    /// The arity registry is recomputed from the rulebase, database, and
    /// assumption frames, so later loads keep enforcing consistency.
    pub fn from_parts(
        symbols: SymbolTable,
        rulebase: Rulebase,
        database: Database,
        assumptions: Vec<Vec<GroundAtom>>,
    ) -> Self {
        let mut arities = hdl_base::FxHashMap::default();
        for rule in rulebase.iter() {
            for atom in
                std::iter::once(&rule.head).chain(rule.premises.iter().flat_map(|p| p.atoms()))
            {
                arities.entry(atom.pred).or_insert(atom.arity());
            }
        }
        for fact in database
            .iter_facts()
            .chain(assumptions.iter().flatten().cloned())
        {
            arities.entry(fact.pred).or_insert(fact.arity());
        }
        Session {
            symbols,
            rulebase,
            database,
            assumptions,
            arities,
            ..Session::default()
        }
    }

    /// Installs (or clears) the write-ahead mutation observer.
    pub fn set_observer(&mut self, observer: Option<Box<dyn SessionObserver>>) {
        self.observer = observer;
    }

    /// Offers a mutation to the observer; `Err` means "do not commit".
    fn observe(&mut self, mutation: &Mutation<'_>) -> Result<()> {
        if let Some(obs) = self.observer.as_mut() {
            obs.on_mutation(&self.symbols, mutation)?;
        }
        Ok(())
    }

    /// Selects the evaluation engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the evaluation engine on an existing session.
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.engine = engine;
    }

    /// The currently selected evaluation engine.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Sets the worker count for intra-round parallel rule firing in
    /// the bottom-up engine (see DESIGN.md §3.11). `0` and `1` both
    /// mean single-threaded; the top-down engine ignores this.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers;
    }

    /// Builder-style [`Session::set_parallelism`].
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.set_parallelism(workers);
        self
    }

    /// Sets (or clears) a per-query wall-clock deadline. Queries that
    /// run past it fail with [`hdl_base::Error::DeadlineExceeded`].
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The budget applied to each query of this session.
    fn budget(&self) -> Budget {
        match self.deadline {
            Some(d) => Budget::unlimited().with_deadline(d),
            None => Budget::unlimited(),
        }
    }

    /// Publishes the current program + database as an immutable,
    /// epoch-stamped [`Snapshot`] that worker threads can share. Later
    /// `load`s do not affect already-published snapshots.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Snapshot::with_model(
            self.symbols.clone(),
            self.rulebase.clone(),
            self.effective_database().into_owned(),
            self.materialized.as_ref().map(|m| m.model().clone()),
        )
    }

    /// Parses `src`; rules join the rulebase, ground facts the database.
    ///
    /// Arity consistency is enforced across *all* loads, facts included.
    pub fn load(&mut self, src: &str) -> Result<()> {
        let parsed = parse_program(src, &mut self.symbols)?;
        // Check new atoms against the session-wide arity registry before
        // committing anything.
        for rule in parsed.iter() {
            for atom in
                std::iter::once(&rule.head).chain(rule.premises.iter().flat_map(|p| p.atoms()))
            {
                match self.arities.get(&atom.pred) {
                    Some(&a) if a != atom.arity() => {
                        return Err(hdl_base::Error::ArityMismatch {
                            predicate: self.symbols.name(atom.pred).to_owned(),
                            expected: a,
                            found: atom.arity(),
                        });
                    }
                    Some(_) => {}
                    None => {
                        self.arities.insert(atom.pred, atom.arity());
                    }
                }
            }
        }
        let (rules, facts) = split_facts(parsed);
        // Write-ahead: one atomic record for the whole load, offered
        // before anything is committed (cross-load arity consistency was
        // already validated above, so a replay cannot fail validation).
        self.observe(&Mutation::Program {
            rules: &rules.rules,
            facts: &facts,
        })?;
        for r in rules.rules {
            self.rulebase.push(r);
        }
        for f in facts {
            self.database.insert(f);
        }
        self.materialized = None;
        Ok(())
    }

    /// Applies a structured program mutation (rules + facts), as decoded
    /// from a write-ahead log during recovery. Arity-checked against the
    /// session registry and offered to the observer like [`Session::load`].
    pub fn apply_program(&mut self, rules: Vec<HypRule>, facts: Vec<GroundAtom>) -> Result<()> {
        for rule in &rules {
            for atom in
                std::iter::once(&rule.head).chain(rule.premises.iter().flat_map(|p| p.atoms()))
            {
                match self.arities.get(&atom.pred) {
                    Some(&a) if a != atom.arity() => {
                        return Err(hdl_base::Error::ArityMismatch {
                            predicate: self.symbols.name(atom.pred).to_owned(),
                            expected: a,
                            found: atom.arity(),
                        });
                    }
                    Some(_) => {}
                    None => {
                        self.arities.insert(atom.pred, atom.arity());
                    }
                }
            }
        }
        for f in &facts {
            self.check_fact_arity(f)?;
        }
        self.observe(&Mutation::Program {
            rules: &rules,
            facts: &facts,
        })?;
        for r in rules {
            self.rulebase.push(r);
        }
        for f in facts {
            self.database.insert(f);
        }
        self.materialized = None;
        Ok(())
    }

    /// Interns `names` in order, for write-ahead-log symbol replay.
    ///
    /// Replaying the names in their original interning order reproduces
    /// the dense ids every logged atom refers to.
    pub fn sync_symbols(&mut self, names: &[String]) {
        for n in names {
            self.symbols.intern(n);
        }
    }

    /// Registers (or checks) the arity of one ground fact.
    fn check_fact_arity(&mut self, fact: &GroundAtom) -> Result<()> {
        match self.arities.get(&fact.pred) {
            Some(&a) if a != fact.arity() => Err(hdl_base::Error::ArityMismatch {
                predicate: self.symbols.name(fact.pred).to_owned(),
                expected: a,
                found: fact.arity(),
            }),
            Some(_) => Ok(()),
            None => {
                self.arities.insert(fact.pred, fact.arity());
                Ok(())
            }
        }
    }

    /// Inserts one ground fact directly (arity-checked, observed).
    ///
    /// A materialized model ([`Session::model`]) is maintained
    /// incrementally: the new fact extends the model by semi-naive delta
    /// continuation rather than a full fixpoint.
    pub fn assert_fact(&mut self, fact: GroundAtom) -> Result<()> {
        self.check_fact_arity(&fact)?;
        self.observe(&Mutation::Program {
            rules: &[],
            facts: std::slice::from_ref(&fact),
        })?;
        self.database.insert(fact.clone());
        self.maintain_model(&fact, true)
    }

    /// Retracts one base fact; returns whether it was present.
    ///
    /// Only the base database is affected — facts assumed via
    /// [`Session::assume`] are retracted by popping their frame.
    ///
    /// A materialized model ([`Session::model`]) is maintained by
    /// delete-and-rederive over the affected derivation cone instead of
    /// recomputing the fixpoint from scratch.
    pub fn retract_fact(&mut self, fact: &GroundAtom) -> Result<bool> {
        self.observe(&Mutation::Retract(fact))?;
        let removed = self.database.remove(fact);
        if removed {
            self.maintain_model(fact, false)?;
        }
        Ok(removed)
    }

    /// Applies one committed single-fact mutation to the materialized
    /// model, if one is live. On error the model is dropped (it may be
    /// stale), so a later [`Session::model`] rebuilds from scratch.
    fn maintain_model(&mut self, fact: &GroundAtom, inserted: bool) -> Result<()> {
        let Some(mut m) = self.materialized.take() else {
            return Ok(());
        };
        let database = self.effective_database();
        let (rulebase, db) = (&self.rulebase, database.as_ref());
        let m = call_with_deep_stack(move || {
            if inserted {
                m.assert_fact(rulebase, db, fact)?;
            } else {
                m.retract_fact(rulebase, db, fact)?;
            }
            Ok(m)
        })?;
        self.materialized = Some(m);
        Ok(())
    }

    /// The perfect model of the rulebase over the effective database,
    /// materialized on first call and maintained incrementally across
    /// [`Session::assert_fact`] / [`Session::retract_fact`] (see
    /// `maintain`). While a model is live, plain-atom queries are
    /// answered from it directly.
    pub fn model(&mut self) -> Result<&Database> {
        if self.materialized.is_none() {
            let database = self.effective_database();
            let (rulebase, db) = (&self.rulebase, database.as_ref());
            let m = call_with_deep_stack(move || MaterializedModel::build(rulebase, db))?;
            self.materialized = Some(m);
        }
        Ok(self.materialized.as_ref().expect("just built").model())
    }

    /// Whether a materialized model is currently live.
    pub fn is_materialized(&self) -> bool {
        self.materialized.is_some()
    }

    /// Counters of the materialized model's maintenance, if one is live.
    pub fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        self.materialized.as_ref().map(|m| m.stats())
    }

    /// Pushes an assumption frame: queries see base ∪ all frames until
    /// the frame is popped (DES-style interactive hypotheses, the
    /// session-level analogue of the paper's `[add: …]` premise).
    pub fn assume(&mut self, facts: Vec<GroundAtom>) -> Result<()> {
        for f in &facts {
            self.check_fact_arity(f)?;
        }
        self.observe(&Mutation::Assume(&facts))?;
        self.assumptions.push(facts);
        // Frames change the effective database wholesale; the next
        // `model()` call rebuilds against the new merged view.
        self.materialized = None;
        Ok(())
    }

    /// Pops the most recent assumption frame, returning it (or `None` if
    /// no assumptions are active).
    pub fn pop_assumption(&mut self) -> Result<Option<Vec<GroundAtom>>> {
        if self.assumptions.is_empty() {
            return Ok(None);
        }
        self.observe(&Mutation::PopAssumption)?;
        self.materialized = None;
        Ok(self.assumptions.pop())
    }

    /// The active assumption frames, oldest first.
    pub fn assumptions(&self) -> &[Vec<GroundAtom>] {
        &self.assumptions
    }

    /// The database queries actually run against: the base plus every
    /// active assumption frame. Borrows the base when no assumptions are
    /// active; merges into a fresh copy otherwise.
    fn effective_database(&self) -> std::borrow::Cow<'_, Database> {
        if self.assumptions.is_empty() {
            return std::borrow::Cow::Borrowed(&self.database);
        }
        let mut merged = self.database.clone();
        for frame in &self.assumptions {
            for f in frame {
                merged.insert(f.clone());
            }
        }
        std::borrow::Cow::Owned(merged)
    }

    /// Whether `atom` matches anywhere in `model` (existential over the
    /// pattern's free variables).
    fn model_matches(model: &Database, atom: &hdl_base::Atom) -> bool {
        let mut bindings =
            hdl_base::Bindings::new(atom.vars().map(|v| v.index() + 1).max().unwrap_or(0));
        model.for_each_match(atom, &mut bindings, |_| true)
    }

    /// Evaluates a textual query (`?- premise.`).
    ///
    /// Evaluation runs on a dedicated thread with an enlarged stack
    /// ([`call_with_deep_stack`]), so deep linear-recursion proofs never
    /// overflow the caller's stack.
    pub fn ask(&mut self, query: &str) -> Result<bool> {
        let q = parse_query(query, &mut self.symbols)?;
        // A live materialized model answers plain and negated atom
        // queries by membership — the engines agree with the perfect
        // model on those by construction. Hypothetical queries still
        // need overlay evaluation and fall through to an engine.
        if let Some(m) = &self.materialized {
            match &q {
                crate::ast::Premise::Atom(atom) => {
                    let found = Self::model_matches(m.model(), atom);
                    self.last_stats = Some(EngineStats::default());
                    return Ok(found);
                }
                crate::ast::Premise::Neg(atom) => {
                    let found = Self::model_matches(m.model(), atom);
                    self.last_stats = Some(EngineStats::default());
                    return Ok(!found);
                }
                crate::ast::Premise::Hyp { .. } => {}
            }
        }
        let database = self.effective_database();
        let (rulebase, database) = (&self.rulebase, database.as_ref());
        let (engine, budget) = (self.engine, self.budget());
        let workers = self.parallelism.max(1);
        let (r, stats) = call_with_deep_stack(move || -> Result<(bool, EngineStats)> {
            match engine {
                EngineKind::TopDown => {
                    let mut eng = TopDownEngine::new(rulebase, database)?;
                    eng.set_budget(budget);
                    Ok((eng.holds(&q)?, eng.stats().clone()))
                }
                EngineKind::BottomUp => {
                    let mut eng = BottomUpEngine::new(rulebase, database)?;
                    eng.set_budget(budget);
                    eng.set_parallelism(workers);
                    Ok((eng.holds(&q)?, eng.stats().clone()))
                }
                EngineKind::Magic => {
                    let mut eng = MagicEngine::new(rulebase, database)?;
                    eng.set_budget(budget);
                    eng.set_parallelism(workers);
                    Ok((eng.holds(&q)?, eng.stats().clone()))
                }
            }
        })?;
        self.last_stats = Some(stats);
        Ok(r)
    }

    /// All tuples satisfying a non-ground atom pattern, e.g.
    /// `answers("tc(X, Y)")`.
    pub fn answers(&mut self, pattern: &str) -> Result<Vec<Vec<String>>> {
        let q = parse_query(&format!("?- {pattern}."), &mut self.symbols)?;
        let crate::ast::Premise::Atom(atom) = q else {
            return Err(hdl_base::Error::Invalid(
                "answers() takes a plain atom pattern".into(),
            ));
        };
        if let Some(m) = &self.materialized {
            let mut bindings =
                hdl_base::Bindings::new(atom.vars().map(|v| v.index() + 1).max().unwrap_or(0));
            let mut rows = Vec::new();
            m.model().for_each_match(&atom, &mut bindings, |b| {
                rows.push(
                    atom.args
                        .iter()
                        .map(|t| match t {
                            hdl_base::Term::Const(c) => *c,
                            hdl_base::Term::Var(v) => b.get(*v).expect("bound by match"),
                        })
                        .collect::<Vec<_>>(),
                );
                false
            });
            rows.sort();
            rows.dedup();
            return Ok(rows
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|s| self.symbols.name(s).to_owned())
                        .collect()
                })
                .collect());
        }
        let database = self.effective_database();
        let (rulebase, database) = (&self.rulebase, database.as_ref());
        let (engine, budget) = (self.engine, self.budget());
        let workers = self.parallelism.max(1);
        let rows = call_with_deep_stack(move || match engine {
            EngineKind::TopDown => {
                let mut eng = TopDownEngine::new(rulebase, database)?;
                eng.set_budget(budget);
                eng.answers(&atom)
            }
            EngineKind::BottomUp => {
                let mut eng = BottomUpEngine::new(rulebase, database)?;
                eng.set_budget(budget);
                eng.set_parallelism(workers);
                eng.answers(&atom)
            }
            EngineKind::Magic => {
                let mut eng = MagicEngine::new(rulebase, database)?;
                eng.set_budget(budget);
                eng.set_parallelism(workers);
                eng.answers(&atom)
            }
        })?;
        Ok(rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|s| self.symbols.name(s).to_owned())
                    .collect()
            })
            .collect())
    }

    /// Evaluates a textual query and, if provable, renders a proof tree
    /// (top-down engine only; see
    /// [`TopDownEngine::explain`](crate::engine::TopDownEngine::explain)).
    pub fn explain(&mut self, query: &str) -> Result<Option<String>> {
        let q = parse_query(query, &mut self.symbols)?;
        let database = self.effective_database();
        let (rulebase, database) = (&self.rulebase, database.as_ref());
        let budget = self.budget();
        let (proof, stats) = call_with_deep_stack(move || {
            let mut eng = TopDownEngine::new(rulebase, database)?;
            eng.set_budget(budget);
            let proof = eng.explain(&q)?;
            Ok::<_, hdl_base::Error>((proof, eng.stats().clone()))
        })?;
        self.last_stats = Some(stats);
        Ok(proof.map(|p| crate::engine::proof::render(&p, &self.symbols)))
    }

    /// The statistics of the most recent [`ask`](Self::ask).
    pub fn last_stats(&self) -> Option<&EngineStats> {
        self.last_stats.as_ref()
    }

    /// Read access to the loaded rulebase.
    pub fn rulebase(&self) -> &Rulebase {
        &self.rulebase
    }

    /// Read access to the database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Read access to the symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table, for callers that parse
    /// session-external text (`:assume`/`:retract` fact arguments) whose
    /// constants must intern into *this* session's id space. Interning
    /// alone is not a mutation — the durability observer picks up any
    /// new names with the next logged mutation.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Renders the current rulebase back to source text.
    pub fn show_rules(&self) -> String {
        crate::pretty::rulebase(&self.rulebase, &self.symbols)
    }

    /// Serializes the whole session (rules then facts) as a program that
    /// [`Session::load`] accepts — a save file.
    pub fn dump(&self) -> String {
        let mut out = crate::pretty::rulebase(&self.rulebase, &self.symbols);
        out.push_str(&crate::pretty::database(&self.database, &self.symbols));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_ask_roundtrip() {
        let mut s = Session::new();
        s.load(
            "edge(a, b). edge(b, c).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        )
        .unwrap();
        assert!(s.ask("?- tc(a, c).").unwrap());
        assert!(!s.ask("?- tc(c, a).").unwrap());
        assert!(s.last_stats().is_some());
    }

    #[test]
    fn last_stats_surface_overlay_counters() {
        let mut s = Session::new();
        s.load(
            "wet :- rain.
             wet_if_rains :- wet [add: rain].",
        )
        .unwrap();
        assert!(s.ask("?- wet_if_rains.").unwrap());
        let overlay = s.last_stats().unwrap().overlay;
        // The hypothetical premise interned base+{rain}, so the DAG holds
        // at least two nodes, and the added fact is stored as a delta.
        assert!(overlay.nodes >= 2, "{overlay:?}");
        assert!(overlay.delta_facts > 0, "{overlay:?}");
    }

    #[test]
    fn incremental_loads_accumulate() {
        let mut s = Session::new();
        s.load("p :- q.").unwrap();
        assert!(!s.ask("?- p.").unwrap());
        s.load("q.").unwrap();
        assert!(s.ask("?- p.").unwrap());
    }

    #[test]
    fn answers_renders_names() {
        let mut s = Session::new();
        s.load("likes(ann, bo). likes(bo, cy). popular(X) :- likes(Y, X).")
            .unwrap();
        let rows = s.answers("popular(X)").unwrap();
        assert_eq!(rows, vec![vec!["bo".to_string()], vec!["cy".to_string()]]);
    }

    #[test]
    fn arity_errors_surface_on_load() {
        let mut s = Session::new();
        s.load("p(a).").unwrap();
        assert!(s.load("p(a, b).").is_err());
    }

    #[test]
    fn bottom_up_engine_selectable() {
        let mut s = Session::new().with_engine(EngineKind::BottomUp);
        s.load("even :- ~odd.\nodd :- marker.").unwrap();
        assert!(s.ask("?- even.").unwrap());
        s.load("marker.").unwrap();
        assert!(!s.ask("?- even.").unwrap());
    }

    #[test]
    fn parallel_bottom_up_session_reports_seminaive_counters() {
        let mut s = Session::new()
            .with_engine(EngineKind::BottomUp)
            .with_parallelism(4);
        s.load(
            "edge(a, b). edge(b, c). edge(c, d).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- tc(X, Y), edge(Y, Z).",
        )
        .unwrap();
        assert!(s.ask("?- tc(a, d).").unwrap());
        let stats = s.last_stats().unwrap();
        assert!(stats.index_probes > 0, "{stats:?}");
        assert!(stats.index_hits <= stats.index_probes, "{stats:?}");
        assert!(!stats.delta_facts_per_round.is_empty(), "{stats:?}");
    }

    #[test]
    fn dump_roundtrips_through_load() {
        let mut s = Session::new();
        s.load(
            "edge(a, b).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).
             island(X) :- node(X), ~touched(X).
             touched(X) :- edge(X, Y).",
        )
        .unwrap();
        let saved = s.dump();
        let mut s2 = Session::new();
        s2.load(&saved).expect("dump re-loads");
        assert_eq!(
            s.ask("?- tc(a, b).").unwrap(),
            s2.ask("?- tc(a, b).").unwrap()
        );
        assert_eq!(saved, s2.dump(), "dump is a fixpoint");
    }

    #[test]
    fn deep_linear_recursion_does_not_overflow() {
        // A hypothetical chain of length n proves through n nested
        // engine frames; 3000 steps of host-stack recursion (with
        // multiple frames per step) was the territory the old caveat
        // warned about — the deep-stack evaluation thread absorbs it.
        let n = 3000;
        let mut src = String::new();
        for i in 1..=n {
            src.push_str(&format!("a{i} :- a{next}[add: b{i}].\n", next = i + 1));
        }
        src.push_str(&format!("a{}.\n", n + 1));
        let mut s = Session::new();
        s.load(&src).unwrap();
        assert!(s.ask("?- a1.").unwrap());
    }

    #[test]
    fn deadline_trips_and_clears() {
        let mut s = Session::new();
        // Parity over a moderate set is slow enough to hit a zero
        // deadline but completes quickly without one.
        s.load(
            "even :- select(X), odd[add: b(X)].
             odd :- select(X), even[add: b(X)].
             even :- ~select(X).
             select(X) :- a(X), ~b(X).
             a(t1). a(t2). a(t3). a(t4).",
        )
        .unwrap();
        s.set_deadline(Some(std::time::Duration::ZERO));
        assert_eq!(
            s.ask("?- even.").unwrap_err(),
            hdl_base::Error::DeadlineExceeded
        );
        s.set_deadline(None);
        assert!(s.ask("?- even.").unwrap(), "deadline cleared");
    }

    #[test]
    fn snapshots_are_isolated_from_later_loads() {
        let mut s = Session::new();
        s.load("p :- q.").unwrap();
        let snap1 = s.snapshot();
        s.load("q.").unwrap();
        let snap2 = s.snapshot();
        assert!(snap2.epoch() > snap1.epoch());
        assert_eq!(snap1.database().len(), 0, "snapshot 1 predates `q.`");
        assert_eq!(snap2.database().len(), 1);
        assert!(s.ask("?- p.").unwrap());
    }

    #[test]
    fn engine_kind_parses_cli_spellings() {
        use std::str::FromStr as _;
        assert_eq!(
            EngineKind::from_str("top-down").unwrap(),
            EngineKind::TopDown
        );
        assert_eq!(EngineKind::from_str("bu").unwrap(), EngineKind::BottomUp);
        assert_eq!(EngineKind::from_str("magic").unwrap(), EngineKind::Magic);
        assert_eq!(EngineKind::from_str("demand").unwrap(), EngineKind::Magic);
        assert!(EngineKind::from_str("sideways").is_err());
    }

    #[test]
    fn magic_engine_is_selectable() {
        let mut s = Session::new();
        s.load(
            "edge(a, b). edge(b, c).\n\
             tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- tc(X, Y), edge(Y, Z).",
        )
        .unwrap();
        s.set_engine(EngineKind::Magic);
        assert!(s.ask("?- tc(a, c).").unwrap());
        assert!(!s.ask("?- tc(c, a).").unwrap());
        assert_eq!(
            s.answers("tc(a, X)").unwrap(),
            vec![
                vec!["a".to_owned(), "b".to_owned()],
                vec!["a".into(), "c".into()]
            ]
        );
        let stats = s.last_stats().expect("stats recorded");
        assert!(stats.magic_rules > 0, "magic path was not taken");
    }

    #[test]
    fn assumption_frames_extend_and_pop() {
        let mut s = Session::new();
        s.load("grad(S) :- take(S, his101), take(S, eng201).\ntake(tony, his101).")
            .unwrap();
        assert!(!s.ask("?- grad(tony).").unwrap());
        let take = s.symbols.intern("take");
        let (tony, eng) = (s.symbols.intern("tony"), s.symbols.intern("eng201"));
        s.assume(vec![GroundAtom::new(take, vec![tony, eng])])
            .unwrap();
        assert!(s.ask("?- grad(tony).").unwrap(), "assumed fact visible");
        assert_eq!(s.assumptions().len(), 1);
        // Snapshots see the merged view.
        assert_eq!(s.snapshot().database().len(), 2);
        let frame = s.pop_assumption().unwrap().expect("one frame");
        assert_eq!(frame.len(), 1);
        assert!(!s.ask("?- grad(tony).").unwrap(), "assumption gone");
        assert!(s.pop_assumption().unwrap().is_none());
    }

    #[test]
    fn retract_removes_base_facts_only() {
        let mut s = Session::new();
        s.load("p(a). p(b).").unwrap();
        let p = s.symbols.intern("p");
        let a = s.symbols.intern("a");
        let fact = GroundAtom::new(p, vec![a]);
        assert!(s.retract_fact(&fact).unwrap());
        assert!(!s.retract_fact(&fact).unwrap(), "already gone");
        assert!(!s.ask("?- p(a).").unwrap());
        assert!(s.ask("?- p(b).").unwrap());
    }

    #[test]
    fn assert_fact_checks_arity() {
        let mut s = Session::new();
        s.load("p(a).").unwrap();
        let p = s.symbols.intern("p");
        let a = s.symbols.intern("a");
        assert!(s.assert_fact(GroundAtom::new(p, vec![a, a])).is_err());
        assert!(s.assert_fact(GroundAtom::new(p, vec![a])).is_ok());
    }

    #[test]
    fn observer_sees_mutations_before_commit_and_can_abort() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct Counting {
            seen: Arc<AtomicUsize>,
            fail: bool,
        }
        impl SessionObserver for Counting {
            fn on_mutation(&mut self, _: &SymbolTable, _: &Mutation<'_>) -> Result<()> {
                self.seen.fetch_add(1, Ordering::Relaxed);
                if self.fail {
                    Err(hdl_base::Error::Invalid("log full".into()))
                } else {
                    Ok(())
                }
            }
        }
        let seen = Arc::new(AtomicUsize::new(0));
        let mut s = Session::new();
        s.set_observer(Some(Box::new(Counting {
            seen: seen.clone(),
            fail: false,
        })));
        s.load("p(a). q :- p(X).").unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 1, "one record per load");
        // A failing observer aborts the mutation: memory unchanged.
        s.set_observer(Some(Box::new(Counting {
            seen: seen.clone(),
            fail: true,
        })));
        assert!(s.load("r(c).").is_err());
        assert_eq!(s.database().len(), 1, "aborted load not committed");
        assert_eq!(s.rulebase().len(), 1);
        let p = s.symbols.intern("p");
        let b = s.symbols.intern("b");
        assert!(s.assume(vec![GroundAtom::new(p, vec![b])]).is_err());
        assert!(s.assumptions().is_empty(), "aborted assume not committed");
    }

    #[test]
    fn from_parts_restores_arity_registry() {
        let mut s = Session::new();
        s.load("p(a). q(X) :- p(X).").unwrap();
        let mut restored = Session::from_parts(
            s.symbols.clone(),
            s.rulebase.clone(),
            s.database.clone(),
            Vec::new(),
        );
        assert!(restored.load("p(a, b).").is_err(), "arity still enforced");
        assert!(restored.ask("?- q(a).").unwrap());
    }

    #[test]
    fn materialized_model_answers_and_tracks_retractions() {
        let mut s = Session::new();
        s.load(
            "edge(a, b). edge(b, c). edge(a, c).
             tc(X, Y) :- edge(X, Y).
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        )
        .unwrap();
        assert!(!s.is_materialized());
        let tc = s.symbols.lookup("tc").unwrap();
        let (a0, c0) = (
            s.symbols.lookup("a").unwrap(),
            s.symbols.lookup("c").unwrap(),
        );
        assert!(s.model().unwrap().contains_tuple(tc, &[a0, c0]));
        assert!(s.is_materialized());
        // Queries are now answered from the model.
        assert!(s.ask("?- tc(a, c).").unwrap());
        assert!(s.ask("?- ~tc(c, a).").unwrap());
        assert_eq!(s.answers("tc(a, X)").unwrap().len(), 2);
        // Retraction maintains the model incrementally: the direct edge
        // goes, but tc(a, c) survives via b.
        let edge = s.symbols.intern("edge");
        let (a, c) = (s.symbols.intern("a"), s.symbols.intern("c"));
        assert!(s.retract_fact(&GroundAtom::new(edge, vec![a, c])).unwrap());
        assert!(s.ask("?- tc(a, c).").unwrap(), "rederived via b");
        assert!(!s.ask("?- edge(a, c).").unwrap());
        let stats = s.maintenance_stats().unwrap();
        assert_eq!(stats.full_builds, 1, "retraction did not rebuild");
        assert_eq!(stats.incremental_retractions, 1);
        // Assertion also maintains incrementally.
        s.assert_fact(GroundAtom::new(edge, vec![c, a])).unwrap();
        assert!(s.ask("?- tc(b, a).").unwrap());
        assert_eq!(s.maintenance_stats().unwrap().full_builds, 1);
        // Loading rules drops the model; queries fall back to engines.
        s.load("q(X) :- tc(X, X).").unwrap();
        assert!(!s.is_materialized());
        assert!(s.ask("?- q(a).").unwrap());
    }

    #[test]
    fn materialized_model_agrees_under_assumption_frames() {
        let mut s = Session::new();
        s.load("grad(S) :- take(S, his101), take(S, eng201).\ntake(tony, his101).")
            .unwrap();
        s.model().unwrap();
        let take = s.symbols.intern("take");
        let (tony, eng) = (s.symbols.intern("tony"), s.symbols.intern("eng201"));
        s.assume(vec![GroundAtom::new(take, vec![tony, eng])])
            .unwrap();
        assert!(!s.is_materialized(), "frames invalidate the model");
        s.model().unwrap();
        assert!(s.ask("?- grad(tony).").unwrap());
        // Retracting a base fact shadowed by a frame keeps it effective.
        let his = s.symbols.intern("his101");
        s.assume(vec![GroundAtom::new(take, vec![tony, his])])
            .unwrap();
        s.model().unwrap();
        assert!(s
            .retract_fact(&GroundAtom::new(take, vec![tony, his]))
            .unwrap());
        assert!(s.ask("?- grad(tony).").unwrap(), "frame still supplies it");
        s.pop_assumption().unwrap();
        assert!(!s.is_materialized());
    }

    #[test]
    fn snapshots_carry_the_materialized_model() {
        let mut s = Session::new();
        s.load("edge(a, b). tc(X, Y) :- edge(X, Y).").unwrap();
        assert!(s.snapshot().model().is_none());
        s.model().unwrap();
        let snap = s.snapshot();
        let tc = s.symbols.lookup("tc").unwrap();
        let (a, b) = (
            s.symbols.lookup("a").unwrap(),
            s.symbols.lookup("b").unwrap(),
        );
        assert!(snap
            .model()
            .expect("model propagated")
            .contains_tuple(tc, &[a, b]));
    }

    #[test]
    fn hypothetical_queries_via_session() {
        let mut s = Session::new();
        s.load("goal :- f1, f2.").unwrap();
        assert!(s.ask("?- goal[add: f1, f2].").unwrap());
        assert!(!s.ask("?- goal[add: f1].").unwrap());
    }
}
