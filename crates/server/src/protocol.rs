//! Wire protocol: newline-delimited JSON requests and replies.
//!
//! Every request is one JSON object on one line with an `"op"` field;
//! every reply is one JSON object on one line with `"ok"` (and, when
//! the request carried an `"id"`, the same id echoed back so pipelined
//! clients can match replies to requests). See `docs/protocol.md` for
//! the full wire-format reference with examples.

use crate::json::Json;
use hdl_core::session::EngineKind;
use hdl_service::Outcome;
use std::time::Duration;

/// Protocol revision advertised by `hello`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Per-request evaluation options (all optional).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryOpts {
    /// Engine override (`"top-down"` / `"bottom-up"`).
    pub engine: Option<EngineKind>,
    /// Wall-clock budget in milliseconds.
    pub deadline: Option<Duration>,
    /// Per-query fact budget override.
    pub max_facts: Option<u64>,
}

/// One parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Protocol handshake; legal before `open`.
    Hello,
    /// Bind this connection to the named tenant (creating it on first
    /// use).
    Open {
        /// Tenant name (`[A-Za-z0-9_-]{1,64}`).
        tenant: String,
        /// Per-tenant replication quorum override: a mutation is acked
        /// only after this many followers hold it (0 = async, the
        /// default). Refused if it exceeds the configured target count.
        sync: Option<u64>,
    },
    /// A yes/no query (`?-` dressing optional).
    Query {
        /// The goal text.
        q: String,
        /// Evaluation options.
        opts: QueryOpts,
    },
    /// All tuples matching a plain atom pattern.
    Answers {
        /// The pattern, e.g. `tc(X, Y)`.
        pattern: String,
        /// Evaluation options.
        opts: QueryOpts,
    },
    /// Load program text (rules and facts) into the tenant.
    Load {
        /// Program source.
        program: String,
    },
    /// Push an assumption frame of ground facts.
    Assume {
        /// Comma/period-separated ground facts.
        facts: String,
    },
    /// Pop the top assumption frame.
    Pop,
    /// Retract one base fact.
    Retract {
        /// The fact text.
        fact: String,
    },
    /// Compact the tenant's WAL into a checkpoint.
    Checkpoint,
    /// Counters: server-level, plus tenant-level once bound.
    Stats,
    /// End this connection (the tenant itself persists).
    Close,
    /// Ask the server to drain and exit (graceful shutdown).
    Shutdown,
    /// Replication (primary → follower): where should shipping resume
    /// for this tenant?
    RepPosition {
        /// Tenant name.
        tenant: String,
        /// The sender's fencing epoch (absent from pre-fencing peers).
        fence: Option<u64>,
    },
    /// Replication: a window of committed WAL bytes at an exact
    /// position.
    RepWindow {
        /// Tenant name.
        tenant: String,
        /// Checkpoint epoch the offset refers to.
        epoch: u64,
        /// Byte offset of the window's first byte.
        offset: u64,
        /// Base64 of the raw frame bytes.
        data: String,
        /// The sender's fencing epoch (absent from pre-fencing peers).
        fence: Option<u64>,
    },
    /// Replication: a checkpoint image the follower must install before
    /// windows can resume (the primary rotated past its position).
    RepCheckpoint {
        /// Tenant name.
        tenant: String,
        /// Epoch of the image.
        epoch: u64,
        /// Base64 of the serialized checkpoint.
        data: String,
        /// The sender's fencing epoch (absent from pre-fencing peers).
        fence: Option<u64>,
    },
    /// Replication: liveness probe; refreshes the follower's
    /// last-primary-contact clock.
    RepHeartbeat {
        /// The sender's fencing epoch (absent from pre-fencing peers).
        fence: Option<u64>,
    },
    /// Tells this server a fencing epoch exists (e.g. an operator or a
    /// peer announcing a promotion). A writable server that learns of a
    /// newer epoch latches itself read-only.
    RepFence {
        /// The fencing epoch being announced.
        epoch: u64,
    },
    /// Operator op: promote this follower to primary. Replicas reopen
    /// as normal writable tenants; mutations are accepted afterwards.
    Promote,
}

impl Request {
    /// Parses one protocol line. Returns the request plus the echoed id
    /// (if any).
    pub fn parse(line: &str) -> Result<(Request, Option<u64>), String> {
        let value = Json::parse(line)?;
        let id = value.get("id").and_then(Json::as_u64);
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing \"op\" field")?;
        let text = |field: &str| -> Result<String, String> {
            value
                .get(field)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("op `{op}` needs a string \"{field}\" field"))
        };
        let number = |field: &str| -> Result<u64, String> {
            value
                .get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("op `{op}` needs a numeric \"{field}\" field"))
        };
        let opts = || -> Result<QueryOpts, String> {
            let engine = match value.get("engine").and_then(Json::as_str) {
                Some(name) => Some(name.parse::<EngineKind>().map_err(|e| e.to_string())?),
                None => None,
            };
            Ok(QueryOpts {
                engine,
                deadline: value
                    .get("deadline_ms")
                    .and_then(Json::as_u64)
                    .map(Duration::from_millis),
                max_facts: value.get("max_facts").and_then(Json::as_u64),
            })
        };
        let opt_num = |field: &str| value.get(field).and_then(Json::as_u64);
        let request = match op {
            "hello" => Request::Hello,
            "open" => Request::Open {
                tenant: text("tenant")?,
                sync: opt_num("sync"),
            },
            "query" => Request::Query {
                q: text("q")?,
                opts: opts()?,
            },
            "answers" => Request::Answers {
                pattern: text("pattern")?,
                opts: opts()?,
            },
            "load" => Request::Load {
                program: text("program")?,
            },
            "assume" => Request::Assume {
                facts: text("facts")?,
            },
            "pop" => Request::Pop,
            "retract" => Request::Retract {
                fact: text("fact")?,
            },
            "checkpoint" => Request::Checkpoint,
            "stats" => Request::Stats,
            "close" => Request::Close,
            "shutdown" => Request::Shutdown,
            "rep_position" => Request::RepPosition {
                tenant: text("tenant")?,
                fence: opt_num("fence"),
            },
            "rep_window" => Request::RepWindow {
                tenant: text("tenant")?,
                epoch: number("epoch")?,
                offset: number("offset")?,
                data: text("data")?,
                fence: opt_num("fence"),
            },
            "rep_checkpoint" => Request::RepCheckpoint {
                tenant: text("tenant")?,
                epoch: number("epoch")?,
                data: text("data")?,
                fence: opt_num("fence"),
            },
            "rep_heartbeat" => Request::RepHeartbeat {
                fence: opt_num("fence"),
            },
            "rep_fence" => Request::RepFence {
                epoch: number("epoch")?,
            },
            "promote" => Request::Promote,
            other => return Err(format!("unknown op `{other}`")),
        };
        Ok((request, id))
    }
}

/// Builds one reply line (no trailing newline).
pub struct Reply {
    fields: Vec<(&'static str, Json)>,
}

impl Reply {
    /// A success reply for `op`.
    pub fn ok(op: &str) -> Reply {
        Reply {
            fields: vec![("ok", Json::Bool(true)), ("op", Json::str(op))],
        }
    }

    /// A failure reply with a machine-readable `kind` (`parse`,
    /// `protocol`, `no-tenant`, `bad-tenant-name`, `quota`,
    /// `overloaded`, `query`, `shutdown`, `internal`, `read_only`,
    /// `rep-position`, `fenced`, `degraded_ack`).
    pub fn err(kind: &str, message: impl Into<String>) -> Reply {
        Reply {
            fields: vec![
                ("ok", Json::Bool(false)),
                ("kind", Json::str(kind)),
                ("error", Json::str(message.into())),
            ],
        }
    }

    /// Adds a field.
    pub fn with(mut self, key: &'static str, value: Json) -> Reply {
        self.fields.push((key, value));
        self
    }

    /// Renders the reply as one line, echoing `id` when present.
    pub fn render(mut self, id: Option<u64>) -> String {
        if let Some(id) = id {
            self.fields.push(("id", Json::num(id as f64)));
        }
        Json::obj(self.fields.iter().map(|(k, v)| (*k, v.clone())).collect()).to_string()
    }
}

/// Maps a service [`Outcome`] to its reply. Structured budget trips are
/// `ok:true` results (the protocol worked; the query hit its budget) —
/// only [`Outcome::Error`] and [`Outcome::Overloaded`] are failures.
pub fn outcome_reply(op: &str, outcome: &Outcome) -> Reply {
    let rows_json = |rows: &[Vec<String>]| {
        Json::Arr(
            rows.iter()
                .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                .collect(),
        )
    };
    match outcome {
        Outcome::True => Reply::ok(op).with("result", Json::str("true")),
        Outcome::False => Reply::ok(op).with("result", Json::str("false")),
        Outcome::Answers(rows) => Reply::ok(op)
            .with("result", Json::str("answers"))
            .with("rows", rows_json(rows))
            .with("count", Json::num(rows.len() as f64)),
        Outcome::Cancelled => Reply::ok(op).with("result", Json::str("cancelled")),
        Outcome::DeadlineExceeded => Reply::ok(op).with("result", Json::str("deadline-exceeded")),
        Outcome::MemoryExceeded => Reply::ok(op).with("result", Json::str("memory-exceeded")),
        Outcome::Overloaded => Reply::err("overloaded", "tenant queue at capacity")
            .with("result", Json::str("overloaded")),
        Outcome::Partial { rows, reason } => Reply::ok(op)
            .with("result", Json::str("partial"))
            .with("rows", rows_json(rows))
            .with("count", Json::num(rows.len() as f64))
            .with("reason", Json::str(reason)),
        Outcome::Error(msg) => Reply::err("query", msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_op_set() {
        let cases = [
            ("{\"op\":\"hello\"}", Request::Hello),
            (
                "{\"op\":\"open\",\"tenant\":\"t1\"}",
                Request::Open {
                    tenant: "t1".into(),
                    sync: None,
                },
            ),
            (
                "{\"op\":\"open\",\"tenant\":\"t1\",\"sync\":2}",
                Request::Open {
                    tenant: "t1".into(),
                    sync: Some(2),
                },
            ),
            (
                "{\"op\":\"rep_heartbeat\",\"fence\":7}",
                Request::RepHeartbeat { fence: Some(7) },
            ),
            (
                "{\"op\":\"rep_fence\",\"epoch\":3}",
                Request::RepFence { epoch: 3 },
            ),
            (
                "{\"op\":\"rep_position\",\"tenant\":\"t1\",\"fence\":1}",
                Request::RepPosition {
                    tenant: "t1".into(),
                    fence: Some(1),
                },
            ),
            ("{\"op\":\"pop\"}", Request::Pop),
            ("{\"op\":\"checkpoint\"}", Request::Checkpoint),
            ("{\"op\":\"stats\"}", Request::Stats),
            ("{\"op\":\"close\"}", Request::Close),
            ("{\"op\":\"shutdown\"}", Request::Shutdown),
        ];
        for (line, expected) in cases {
            let (req, id) = Request::parse(line).unwrap();
            assert_eq!(req, expected, "{line}");
            assert_eq!(id, None);
        }
    }

    #[test]
    fn query_opts_parse() {
        let (req, id) = Request::parse(
            "{\"op\":\"query\",\"q\":\"?- p(a).\",\"engine\":\"bottom-up\",\
             \"deadline_ms\":250,\"max_facts\":1000,\"id\":9}",
        )
        .unwrap();
        assert_eq!(id, Some(9));
        match req {
            Request::Query { q, opts } => {
                assert_eq!(q, "?- p(a).");
                assert_eq!(opts.engine, Some(EngineKind::BottomUp));
                assert_eq!(opts.deadline, Some(Duration::from_millis(250)));
                assert_eq!(opts.max_facts, Some(1000));
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn missing_fields_are_structured_errors() {
        assert!(Request::parse("{\"op\":\"open\"}").is_err());
        assert!(Request::parse("{\"op\":\"query\"}").is_err());
        assert!(Request::parse("{\"q\":\"p\"}").is_err());
        assert!(Request::parse("{\"op\":\"warp\"}").is_err());
        assert!(Request::parse("{\"op\":\"rep_fence\"}").is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn replies_render_stably() {
        assert_eq!(
            Reply::ok("hello").render(None),
            "{\"ok\":true,\"op\":\"hello\"}"
        );
        assert_eq!(
            Reply::err("quota", "too many facts").render(Some(3)),
            "{\"error\":\"too many facts\",\"id\":3,\"kind\":\"quota\",\"ok\":false}"
        );
    }

    #[test]
    fn outcome_mapping() {
        let line = outcome_reply("query", &Outcome::True).render(None);
        assert!(line.contains("\"result\":\"true\""));
        let rows = Outcome::Answers(vec![vec!["a".into(), "b".into()]]);
        let line = outcome_reply("answers", &rows).render(None);
        assert!(line.contains("\"rows\":[[\"a\",\"b\"]]"));
        assert!(line.contains("\"count\":1"));
        let line = outcome_reply("query", &Outcome::Overloaded).render(None);
        assert!(line.contains("\"ok\":false"));
        assert!(line.contains("\"kind\":\"overloaded\""));
    }
}
