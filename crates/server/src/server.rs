//! The TCP server: accept loop, per-connection handlers, admission
//! control, and graceful drain.
//!
//! One thread accepts connections (nonblocking, polling the shutdown
//! flag); each accepted connection gets its own handler thread speaking
//! the newline-delimited JSON protocol of [`crate::protocol`]. A
//! connection binds to at most one tenant at a time via `open`; queries
//! run on that tenant's worker pool, mutations commit through its
//! durable session (batched across tenants by the shared group
//! committer when enabled).
//!
//! Admission control happens at two levels: connections past
//! `max_connections` are refused with a structured `overloaded` line
//! before a handler is spawned, and per-tenant in-flight/queue caps shed
//! queries inside [`crate::tenant`]. Graceful drain (`shutdown` op or
//! SIGTERM) stops the accept loop, half-closes every client socket so
//! in-flight replies still deliver, joins the handlers, checkpoints
//! every durable tenant, and shuts the group committer down.

use crate::json::Json;
use crate::protocol::{outcome_reply, Reply, Request, PROTOCOL_VERSION};
use crate::replication::{
    b64_decode, FenceState, FollowerState, ReplicaTenant, ReplicationHandle, Shipper, ShipperStats,
};
use crate::tenant::{BatchOp, BatchReply, Registry, RegistryConfig, Tenant, TenantQuotas};
use hdl_core::session::EngineKind;
use hdl_persist::{FsyncPolicy, GroupCommitter};
use hdl_service::QueryRequest;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything the server needs to start.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7671`. Port 0 binds an ephemeral
    /// port; [`Server::addr`] reports the actual one.
    pub listen: String,
    /// Persist root; tenants live under `<root>/tenants/<name>`.
    /// `None` = everything ephemeral.
    pub persist_root: Option<PathBuf>,
    /// Fsync policy for tenant WALs.
    pub fsync: FsyncPolicy,
    /// Batch concurrent WAL commits across tenants into shared fsync
    /// passes (ack-after-commit is preserved either way).
    pub group_commit: bool,
    /// Connections past this are refused with an `overloaded` line.
    pub max_connections: usize,
    /// Query workers per tenant.
    pub workers_per_tenant: usize,
    /// Quotas applied to every tenant.
    pub quotas: TenantQuotas,
    /// Engine used when a request names none.
    pub default_engine: EngineKind,
    /// Deadline applied when a request names none.
    pub default_deadline: Option<Duration>,
    /// Follower addresses to ship WAL windows to (primary role); one
    /// shipper thread fans out to all of them.
    pub replicate_to: Vec<String>,
    /// Default replication quorum a mutation ack waits for (0 = async).
    /// Must not exceed `replicate_to.len()`; tenants may override it
    /// via the protocol `open` op's `"sync"` field.
    pub sync_replicas: usize,
    /// Primary address this server trails (follower role): serve
    /// read-only replicas, refuse mutations, accept `rep_*` ops.
    /// Requires `persist_root`; mutually exclusive with `replicate_to`.
    pub follow: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            persist_root: None,
            fsync: FsyncPolicy::Always,
            group_commit: true,
            max_connections: 64,
            workers_per_tenant: 1,
            quotas: TenantQuotas::default(),
            default_engine: EngineKind::default(),
            default_deadline: None,
            replicate_to: Vec::new(),
            sync_replicas: 0,
            follow: None,
        }
    }
}

struct Inner {
    config: ServerConfig,
    registry: Arc<Registry>,
    committer: Option<Arc<GroupCommitter>>,
    addr: SocketAddr,
    /// Shared with the shipper threads, which poll it to exit on drain.
    shutdown: Arc<AtomicBool>,
    live: AtomicU64,
    accepted: AtomicU64,
    refused: AtomicU64,
    /// Live client sockets (for half-close on drain), keyed by
    /// connection id.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// Follower role state; `Some` exactly when `config.follow` is set
    /// (promotion flips its flag, not this option).
    follower: Option<Arc<FollowerState>>,
    /// The fencing epoch and read-only latch (epoch 0, unfenced, for
    /// ephemeral servers — still latchable in memory).
    fence: Arc<FenceState>,
    /// Quorum scoreboard + shipper kick; `Some` exactly when
    /// `replicate_to` is non-empty.
    replication: Option<Arc<ReplicationHandle>>,
    /// One stats handle per `replicate_to` target.
    shipper_stats: Vec<Arc<ShipperStats>>,
    shippers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server; dropping it without [`drain`](Server::drain) leaves
/// threads running, so hosts should always drain.
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.listen` and starts accepting. Returns once the
    /// listener is live (the actual address — ephemeral ports resolved —
    /// is [`addr`](Server::addr)).
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        if config.follow.is_some() {
            if config.persist_root.is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "--follow requires a persist root (the replica directories live there)",
                ));
            }
            if !config.replicate_to.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "--follow and --replicate-to are mutually exclusive (no chained replication)",
                ));
            }
        }
        if config.sync_replicas > config.replicate_to.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "--sync-replicas {} exceeds the {} configured replication targets",
                    config.sync_replicas,
                    config.replicate_to.len()
                ),
            ));
        }
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let committer =
            (config.group_commit && config.persist_root.is_some()).then(GroupCommitter::new);
        let fence = Arc::new(FenceState::load(config.persist_root.as_deref()));
        let replication = (!config.replicate_to.is_empty())
            .then(|| ReplicationHandle::new(config.replicate_to.len()));
        let registry = Arc::new(Registry::new(RegistryConfig {
            root: config.persist_root.clone(),
            policy: config.fsync,
            committer: committer.clone(),
            workers: config.workers_per_tenant,
            quotas: config.quotas.clone(),
            replication: replication.clone(),
            sync_replicas: config.sync_replicas,
        }));
        let shutdown = Arc::new(AtomicBool::new(false));
        let follower = config.follow.clone().map(|primary| {
            Arc::new(FollowerState::new(
                primary,
                config.persist_root.clone().expect("validated above"),
                config.fsync,
                config.quotas.clone(),
                config.workers_per_tenant,
            ))
        });
        let (shipper_stats, shippers) = match &replication {
            None => (Vec::new(), Vec::new()),
            Some(handle) => {
                let (stats, join) = Shipper::spawn(
                    Arc::clone(&registry),
                    &config.replicate_to,
                    Arc::clone(handle),
                    Arc::clone(&fence),
                    Arc::clone(&shutdown),
                );
                (stats, vec![join])
            }
        };
        let inner = Arc::new(Inner {
            config,
            registry,
            committer,
            addr,
            shutdown,
            live: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            follower,
            fence,
            replication,
            shipper_stats,
            shippers: Mutex::new(shippers),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("hdl-accept".to_owned())
                .spawn(move || accept_loop(&inner, listener))
                .expect("spawn accept thread")
        };
        Ok(Server {
            inner,
            accept: Some(accept),
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Asks the server to drain (idempotent); `drain` completes it.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, SeqCst);
    }

    /// Whether a drain has been requested (by [`request_shutdown`]
    /// (Self::request_shutdown) or a client `shutdown` op).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(SeqCst)
    }

    /// Blocks until a drain is requested — by a client `shutdown` op,
    /// [`request_shutdown`](Self::request_shutdown) from another thread,
    /// or `term` going true (e.g. the SIGTERM flag) — then drains.
    pub fn run(self, term: Option<&AtomicBool>) {
        while !self.shutdown_requested() && !term.is_some_and(|t| t.load(SeqCst)) {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.drain();
    }

    /// Graceful shutdown: stop accepting, half-close clients (in-flight
    /// replies still deliver), join handlers, checkpoint every durable
    /// tenant, stop the group committer.
    pub fn drain(mut self) {
        self.request_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        {
            let conns = self
                .inner
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for stream in conns.values() {
                // Half-close: the handler's next read sees EOF and exits
                // after finishing (and replying to) its current request.
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        let handlers: Vec<_> = self
            .inner
            .handlers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handlers {
            let _ = h.join();
        }
        let shippers: Vec<_> = self
            .inner
            .shippers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in shippers {
            let _ = h.join();
        }
        for (name, result) in self.inner.registry.checkpoint_all() {
            match result {
                Ok(epoch) => eprintln!("tenant {name}: checkpointed epoch {epoch} on shutdown"),
                Err(e) => eprintln!(
                    "warning: tenant {name}: shutdown checkpoint failed: {}",
                    e.message
                ),
            }
        }
        if let Some(c) = &self.inner.committer {
            c.shutdown();
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    loop {
        if inner.shutdown.load(SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if inner.live.load(SeqCst) >= inner.config.max_connections as u64 {
                    inner.refused.fetch_add(1, SeqCst);
                    refuse(stream);
                    continue;
                }
                let id = inner.accepted.fetch_add(1, SeqCst);
                inner.live.fetch_add(1, SeqCst);
                if let Ok(clone) = stream.try_clone() {
                    inner
                        .conns
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(id, clone);
                }
                let handler = {
                    let inner = Arc::clone(inner);
                    std::thread::Builder::new()
                        .name(format!("hdl-conn-{id}"))
                        .spawn(move || {
                            let _ = serve_connection(&inner, stream);
                            inner
                                .conns
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .remove(&id);
                            inner.live.fetch_sub(1, SeqCst);
                        })
                        .expect("spawn connection handler")
                };
                inner
                    .handlers
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handler);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                if inner.shutdown.load(SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Tells an over-capacity client why it is being dropped.
fn refuse(mut stream: TcpStream) {
    let line = Reply::err("overloaded", "server at max connections").render(None);
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

/// Builds the service request for a query/answers op: explicit options
/// win, server defaults fill the gaps, and the tenant's per-query fact
/// quota (`quota_max_facts`) is a ceiling a request may lower but never
/// raise.
fn build_request(
    kind_is_rows: bool,
    text: &str,
    opts: &crate::protocol::QueryOpts,
    config: &ServerConfig,
    quota_max_facts: Option<u64>,
) -> QueryRequest {
    let mut req = if kind_is_rows {
        QueryRequest::answers(text)
    } else {
        QueryRequest::ask(text)
    };
    req = req.with_engine(opts.engine.unwrap_or(config.default_engine));
    if let Some(d) = opts.deadline.or(config.default_deadline) {
        req = req.with_deadline(d);
    }
    match (opts.max_facts, quota_max_facts) {
        (Some(r), Some(q)) => req = req.with_max_facts(r.min(q)),
        (Some(r), None) => req = req.with_max_facts(r),
        // No per-request value: the tenant quota already sits in the
        // service config default.
        (None, _) => {}
    }
    req
}

/// How many pipelined requests one handler pass will take off the wire
/// at once. Bounds both the mutation window handed to
/// [`Tenant::apply_batch`] and the reply burst written back.
const PIPELINE_WINDOW: usize = 256;

/// A line reader that can *drain* without blocking: [`next_line`]
/// (Self::next_line) blocks for the next request like `BufReader::lines`
/// would, but [`buffered_line`](Self::buffered_line) only yields lines
/// the client has already sent (topping the buffer up with one
/// nonblocking read). That distinction is what turns a pipelining client
/// into deep mutation windows: the handler blocks for the first request
/// of a pass, then sweeps in every request already queued behind it.
/// Hard ceiling on one request line. Replication checkpoint transfers
/// are the biggest legitimate lines (base64 of a whole tenant image);
/// everything else is orders of magnitude smaller. Beyond this, the
/// line is not a request — it is a memory exhaustion attempt — and the
/// connection gets a structured `protocol` error and the boot.
pub(crate) const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    start: usize,
    /// Bytes already scanned for a newline (absolute index into `buf`).
    /// Keeps a newline-free stream linear: without it, every 16 KiB
    /// fill would rescan the whole pending line from the top.
    scanned: usize,
}

impl LineReader {
    fn new(stream: TcpStream) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
            start: 0,
            scanned: 0,
        }
    }

    /// The next complete line, blocking for it; `None` on EOF.
    fn next_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(line) = self.take_buffered_line() {
                return Ok(Some(line));
            }
            if !self.fill(true)? {
                return Ok(None);
            }
        }
    }

    /// A complete line the client has already sent, or `None` — never
    /// blocks. One nonblocking read tops the buffer up first so a burst
    /// that landed in the socket since the last pass is included.
    fn buffered_line(&mut self) -> Option<String> {
        if let Some(line) = self.take_buffered_line() {
            return Some(line);
        }
        let _ = self.fill(false);
        self.take_buffered_line()
    }

    fn take_buffered_line(&mut self) -> Option<String> {
        let from = self.scanned.max(self.start);
        let Some(off) = self.buf[from..].iter().position(|&b| b == b'\n') else {
            self.scanned = self.buf.len();
            return None;
        };
        let nl = from + off;
        let line = String::from_utf8_lossy(&self.buf[self.start..nl]).into_owned();
        self.start = nl + 1;
        self.scanned = self.start;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            self.scanned = 0;
        }
        Some(line)
    }

    /// Reads more bytes into the buffer. Returns false on EOF, or — in
    /// nonblocking mode — when nothing is ready. The nonblocking toggle
    /// also affects the write clone of this socket (same underlying
    /// description), so it is always restored before returning and
    /// nothing writes concurrently with a fill.
    fn fill(&mut self, blocking: bool) -> io::Result<bool> {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            self.scanned = 0;
        }
        // `fill` only runs when the pending bytes hold no complete line
        // (both callers drain complete lines first), so the pending
        // region is one partial line and this bound is exact.
        if self.buf.len() - self.start > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
        let mut chunk = [0u8; 16 * 1024];
        if !blocking {
            self.stream.set_nonblocking(true)?;
        }
        let result = self.stream.read(&mut chunk);
        if !blocking {
            let _ = self.stream.set_nonblocking(false);
        }
        match result {
            Ok(0) => Ok(false),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                if blocking {
                    self.fill(true)
                } else {
                    Ok(false)
                }
            }
            Err(e) => Err(e),
        }
    }
}

/// Maps a mutation request to its batch op; `None` for everything else.
fn mutation_op(request: &Request) -> Option<BatchOp<'_>> {
    match request {
        Request::Load { program } => Some(BatchOp::Load(program)),
        Request::Assume { facts } => Some(BatchOp::Assume(facts)),
        Request::Pop => Some(BatchOp::Pop),
        Request::Retract { fact } => Some(BatchOp::Retract(fact)),
        _ => None,
    }
}

/// Renders one batch result in the same shape the single-op path uses.
/// A window whose replication quorum wait timed out turns every applied
/// op's ack into a structured `degraded_ack`: the mutation is durable
/// locally and will reach the followers eventually, but the client's
/// quorum contract was not met within the deadline.
fn mutation_reply(
    tenant: &Tenant,
    result: Result<BatchReply, crate::tenant::TenantError>,
    degraded: Option<(usize, usize)>,
) -> Reply {
    if let (Ok(_), Some((replicated, required))) = (&result, degraded) {
        return Reply::err(
            "degraded_ack",
            "mutation applied and locally durable, but the replication \
             quorum wait hit its deadline",
        )
        .with("replicated", Json::num(replicated as f64))
        .with("required", Json::num(required as f64));
    }
    match result {
        Ok(BatchReply::Loaded) => Reply::ok("load").with("epoch", Json::num(tenant.epoch() as f64)),
        Ok(BatchReply::Assumed { frames }) => {
            Reply::ok("assume").with("frames", Json::num(frames as f64))
        }
        Ok(BatchReply::Popped { popped, frames }) => Reply::ok("pop")
            .with("popped", Json::num(popped as f64))
            .with("frames", Json::num(frames as f64)),
        Ok(BatchReply::Retracted { removed }) => {
            Reply::ok("retract").with("removed", Json::Bool(removed))
        }
        Err(e) => Reply::err(e.kind, e.message),
    }
}

/// Handles one non-mutation request (or a mutation with no tenant
/// bound). Returns the reply and whether the connection should close.
fn handle_one(
    inner: &Arc<Inner>,
    tenant: &mut Option<Arc<Tenant>>,
    replica: &mut Option<Arc<ReplicaTenant>>,
    request: &Request,
) -> (Reply, bool) {
    // A promotion mid-connection leaves stale replica bindings: rebind
    // through the registry, which owns the directories now.
    if replica.is_some() && inner.follower.as_ref().is_some_and(|f| !f.is_follower()) {
        let name = replica.take().expect("checked above").name().to_owned();
        if let Ok(t) = inner.registry.open(&name) {
            *tenant = Some(t);
        }
    }
    // The follower role, while it lasts, refuses every mutation with a
    // structured `read_only` error pointing at the primary.
    let follower = inner.follower.as_ref().filter(|f| f.is_follower());
    let is_mutation = mutation_op(request).is_some() || matches!(request, Request::Checkpoint);
    if let Some(f) = follower {
        if is_mutation {
            return (
                Reply::err(
                    "read_only",
                    format!(
                        "this server is a read-only follower of {}; send mutations there",
                        f.primary()
                    ),
                ),
                false,
            );
        }
    }
    // A fenced server has been superseded by a newer primary: every
    // mutation is refused until an operator promotes it (which clears
    // the latch by bumping the epoch past everything observed).
    if is_mutation && inner.fence.is_fenced() {
        return (fenced_reply(&inner.fence), false);
    }
    let mut close = false;
    let reply = match request {
        Request::Hello => Reply::ok("hello")
            .with("server", Json::str("hdl"))
            .with("protocol", Json::num(PROTOCOL_VERSION as f64))
            .with("group_commit", Json::Bool(inner.committer.is_some()))
            .with(
                "role",
                Json::str(if follower.is_some() {
                    "follower"
                } else {
                    "primary"
                }),
            )
            .with("fence_epoch", Json::num(inner.fence.epoch() as f64))
            .with("fenced", Json::Bool(inner.fence.is_fenced())),
        Request::Open { tenant: name, sync } => match follower {
            Some(f) => match f.open_replica(name) {
                Ok(r) => {
                    let pos = r.position();
                    let reply = Reply::ok("open")
                        .with("tenant", Json::str(r.name()))
                        .with("read_only", Json::Bool(true))
                        .with("epoch", Json::num(pos.epoch as f64));
                    *replica = Some(r);
                    *tenant = None;
                    reply
                }
                Err(e) => Reply::err(e.kind, e.message),
            },
            None => {
                let targets = inner.replication.as_ref().map_or(0, |r| r.targets());
                match sync {
                    Some(n) if *n as usize > targets => Reply::err(
                        "protocol",
                        format!(
                            "sync quorum {n} exceeds the {targets} configured \
                             replication targets"
                        ),
                    ),
                    _ => match inner.registry.open(name) {
                        Ok(t) => {
                            if let Some(n) = sync {
                                t.set_sync_replicas(*n as usize);
                            }
                            let reply = Reply::ok("open")
                                .with("tenant", Json::str(t.name()))
                                .with("durable", Json::Bool(t.is_durable()))
                                .with("epoch", Json::num(t.epoch() as f64))
                                .with("sync", Json::num(t.sync_replicas() as f64));
                            *tenant = Some(t);
                            *replica = None;
                            reply
                        }
                        Err(e) => Reply::err(e.kind, e.message),
                    },
                }
            }
        },
        Request::Query { q, opts } => match (&tenant, &replica) {
            (Some(t), _) => {
                let req = build_request(false, q, opts, &inner.config, t.quotas().query_max_facts);
                outcome_reply("query", &t.query(req))
            }
            (None, Some(r)) => {
                let req = build_request(
                    false,
                    q,
                    opts,
                    &inner.config,
                    inner.config.quotas.query_max_facts,
                );
                outcome_reply("query", &r.service().submit(req).wait())
            }
            (None, None) => no_tenant(),
        },
        Request::Answers { pattern, opts } => match (&tenant, &replica) {
            (Some(t), _) => {
                let req = build_request(
                    true,
                    pattern,
                    opts,
                    &inner.config,
                    t.quotas().query_max_facts,
                );
                outcome_reply("answers", &t.query(req))
            }
            (None, Some(r)) => {
                let req = build_request(
                    true,
                    pattern,
                    opts,
                    &inner.config,
                    inner.config.quotas.query_max_facts,
                );
                outcome_reply("answers", &r.service().submit(req).wait())
            }
            (None, None) => no_tenant(),
        },
        Request::Load { .. } | Request::Assume { .. } | Request::Pop | Request::Retract { .. } => {
            match &tenant {
                // With a tenant bound these ops go through the batch
                // path in `serve_connection`, never here.
                None => no_tenant(),
                Some(t) => {
                    let op = mutation_op(request).expect("mutation arm");
                    let mut outcome = t.apply_batch(&[op]);
                    let result = outcome.replies.pop().expect("one reply per op");
                    mutation_reply(t, result, outcome.degraded)
                }
            }
        }
        Request::Checkpoint => with_tenant(tenant, |t| {
            t.checkpoint()
                .map(|epoch| Reply::ok("checkpoint").with("epoch", Json::num(epoch as f64)))
        }),
        Request::Stats => stats_reply(inner, tenant.as_deref(), replica.as_deref()),
        Request::Close => {
            close = true;
            Reply::ok("close")
        }
        Request::Shutdown => {
            close = true;
            inner.shutdown.store(true, SeqCst);
            Reply::ok("shutdown").with("draining", Json::Bool(true))
        }
        Request::RepPosition {
            tenant: name,
            fence,
        } => match rep_fence_gate(inner, follower, fence) {
            Err(refusal) => refusal,
            Ok(None) => not_follower(),
            Ok(Some(f)) => {
                f.touch();
                stamp_fence(inner, f.rep_position(name))
            }
        },
        Request::RepWindow {
            tenant: name,
            epoch,
            offset,
            data,
            fence,
        } => match rep_fence_gate(inner, follower, fence) {
            Err(refusal) => refusal,
            Ok(None) => not_follower(),
            Ok(Some(f)) => {
                f.touch();
                match b64_decode(data) {
                    Err(e) => Reply::err("parse", format!("bad base64 in rep_window: {e}")),
                    Ok(bytes) => {
                        let reply = f.apply_window(name, *epoch, *offset, &bytes);
                        // Crash window: the bytes are applied and
                        // fsynced, but the ack never leaves — the
                        // primary re-negotiates and sees them acked
                        // implicitly in the resumed position.
                        hdl_base::failpoint_fire!("replicate::ack");
                        hdl_persist::crashpoint::crash_point("replicate::ack");
                        stamp_fence(inner, reply)
                    }
                }
            }
        },
        Request::RepCheckpoint {
            tenant: name,
            epoch,
            data,
            fence,
        } => match rep_fence_gate(inner, follower, fence) {
            Err(refusal) => refusal,
            Ok(None) => not_follower(),
            Ok(Some(f)) => {
                f.touch();
                match b64_decode(data) {
                    Err(e) => Reply::err("parse", format!("bad base64 in rep_checkpoint: {e}")),
                    Ok(image) => stamp_fence(inner, f.install_checkpoint(name, *epoch, &image)),
                }
            }
        },
        Request::RepHeartbeat { fence } => match rep_fence_gate(inner, follower, fence) {
            Err(refusal) => refusal,
            Ok(None) => not_follower(),
            Ok(Some(f)) => {
                f.touch();
                stamp_fence(inner, Reply::ok("rep_heartbeat"))
            }
        },
        Request::RepFence { epoch } => {
            // An explicit fencing announcement. A writable primary that
            // learns of a newer epoch latches itself read-only; a
            // follower merely adopts it (its eventual promotion must
            // bump above it).
            if follower.is_some() {
                inner.fence.adopt(*epoch);
            } else if inner.fence.fence_to(*epoch) {
                warn_fenced(*epoch);
            }
            Reply::ok("rep_fence")
                .with("epoch", Json::num(inner.fence.epoch() as f64))
                .with("fenced", Json::Bool(inner.fence.is_fenced()))
        }
        Request::Promote => match &inner.follower {
            None => Reply::err("protocol", "this server is not a follower"),
            Some(f) => {
                let was_follower = f.is_follower();
                let names = f.promote();
                // Bump the fencing epoch past everything this follower
                // observed from its primary, exactly once per actual
                // promotion (a second promote is a no-op).
                let fence_epoch = if was_follower {
                    inner.fence.bump_for_promote()
                } else {
                    inner.fence.epoch()
                };
                Reply::ok("promote")
                    .with("role", Json::str("primary"))
                    .with("fence_epoch", Json::num(fence_epoch as f64))
                    .with("tenants", Json::Arr(names.iter().map(Json::str).collect()))
            }
        },
    };
    (reply, close)
}

/// The fencing gate every `rep_*` op passes through. A stamped request
/// from a sender whose fence epoch is *older* than ours is refused with
/// a `fenced` reply naming our epoch — that is how a promoted follower
/// (or anyone who outlived the promotion) fences a restarted old
/// primary's shipper. Unstamped requests (pre-fencing peers, manual
/// probes) skip the check. On a live follower the stamp is adopted so
/// its eventual promotion bumps above the primary's epoch.
#[allow(clippy::type_complexity)]
fn rep_fence_gate<'a>(
    inner: &Arc<Inner>,
    follower: Option<&'a Arc<FollowerState>>,
    stamp: &Option<u64>,
) -> Result<Option<&'a Arc<FollowerState>>, Reply> {
    if let Some(stamp) = stamp {
        if *stamp < inner.fence.epoch() {
            return Err(fenced_reply(&inner.fence));
        }
        if follower.is_some() {
            inner.fence.adopt(*stamp);
        }
    }
    Ok(follower)
}

/// Stamps our fencing epoch onto a replication reply so the peer
/// observes promotions it missed.
fn stamp_fence(inner: &Arc<Inner>, reply: Reply) -> Reply {
    reply.with("fence", Json::num(inner.fence.epoch() as f64))
}

/// The structured `fenced` refusal, naming the epoch that superseded
/// this server.
fn fenced_reply(fence: &FenceState) -> Reply {
    Reply::err(
        "fenced",
        format!(
            "a newer primary exists (fence epoch {}); this server is \
             read-only until promoted",
            fence.epoch()
        ),
    )
    .with("epoch", Json::num(fence.epoch() as f64))
}

/// One structured warning when this process latches itself fenced via
/// an explicit `rep_fence` op.
fn warn_fenced(epoch: u64) {
    eprintln!(
        "{}",
        Json::obj(vec![
            ("warn", Json::str("fenced")),
            ("observed_epoch", Json::num(epoch as f64)),
            (
                "detail",
                Json::str(
                    "a newer primary exists; this server is now read-only \
                     and refuses mutations with kind `fenced`"
                ),
            ),
        ])
    );
}

fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) -> io::Result<()> {
    let mut reader = LineReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut tenant: Option<Arc<Tenant>> = None;
    let mut replica: Option<Arc<ReplicaTenant>> = None;
    // Block for one request, then sweep in whatever the client has
    // already pipelined behind it (bounded by the window).
    'conn: loop {
        let first = match reader.next_line() {
            Ok(Some(line)) => line,
            Ok(None) => break,
            // An oversized line is a protocol violation, not an IO fault:
            // tell the client what happened before hanging up.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let reply = Reply::err("protocol", e.to_string()).render(None);
                let _ = out.write_all(reply.as_bytes());
                let _ = out.write_all(b"\n");
                let _ = out.flush();
                break;
            }
            Err(_) => break,
        };
        let mut lines = vec![first];
        while lines.len() < PIPELINE_WINDOW {
            match reader.buffered_line() {
                Some(line) => lines.push(line),
                None => break,
            }
        }
        let parsed: Vec<Result<(Request, Option<u64>), String>> = lines
            .iter()
            .filter(|l| !l.trim().is_empty())
            .map(|l| Request::parse(l).map_err(|m| m.to_string()))
            .collect();
        let mut replies = String::new();
        let mut close = false;
        let mut i = 0;
        while i < parsed.len() && !close {
            match &parsed[i] {
                Err(msg) => {
                    replies.push_str(&Reply::err("parse", msg.clone()).render(None));
                    replies.push('\n');
                    i += 1;
                }
                Ok((request, id)) => {
                    // A run of consecutive mutations on a bound tenant
                    // becomes ONE batch: one lock hold, one snapshot,
                    // one durability wait for the whole run. A fenced
                    // server skips batching so each mutation falls
                    // through to `handle_one`'s structured refusal.
                    let batching = if mutation_op(request).is_some() && !inner.fence.is_fenced() {
                        tenant.clone()
                    } else {
                        None
                    };
                    if let Some(t) = batching {
                        let mut ops = Vec::new();
                        let mut ids = Vec::new();
                        while let Some(Ok((r, rid))) = parsed.get(i) {
                            match mutation_op(r) {
                                Some(op) => {
                                    ops.push(op);
                                    ids.push(*rid);
                                    i += 1;
                                }
                                None => break,
                            }
                        }
                        let outcome = t.apply_batch(&ops);
                        let degraded = outcome.degraded;
                        for (result, rid) in outcome.replies.into_iter().zip(ids) {
                            replies.push_str(&mutation_reply(&t, result, degraded).render(rid));
                            replies.push('\n');
                        }
                    } else {
                        let (reply, c) = handle_one(inner, &mut tenant, &mut replica, request);
                        close = c;
                        replies.push_str(&reply.render(*id));
                        replies.push('\n');
                        i += 1;
                    }
                }
            }
        }
        out.write_all(replies.as_bytes())?;
        out.flush()?;
        if close {
            break 'conn;
        }
    }
    Ok(())
}

fn no_tenant() -> Reply {
    Reply::err(
        "no-tenant",
        "no tenant bound — send {\"op\":\"open\",\"tenant\":NAME} first",
    )
}

fn not_follower() -> Reply {
    Reply::err("protocol", "this server is not a follower")
}

fn with_tenant(
    tenant: &Option<Arc<Tenant>>,
    f: impl FnOnce(&Tenant) -> Result<Reply, crate::tenant::TenantError>,
) -> Reply {
    match tenant {
        None => no_tenant(),
        Some(t) => match f(t) {
            Ok(reply) => reply,
            Err(e) => Reply::err(e.kind, e.message),
        },
    }
}

/// Embeds a `to_json()` string from another crate as a JSON value.
fn raw(json: String) -> Json {
    Json::parse(&json).unwrap_or(Json::Null)
}

fn stats_reply(
    inner: &Arc<Inner>,
    tenant: Option<&Tenant>,
    replica: Option<&ReplicaTenant>,
) -> Reply {
    let server = Json::obj(vec![
        ("addr", Json::str(inner.addr.to_string())),
        (
            "connections_live",
            Json::num(inner.live.load(SeqCst) as f64),
        ),
        (
            "connections_total",
            Json::num(inner.accepted.load(SeqCst) as f64),
        ),
        (
            "connections_refused",
            Json::num(inner.refused.load(SeqCst) as f64),
        ),
        ("tenants", Json::num(inner.registry.len() as f64)),
        ("draining", Json::Bool(inner.shutdown.load(SeqCst))),
        ("fence_epoch", Json::num(inner.fence.epoch() as f64)),
        ("fenced", Json::Bool(inner.fence.is_fenced())),
        (
            "group_commit",
            match &inner.committer {
                Some(c) => raw(c.stats().to_json()),
                None => Json::Null,
            },
        ),
    ]);
    let mut reply = Reply::ok("stats").with("server", server);
    if let Some(f) = &inner.follower {
        reply = reply.with("replication", f.stats_json());
    } else if !inner.shipper_stats.is_empty() {
        let targets: Vec<Json> = inner.shipper_stats.iter().map(|s| s.to_json()).collect();
        reply = reply.with(
            "replication",
            Json::obj(vec![
                ("role", Json::str("primary")),
                (
                    "sync_replicas",
                    Json::num(inner.config.sync_replicas as f64),
                ),
                ("targets", Json::Arr(targets)),
            ]),
        );
    }
    if let Some(t) = tenant {
        reply = reply
            .with("tenant", t.stats_json())
            .with("service", raw(t.service().stats().to_json()));
    } else if let Some(r) = replica {
        reply = reply
            .with("tenant", r.stats_json())
            .with("service", raw(r.service().stats().to_json()));
    }
    reply
}

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    // An atomic store is async-signal-safe.
    TERM.store(true, SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that set (and return) a flag, for
/// hosts to pass to [`Server::run`]. Uses `signal(2)` directly against
/// the libc std already links — the build environment has no signal
/// crate, and a flag store is all a drain needs.
#[cfg(unix)]
pub fn install_termination_flag() -> &'static AtomicBool {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        signal(SIGINT, on_term as extern "C" fn(i32) as usize);
    }
    &TERM
}

/// Non-unix fallback: the flag exists but nothing sets it (client
/// `shutdown` ops still drain the server).
#[cfg(not(unix))]
pub fn install_termination_flag() -> &'static AtomicBool {
    &TERM
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
            }
        }

        fn send(&mut self, line: &str) -> Json {
            writeln!(self.writer, "{line}").unwrap();
            self.writer.flush().unwrap();
            self.recv()
        }

        fn recv(&mut self) -> Json {
            let mut reply = String::new();
            self.reader.read_line(&mut reply).unwrap();
            Json::parse(reply.trim()).unwrap()
        }
    }

    fn ok(v: &Json) -> bool {
        v.get("ok").and_then(Json::as_bool) == Some(true)
    }

    #[test]
    fn end_to_end_session_over_tcp() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0, "port 0 resolves to a real port");
        let mut c = Client::connect(addr);

        let hello = c.send("{\"op\":\"hello\"}");
        assert!(ok(&hello));
        // Queries before open are structured errors, not disconnects.
        let early = c.send("{\"op\":\"query\",\"q\":\"p(a)\"}");
        assert_eq!(early.get("kind").and_then(Json::as_str), Some("no-tenant"));

        assert!(ok(&c.send("{\"op\":\"open\",\"tenant\":\"t1\"}")));
        assert!(ok(&c.send(
            "{\"op\":\"load\",\"program\":\"edge(a, b). tc(X, Y) :- edge(X, Y).\"}"
        )));
        let yes = c.send("{\"op\":\"query\",\"q\":\"tc(a, b)\",\"id\":5}");
        assert_eq!(yes.get("result").and_then(Json::as_str), Some("true"));
        assert_eq!(yes.get("id").and_then(Json::as_u64), Some(5));
        let rows = c.send("{\"op\":\"answers\",\"pattern\":\"tc(X, Y)\"}");
        assert_eq!(rows.get("count").and_then(Json::as_u64), Some(1));

        let stats = c.send("{\"op\":\"stats\"}");
        assert!(ok(&stats));
        let addr_in_stats = stats
            .get("server")
            .and_then(|s| s.get("addr"))
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        assert_eq!(addr_in_stats, addr.to_string());

        assert!(ok(&c.send("{\"op\":\"close\"}")));
        server.drain();
    }

    #[test]
    fn connection_admission_refuses_past_cap() {
        let server = Server::start(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut first = Client::connect(server.addr());
        assert!(ok(&first.send("{\"op\":\"hello\"}")));
        // The second connection is refused with a structured line.
        let mut second = Client::connect(server.addr());
        let refusal = second.recv();
        assert_eq!(
            refusal.get("kind").and_then(Json::as_str),
            Some("overloaded")
        );
        drop(second);
        server.drain();
    }

    #[test]
    fn shutdown_op_drains_cleanly() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.addr();
        let mut c = Client::connect(addr);
        assert!(ok(&c.send("{\"op\":\"open\",\"tenant\":\"t\"}")));
        let bye = c.send("{\"op\":\"shutdown\"}");
        assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));
        // run() observes the flag the op set and drains.
        server.run(None);
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may briefly accept into the backlog after close;
                // either refusal or an immediately-dead socket is fine.
                true
            }
        );
    }

    /// A client that writes many requests before reading gets one reply
    /// per request, in order, with ids echoed — and mutation runs are
    /// windowed through the batch path without changing the wire shape.
    #[test]
    fn pipelined_requests_reply_in_order() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        assert!(ok(&c.send("{\"op\":\"open\",\"tenant\":\"t\"}")));
        let mut burst = String::new();
        for i in 0..40 {
            burst.push_str(&format!(
                "{{\"op\":\"load\",\"program\":\"p(x{i}).\",\"id\":{i}}}\n"
            ));
        }
        // A query rides in the middle of the next burst: it must see
        // every mutation acked before it and keep its place in line.
        burst.push_str("{\"op\":\"query\",\"q\":\"p(x39)\",\"id\":100}\n");
        burst.push_str("{\"op\":\"load\",\"program\":\"p(tail).\",\"id\":101}\n");
        c.writer.write_all(burst.as_bytes()).unwrap();
        c.writer.flush().unwrap();
        for i in 0..40 {
            let reply = c.recv();
            assert!(ok(&reply), "load {i} failed: {reply:?}");
            assert_eq!(reply.get("id").and_then(Json::as_u64), Some(i));
        }
        let q = c.recv();
        assert_eq!(q.get("id").and_then(Json::as_u64), Some(100));
        assert_eq!(q.get("result").and_then(Json::as_str), Some("true"));
        let tail = c.recv();
        assert_eq!(tail.get("id").and_then(Json::as_u64), Some(101));
        assert!(ok(&tail));
        server.drain();
    }

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let pid = std::process::id();
            let n = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos();
            let dir = std::env::temp_dir().join(format!("hdl-server-{tag}-{pid}-{n}"));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Polls `check` for up to ~5s; panics with `what` on timeout.
    fn wait_for(what: &str, mut check: impl FnMut() -> bool) {
        for _ in 0..500 {
            if check() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("timed out waiting for {what}");
    }

    /// End-to-end primary → follower: mutations on the primary become
    /// queryable on the follower, the follower refuses mutations with a
    /// structured `read_only` error and reports staleness, and promote
    /// turns it into a writable primary.
    #[test]
    fn follower_replicates_serves_read_only_and_promotes() {
        let p_root = TempDir::new("rep-p");
        let f_root = TempDir::new("rep-f");
        let follower = Server::start(ServerConfig {
            persist_root: Some(f_root.0.clone()),
            follow: Some("primary.invalid:0".to_owned()),
            ..ServerConfig::default()
        })
        .unwrap();
        let primary = Server::start(ServerConfig {
            persist_root: Some(p_root.0.clone()),
            replicate_to: vec![follower.addr().to_string()],
            ..ServerConfig::default()
        })
        .unwrap();

        let mut p = Client::connect(primary.addr());
        assert!(ok(&p.send("{\"op\":\"open\",\"tenant\":\"t\"}")));
        assert!(ok(&p.send(
            "{\"op\":\"load\",\"program\":\"edge(a, b). edge(b, c). \
             tc(X, Y) :- edge(X, Y). tc(X, Z) :- edge(X, Y), tc(Y, Z).\"}"
        )));

        let mut f = Client::connect(follower.addr());
        let hello = f.send("{\"op\":\"hello\"}");
        assert_eq!(hello.get("role").and_then(Json::as_str), Some("follower"));
        let open = f.send("{\"op\":\"open\",\"tenant\":\"t\"}");
        assert_eq!(open.get("read_only").and_then(Json::as_bool), Some(true));
        wait_for("replicated answer on the follower", || {
            f.send("{\"op\":\"query\",\"q\":\"tc(a, c)\"}")
                .get("result")
                .and_then(Json::as_str)
                == Some("true")
        });

        // Mutations on the follower are refused with `read_only`.
        let denied = f.send("{\"op\":\"load\",\"program\":\"edge(c, d).\"}");
        assert_eq!(denied.get("kind").and_then(Json::as_str), Some("read_only"));
        let denied = f.send("{\"op\":\"checkpoint\"}");
        assert_eq!(denied.get("kind").and_then(Json::as_str), Some("read_only"));

        // Stats on both sides show the replication link.
        let stats = f.send("{\"op\":\"stats\"}");
        let rep = stats.get("replication").expect("follower replication");
        assert_eq!(rep.get("role").and_then(Json::as_str), Some("follower"));
        assert!(rep.get("last_contact_ms").and_then(Json::as_u64).is_some());
        let stats = p.send("{\"op\":\"stats\"}");
        let rep = stats.get("replication").expect("primary replication");
        assert_eq!(rep.get("role").and_then(Json::as_str), Some("primary"));

        // A checkpoint rotation on the primary ships an image and the
        // follower keeps tracking new windows after it.
        assert!(ok(&p.send("{\"op\":\"checkpoint\"}")));
        assert!(ok(&p.send("{\"op\":\"load\",\"program\":\"edge(c, d).\"}")));
        wait_for("post-rotation window on the follower", || {
            f.send("{\"op\":\"query\",\"q\":\"tc(a, d)\"}")
                .get("result")
                .and_then(Json::as_str)
                == Some("true")
        });

        // Promote: the follower becomes writable; the same connection's
        // stale replica binding is rebound transparently.
        let promoted = f.send("{\"op\":\"promote\"}");
        assert!(ok(&promoted), "{promoted:?}");
        assert_eq!(promoted.get("role").and_then(Json::as_str), Some("primary"));
        assert!(ok(&f.send("{\"op\":\"open\",\"tenant\":\"t\"}")));
        assert!(ok(&f.send("{\"op\":\"load\",\"program\":\"edge(d, e).\"}")));
        let q = f.send("{\"op\":\"query\",\"q\":\"tc(a, e)\"}");
        assert_eq!(q.get("result").and_then(Json::as_str), Some("true"));
        // A second promote is a no-op, not an error.
        assert!(ok(&f.send("{\"op\":\"promote\"}")));

        primary.drain();
        follower.drain();
    }

    /// Rep ops against a server that is not a follower are structured
    /// protocol errors, never panics.
    #[test]
    fn rep_ops_refused_on_non_followers() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        for line in [
            "{\"op\":\"rep_position\",\"tenant\":\"t\"}",
            "{\"op\":\"rep_window\",\"tenant\":\"t\",\"epoch\":0,\"offset\":16,\"data\":\"\"}",
            "{\"op\":\"rep_checkpoint\",\"tenant\":\"t\",\"epoch\":1,\"data\":\"\"}",
            "{\"op\":\"rep_heartbeat\"}",
            "{\"op\":\"promote\"}",
        ] {
            let reply = c.send(line);
            assert_eq!(
                reply.get("kind").and_then(Json::as_str),
                Some("protocol"),
                "{line}"
            );
        }
        server.drain();
    }

    #[test]
    fn follower_config_validation() {
        assert!(Server::start(ServerConfig {
            follow: Some("127.0.0.1:1".to_owned()),
            ..ServerConfig::default()
        })
        .is_err());
        let root = TempDir::new("rep-conflict");
        assert!(Server::start(ServerConfig {
            persist_root: Some(root.0.clone()),
            follow: Some("127.0.0.1:1".to_owned()),
            replicate_to: vec!["127.0.0.1:2".to_owned()],
            ..ServerConfig::default()
        })
        .is_err());
    }

    #[test]
    fn bad_tenant_names_are_refused() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut c = Client::connect(server.addr());
        let bad = c.send("{\"op\":\"open\",\"tenant\":\"../escape\"}");
        assert_eq!(
            bad.get("kind").and_then(Json::as_str),
            Some("bad-tenant-name")
        );
        server.drain();
    }
}
