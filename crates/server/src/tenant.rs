//! Tenants: named, isolated worlds multiplexed by one server process.
//!
//! Each tenant owns a [`DurableSession`] (its own persist directory and
//! snapshot lineage under `<root>/tenants/<name>`) and a
//! [`QueryService`] worker pool serving snapshots of that session.
//! Mutations from all tenants funnel through one shared
//! [`GroupCommitter`] so concurrent commits across tenants share fsync
//! passes without ever sharing state: nothing a tenant asserts, assumes,
//! or retracts is visible to any other tenant.
//!
//! Sessions open in *pipelined* group mode: a mutation applies under the
//! tenant's session lock, but the durability wait happens after the lock
//! is released, so concurrent connections (to this tenant or any other)
//! stack their commits into the same batch instead of serializing one
//! fsync behind another. On top of that, [`Tenant::apply_batch`] applies
//! a whole pipeline window of mutations from one connection under a
//! single lock hold — one snapshot, one publish, and one durability wait
//! amortized over the window, mirroring on the CPU side what the group
//! committer does for fsync. The ack protocol is unchanged either way —
//! the mutating call returns (and the new snapshot is published to the
//! query pool) only after every commit ticket resolves, so clients never
//! see an ack, and queries never see data, that could be lost to a
//! crash.
//!
//! Quotas are enforced at admission: a mutation that would exceed the
//! tenant's base-fact or assumption-depth cap is refused *before* it
//! touches the session or the WAL, and queries past the tenant's
//! in-flight cap are shed as `overloaded` without being enqueued.

use crate::json::Json;
use crate::replication::ReplicationHandle;
use hdl_base::GroundAtom;
use hdl_core::{parse_program, split_facts, Session};
use hdl_persist::{DurableSession, FsyncPolicy, GroupCommitter};
use hdl_service::{Outcome, QueryRequest, QueryService, ServiceConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Per-tenant resource limits. `None` means unlimited.
#[derive(Clone, Debug)]
pub struct TenantQuotas {
    /// Cap on base facts a tenant may store (checked at load/assert
    /// admission; the mutation is refused before touching the WAL).
    pub max_base_facts: Option<u64>,
    /// Cap on stacked assumption frames (and on per-query overlay
    /// depth, via the tenant's service config).
    pub max_overlay_depth: Option<u64>,
    /// The tenant's share of queued queries; past it submissions shed
    /// as [`Outcome::Overloaded`].
    pub queue_cap: Option<usize>,
    /// Concurrent requests one tenant may have in flight across all its
    /// connections; past it queries are refused at admission.
    pub max_in_flight: usize,
    /// Default per-query fact budget (a request may lower, never raise
    /// it).
    pub query_max_facts: Option<u64>,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas {
            max_base_facts: None,
            max_overlay_depth: None,
            queue_cap: None,
            max_in_flight: 64,
            query_max_facts: None,
        }
    }
}

/// A structured tenant-layer failure: the reply `kind` plus a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantError {
    /// Machine-readable reply kind (`quota`, `query`, `protocol`,
    /// `internal`, `bad-tenant-name`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl TenantError {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        TenantError {
            kind,
            message: message.into(),
        }
    }

    fn quota(message: impl Into<String>) -> Self {
        Self::new("quota", message)
    }
}

/// One mutation in a pipeline window (see [`Tenant::apply_batch`]).
/// Borrowed text: ops are built straight from parsed requests.
#[derive(Clone, Copy, Debug)]
pub enum BatchOp<'a> {
    /// Load program text (rules and facts).
    Load(&'a str),
    /// Push an assumption frame of ground facts.
    Assume(&'a str),
    /// Pop the top assumption frame.
    Pop,
    /// Retract one base fact.
    Retract(&'a str),
}

/// The per-op result of a window, mirroring [`BatchOp`] variant for
/// variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchReply {
    /// The program loaded.
    Loaded,
    /// A frame was pushed; `frames` is the new stack depth.
    Assumed {
        /// Assumption frames now stacked.
        frames: usize,
    },
    /// The top frame was popped.
    Popped {
        /// Facts in the popped frame.
        popped: usize,
        /// Frames left.
        frames: usize,
    },
    /// A retraction ran.
    Retracted {
        /// Whether the fact existed.
        removed: bool,
    },
}

/// The result of one [`Tenant::apply_batch`] window: per-op replies
/// plus the window-level degraded-ack marker.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One result per op, mirroring the input order.
    pub replies: Vec<Result<BatchReply, TenantError>>,
    /// Set when the window applied and is locally durable but the
    /// `sync` replication quorum wait timed out: `(replicated,
    /// required)` follower counts. The mutations are *not* rolled back
    /// — they are durable here and will reach the followers eventually
    /// — but the client must be told its quorum was not met.
    pub degraded: Option<(usize, usize)>,
}

/// How the registry builds tenants.
#[derive(Clone)]
pub struct RegistryConfig {
    /// Root directory; each tenant persists under
    /// `<root>/tenants/<name>`. `None` = all tenants ephemeral.
    pub root: Option<PathBuf>,
    /// Fsync policy for every tenant WAL.
    pub policy: FsyncPolicy,
    /// Shared group committer; when set, tenant WAL commits are batched
    /// across tenants into shared fsync passes.
    pub committer: Option<Arc<GroupCommitter>>,
    /// Query workers per tenant.
    pub workers: usize,
    /// Quotas applied to every tenant.
    pub quotas: TenantQuotas,
    /// Shared link to the replication shipper (primaries with
    /// `--replicate-to`): tenants kick it on every commit and `sync`
    /// tenants block their ack on its quorum scoreboard.
    pub replication: Option<Arc<ReplicationHandle>>,
    /// Server-wide default replication quorum a mutation ack waits for
    /// (0 = async). Tenants may override it via the protocol `open` op.
    pub sync_replicas: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            root: None,
            policy: FsyncPolicy::Always,
            committer: None,
            workers: 1,
            quotas: TenantQuotas::default(),
            replication: None,
            sync_replicas: 0,
        }
    }
}

/// One tenant: a durable session plus its query pool and counters.
pub struct Tenant {
    name: String,
    session: Mutex<DurableSession>,
    service: QueryService,
    quotas: TenantQuotas,
    in_flight: AtomicUsize,
    mutations: AtomicU64,
    quota_trips: AtomicU64,
    /// Mutation sequence, assigned under the session lock — the order
    /// snapshots were taken in, used to keep publishes monotonic when
    /// durability waits resolve out of order across connections.
    publish_seq: AtomicU64,
    /// Sequence of the newest snapshot actually published.
    published: Mutex<u64>,
    /// Set when a group commit resolved to an error: the in-memory
    /// session is then ahead of a failed log and further mutations are
    /// refused until the process is restarted (recovery re-reads disk).
    poisoned: AtomicBool,
    /// Link to the replication shipper (primaries only).
    replication: Option<Arc<ReplicationHandle>>,
    /// Follower acks a mutation waits for before the client is acked
    /// (0 = async). Set from the registry default, overridable per
    /// tenant via the protocol `open` op.
    sync_replicas: AtomicUsize,
}

fn lock_session(m: &Mutex<DurableSession>) -> MutexGuard<'_, DurableSession> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Valid tenant names are short path-safe identifiers: they become
/// directory names under the persist root, so nothing resembling a path
/// (separators, dots, empty) is accepted.
pub fn validate_tenant_name(name: &str) -> Result<(), TenantError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(TenantError::new(
            "bad-tenant-name",
            format!("tenant name `{name}` is not [A-Za-z0-9_-]{{1,64}}"),
        ))
    }
}

impl Tenant {
    fn open(name: &str, config: &RegistryConfig) -> Result<Tenant, TenantError> {
        let session = match &config.root {
            None => DurableSession::ephemeral(),
            Some(root) => {
                let dir = root.join("tenants").join(name);
                let opened = match &config.committer {
                    Some(c) => {
                        DurableSession::open_grouped_pipelined(&dir, config.policy, Arc::clone(c))
                    }
                    None => DurableSession::open(&dir, config.policy),
                };
                opened.map_err(|e| {
                    TenantError::new("internal", format!("cannot open tenant `{name}`: {e}"))
                })?
            }
        };
        let service = QueryService::with_config(
            session.snapshot(),
            ServiceConfig {
                workers: config.workers,
                queue_cap: config.quotas.queue_cap,
                max_facts: config.quotas.query_max_facts,
                max_overlay_depth: config.quotas.max_overlay_depth,
                ..ServiceConfig::default()
            },
        );
        if let Some(r) = session.recovery_report() {
            if r.restored_anything() || r.records_truncated > 0 || r.checkpoints_skipped > 0 {
                service.set_recovery(r.checkpoint_epoch, r.records_replayed, r.records_truncated);
            }
        }
        Ok(Tenant {
            name: name.to_owned(),
            session: Mutex::new(session),
            service,
            quotas: config.quotas.clone(),
            in_flight: AtomicUsize::new(0),
            mutations: AtomicU64::new(0),
            quota_trips: AtomicU64::new(0),
            publish_seq: AtomicU64::new(0),
            published: Mutex::new(0),
            poisoned: AtomicBool::new(false),
            replication: config.replication.clone(),
            sync_replicas: AtomicUsize::new(config.sync_replicas),
        })
    }

    /// The replication quorum this tenant's mutation acks wait for
    /// (0 = asynchronous).
    pub fn sync_replicas(&self) -> usize {
        self.sync_replicas.load(Relaxed)
    }

    /// Sets the per-tenant replication quorum. Callers validate `n`
    /// against the configured target count before calling.
    pub fn set_sync_replicas(&self, n: usize) {
        self.sync_replicas.store(n, Relaxed);
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether mutations are write-ahead logged.
    pub fn is_durable(&self) -> bool {
        lock_session(&self.session).is_durable()
    }

    /// The active checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        lock_session(&self.session).epoch()
    }

    /// The quotas in force.
    pub fn quotas(&self) -> &TenantQuotas {
        &self.quotas
    }

    /// The tenant's query pool (e.g. for stats).
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Runs one query, admission-checked against the tenant's in-flight
    /// cap. The cap is taken optimistically (fetch-add then check) so
    /// concurrent submitters cannot race past it together.
    pub fn query(&self, request: QueryRequest) -> Outcome {
        if self.in_flight.fetch_add(1, Relaxed) >= self.quotas.max_in_flight {
            self.in_flight.fetch_sub(1, Relaxed);
            self.quota_trips.fetch_add(1, Relaxed);
            return Outcome::Overloaded;
        }
        let outcome = self.service.submit(request).wait();
        self.in_flight.fetch_sub(1, Relaxed);
        outcome
    }

    /// Loads program text (rules and facts), enforcing the base-fact
    /// quota before anything reaches the session or the WAL.
    pub fn load(&self, program: &str) -> Result<(), TenantError> {
        match self.single(BatchOp::Load(program))? {
            BatchReply::Loaded => Ok(()),
            other => unreachable!("load reply, got {other:?}"),
        }
    }

    /// Pushes an assumption frame; returns the new frame count.
    pub fn assume(&self, facts_text: &str) -> Result<usize, TenantError> {
        match self.single(BatchOp::Assume(facts_text))? {
            BatchReply::Assumed { frames } => Ok(frames),
            other => unreachable!("assume reply, got {other:?}"),
        }
    }

    /// Pops the top assumption frame; returns (popped facts, frames
    /// left).
    pub fn pop(&self) -> Result<(usize, usize), TenantError> {
        match self.single(BatchOp::Pop)? {
            BatchReply::Popped { popped, frames } => Ok((popped, frames)),
            other => unreachable!("pop reply, got {other:?}"),
        }
    }

    /// Retracts one base fact; returns whether it existed.
    pub fn retract(&self, fact_text: &str) -> Result<bool, TenantError> {
        match self.single(BatchOp::Retract(fact_text))? {
            BatchReply::Retracted { removed } => Ok(removed),
            other => unreachable!("retract reply, got {other:?}"),
        }
    }

    fn single(&self, op: BatchOp<'_>) -> Result<BatchReply, TenantError> {
        self.apply_batch(&[op])
            .replies
            .pop()
            .expect("one reply per op")
    }

    /// Applies a pipeline window of mutations under ONE session lock
    /// hold, with ONE snapshot, ONE publish, and ONE durability wait for
    /// the whole window. Each op gets its own result — a bad program in
    /// the middle fails alone while its neighbours apply — but the ack
    /// contract is per-window: nothing here returns until every applied
    /// op is durable under the tenant's fsync policy.
    ///
    /// This is what makes deep group-commit batches affordable on the
    /// server: the per-mutation costs that dominate a pipelined
    /// connection (the O(db) snapshot clone and the publish) are paid
    /// once per window, the same way the committer amortizes the fsync.
    pub fn apply_batch(&self, ops: &[BatchOp<'_>]) -> BatchOutcome {
        if ops.is_empty() {
            return BatchOutcome {
                replies: Vec::new(),
                degraded: None,
            };
        }
        if let Err(e) = self.admit() {
            return BatchOutcome {
                replies: ops.iter().map(|_| Err(e.clone())).collect(),
                degraded: None,
            };
        }
        let mut session = lock_session(&self.session);
        let mut replies: Vec<Result<BatchReply, TenantError>> = Vec::with_capacity(ops.len());
        let mut applied = 0u64;
        for op in ops {
            let reply = self.apply_locked(&mut session, op);
            if reply.is_ok() {
                applied += 1;
            }
            replies.push(reply);
        }
        let mut degraded = None;
        if applied > 0 {
            match self.committed(session, applied) {
                Ok(d) => degraded = d,
                // Durability failed: no op in this window may be acked
                // as applied, whatever the in-memory session says.
                Err(e) => {
                    for r in replies.iter_mut() {
                        if r.is_ok() {
                            *r = Err(e.clone());
                        }
                    }
                }
            }
        }
        BatchOutcome { replies, degraded }
    }

    /// One op against the locked session: quota admission, parse, apply.
    /// No snapshot, no publish, no durability wait — the batch driver
    /// owns those.
    fn apply_locked(
        &self,
        session: &mut DurableSession,
        op: &BatchOp<'_>,
    ) -> Result<BatchReply, TenantError> {
        match op {
            BatchOp::Load(program) => {
                if let Some(cap) = self.quotas.max_base_facts {
                    // Count the incoming facts against a scratch symbol
                    // table: the real parse happens only once admission
                    // passes.
                    let mut scratch = session.symbols().clone();
                    let rb = parse_program(program, &mut scratch)
                        .map_err(|e| TenantError::new("query", e.to_string()))?;
                    let (_, facts) = split_facts(rb);
                    let current = session.database().len() as u64;
                    if current + facts.len() as u64 > cap {
                        self.quota_trips.fetch_add(1, Relaxed);
                        return Err(TenantError::quota(format!(
                            "base-fact quota: {current} stored + {} incoming > cap {cap}",
                            facts.len()
                        )));
                    }
                }
                session
                    .load(program)
                    .map_err(|e| TenantError::new("query", e.to_string()))?;
                Ok(BatchReply::Loaded)
            }
            BatchOp::Assume(facts_text) => {
                if let Some(cap) = self.quotas.max_overlay_depth {
                    let depth = session.assumptions().len() as u64;
                    if depth >= cap {
                        self.quota_trips.fetch_add(1, Relaxed);
                        return Err(TenantError::quota(format!(
                            "assumption-depth quota: {depth} frames stacked, cap {cap}"
                        )));
                    }
                }
                let facts = parse_ground_facts(facts_text, session)
                    .map_err(|e| TenantError::new("query", e))?;
                session
                    .assume(facts)
                    .map_err(|e| TenantError::new("query", e.to_string()))?;
                Ok(BatchReply::Assumed {
                    frames: session.assumptions().len(),
                })
            }
            BatchOp::Pop => match session.pop_assumption() {
                Ok(Some(frame)) => Ok(BatchReply::Popped {
                    popped: frame.len(),
                    frames: session.assumptions().len(),
                }),
                Ok(None) => Err(TenantError::new("protocol", "no assumption frame to pop")),
                Err(e) => Err(TenantError::new("query", e.to_string())),
            },
            BatchOp::Retract(fact_text) => {
                let mut facts = parse_ground_facts(fact_text, session)
                    .map_err(|e| TenantError::new("query", e))?;
                if facts.len() != 1 {
                    return Err(TenantError::new(
                        "protocol",
                        "retract takes exactly one fact",
                    ));
                }
                let fact = facts.pop().expect("checked length");
                let removed = session
                    .retract_fact(&fact)
                    .map_err(|e| TenantError::new("query", e.to_string()))?;
                Ok(BatchReply::Retracted { removed })
            }
        }
    }

    /// Compacts the tenant's WAL into a checkpoint; returns the epoch.
    /// Drains the tenant's in-flight group commits first (the rotation
    /// deletes the log they target).
    pub fn checkpoint(&self) -> Result<u64, TenantError> {
        self.admit()?;
        let mut session = lock_session(&self.session);
        session
            .checkpoint()
            .map_err(|e| TenantError::new("protocol", e.to_string()))
    }

    /// A handle for reading this tenant's committed WAL bytes, used by
    /// the replication shipper. `None` for in-memory tenants.
    pub fn wal_tap(&self) -> Option<hdl_persist::WalTap> {
        lock_session(&self.session).wal_tap()
    }

    /// Refuses work on a tenant whose log failed (see `poisoned`).
    fn admit(&self) -> Result<(), TenantError> {
        if self.poisoned.load(Relaxed) {
            return Err(TenantError::new(
                "internal",
                "tenant persistence failed; restart the server to recover from disk",
            ));
        }
        Ok(())
    }

    /// Completes a window of mutations that already applied under the
    /// session lock: snapshot and sequence once for the window, release
    /// the lock, wait every durability ticket, then count and publish.
    /// The waits happen *outside* the lock — the whole point of
    /// pipelined mode — so the publish must be kept monotonic by
    /// sequence (a slow waiter must not regress the pool to a pre-ack
    /// snapshot; skipping is safe because the newer published snapshot
    /// already contains these mutations).
    ///
    /// On a replicating primary the shipper is kicked the moment the
    /// lock drops (the committed WAL bytes are already visible through
    /// the tap), and a `sync` tenant then blocks on the follower-ack
    /// quorum — bounded by the replication-wait deadline, degrading to
    /// `Ok(Some((replicated, required)))` rather than hanging the
    /// window.
    fn committed(
        &self,
        mut session: MutexGuard<'_, DurableSession>,
        applied: u64,
    ) -> Result<Option<(usize, usize)>, TenantError> {
        let tickets = session.take_pending_commits();
        let snapshot = session.snapshot();
        let seq = self.publish_seq.fetch_add(1, Relaxed) + 1;
        let need = self.sync_replicas.load(Relaxed);
        let sync_at = match (&self.replication, need) {
            (Some(_), n) if n > 0 => session.wal_tap().map(|tap| tap.position()),
            _ => None,
        };
        drop(session);
        if let Some(rep) = &self.replication {
            rep.kick();
        }
        for ticket in tickets {
            if let Err(e) = ticket.wait() {
                self.poisoned.store(true, Relaxed);
                return Err(TenantError::new(
                    "internal",
                    format!("durability failure: {e}; tenant refuses further mutations"),
                ));
            }
        }
        {
            let mut published = self
                .published
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if seq > *published {
                *published = seq;
                self.service.publish(snapshot);
            }
        }
        self.mutations.fetch_add(applied, Relaxed);
        let degraded = match (&self.replication, sync_at) {
            (Some(rep), Some(at)) => {
                let need = need.min(rep.targets());
                let got = rep.wait_quorum(&self.name, at, need);
                (got < need).then_some((got, need))
            }
            _ => None,
        };
        Ok(degraded)
    }

    /// Tenant-level counters and state as a JSON object.
    pub fn stats_json(&self) -> Json {
        let session = lock_session(&self.session);
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("durable", Json::Bool(session.is_durable())),
            ("epoch", Json::num(session.epoch() as f64)),
            ("base_facts", Json::num(session.database().len() as f64)),
            (
                "assumption_frames",
                Json::num(session.assumptions().len() as f64),
            ),
            ("in_flight", Json::num(self.in_flight.load(Relaxed) as f64)),
            ("mutations", Json::num(self.mutations.load(Relaxed) as f64)),
            (
                "quota_trips",
                Json::num(self.quota_trips.load(Relaxed) as f64),
            ),
            (
                "sync_replicas",
                Json::num(self.sync_replicas.load(Relaxed) as f64),
            ),
        ])
    }

    /// Total mutations applied (acked) on this tenant.
    pub fn mutation_count(&self) -> u64 {
        self.mutations.load(Relaxed)
    }

    /// Total admissions refused for quota reasons.
    pub fn quota_trip_count(&self) -> u64 {
        self.quota_trips.load(Relaxed)
    }
}

/// The set of live tenants, created on first `open`.
pub struct Registry {
    config: RegistryConfig,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Registry {
        Registry {
            config,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// Returns the named tenant, creating (and, when durable, recovering)
    /// it on first use. Creation holds the registry lock so two
    /// connections opening the same name cannot both recover the same
    /// directory.
    pub fn open(&self, name: &str) -> Result<Arc<Tenant>, TenantError> {
        validate_tenant_name(name)?;
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(t) = tenants.get(name) {
            return Ok(Arc::clone(t));
        }
        let tenant = Arc::new(Tenant::open(name, &self.config)?);
        tenants.insert(name.to_owned(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// All live tenants (drain, checkpoint-on-shutdown, stats).
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .cloned()
            .collect()
    }

    /// Number of live tenants.
    pub fn len(&self) -> usize {
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no tenant has been opened yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checkpoints every durable tenant (graceful-shutdown path);
    /// returns per-tenant outcomes for logging.
    pub fn checkpoint_all(&self) -> Vec<(String, Result<u64, TenantError>)> {
        self.tenants()
            .into_iter()
            .filter(|t| t.is_durable())
            .map(|t| (t.name().to_owned(), t.checkpoint()))
            .collect()
    }
}

/// Splits `text` into ground facts; accepts both `f1, f2` and `f1. f2.`
/// (commas inside argument lists are kept). Constants intern into the
/// session's own symbol table.
fn parse_ground_facts(text: &str, session: &mut Session) -> Result<Vec<GroundAtom>, String> {
    let mut pieces = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth = depth.saturating_sub(1),
            ',' | '.' if depth == 0 => {
                pieces.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&text[start..]);
    let mut facts = Vec::new();
    for piece in pieces {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let rb = parse_program(&format!("{piece}."), session.symbols_mut())
            .map_err(|e| e.to_string())?;
        let (rules, mut parsed) = split_facts(rb);
        if !rules.is_empty() || parsed.len() != 1 {
            return Err(format!("`{piece}` is not a ground fact"));
        }
        facts.push(parsed.pop().expect("checked length"));
    }
    if facts.is_empty() {
        return Err("expected one or more ground facts".to_owned());
    }
    Ok(facts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ephemeral_registry(quotas: TenantQuotas) -> Registry {
        Registry::new(RegistryConfig {
            quotas,
            ..RegistryConfig::default()
        })
    }

    #[test]
    fn names_are_validated() {
        for good in ["a", "tenant-1", "A_b-C", &"x".repeat(64)] {
            assert!(validate_tenant_name(good).is_ok(), "{good}");
        }
        for bad in ["", "a/b", "..", "a b", "café", &"x".repeat(65)] {
            assert!(validate_tenant_name(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn open_is_idempotent_per_name() {
        let registry = ephemeral_registry(TenantQuotas::default());
        let a1 = registry.open("a").unwrap();
        let a2 = registry.open("a").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        let b = registry.open("b").unwrap();
        assert!(!Arc::ptr_eq(&a1, &b));
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn tenants_are_isolated_worlds() {
        let registry = ephemeral_registry(TenantQuotas::default());
        let a = registry.open("a").unwrap();
        let b = registry.open("b").unwrap();
        a.load("p(x).").unwrap();
        b.load("p(y).").unwrap();
        a.assume("q(z)").unwrap();
        assert_eq!(a.query(QueryRequest::ask("p(x)")), Outcome::True);
        assert_eq!(b.query(QueryRequest::ask("p(x)")), Outcome::False);
        assert_eq!(a.query(QueryRequest::ask("q(z)")), Outcome::True);
        assert_eq!(b.query(QueryRequest::ask("q(z)")), Outcome::False);
    }

    #[test]
    fn base_fact_quota_refuses_before_applying() {
        let registry = ephemeral_registry(TenantQuotas {
            max_base_facts: Some(2),
            ..TenantQuotas::default()
        });
        let t = registry.open("t").unwrap();
        t.load("p(a). p(b).").unwrap();
        let err = t.load("p(c).").unwrap_err();
        assert_eq!(err.kind, "quota");
        assert_eq!(t.quota_trip_count(), 1);
        // The refused fact is not there; the admitted ones are.
        assert_eq!(t.query(QueryRequest::ask("p(c)")), Outcome::False);
        assert_eq!(t.query(QueryRequest::ask("p(b)")), Outcome::True);
        // Rules don't count against the fact quota.
        t.load("q(X) :- p(X).").unwrap();
    }

    #[test]
    fn assumption_depth_quota_trips() {
        let registry = ephemeral_registry(TenantQuotas {
            max_overlay_depth: Some(2),
            ..TenantQuotas::default()
        });
        let t = registry.open("t").unwrap();
        assert_eq!(t.assume("h(a)").unwrap(), 1);
        assert_eq!(t.assume("h(b)").unwrap(), 2);
        assert_eq!(t.assume("h(c)").unwrap_err().kind, "quota");
        // Popping frees a slot.
        assert_eq!(t.pop().unwrap(), (1, 1));
        assert_eq!(t.assume("h(c)").unwrap(), 2);
    }

    #[test]
    fn in_flight_cap_sheds_structurally() {
        let registry = ephemeral_registry(TenantQuotas {
            max_in_flight: 0,
            ..TenantQuotas::default()
        });
        let t = registry.open("t").unwrap();
        assert_eq!(t.query(QueryRequest::ask("p(a)")), Outcome::Overloaded);
        assert_eq!(t.quota_trip_count(), 1);
    }

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let pid = std::process::id();
            let n = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos();
            let dir = std::env::temp_dir().join(format!("hdl-tenant-{tag}-{pid}-{n}"));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Concurrent connections to one durable tenant: mutations pipeline
    /// through the group committer (deep batches, not one fsync each),
    /// acked facts are immediately query-visible, and a reopen recovers
    /// every acked mutation.
    #[test]
    fn concurrent_mutators_pipeline_and_recover() {
        let dir = TempDir::new("pipeline");
        let committer = GroupCommitter::new();
        let config = RegistryConfig {
            root: Some(dir.0.clone()),
            policy: FsyncPolicy::Always,
            committer: Some(Arc::clone(&committer)),
            ..RegistryConfig::default()
        };
        let registry = Registry::new(config.clone());
        let t = registry.open("t").unwrap();
        std::thread::scope(|scope| {
            for c in 0..8 {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for j in 0..10 {
                        t.load(&format!("p(c{c}_{j}).")).unwrap();
                    }
                });
            }
        });
        assert_eq!(t.mutation_count(), 80);
        // Every acked mutation is query-visible (publish is monotonic).
        assert_eq!(t.query(QueryRequest::ask("p(c7_9)")), Outcome::True);
        assert_eq!(t.query(QueryRequest::ask("p(c0_0)")), Outcome::True);
        let stats = committer.stats();
        assert!(stats.commits >= 80);
        assert!(
            stats.fsync_groups < stats.commits,
            "no batching despite concurrent mutators: {stats:?}"
        );
        drop(t);
        drop(registry);
        // Reopen from disk: all 80 acked facts must be there.
        let registry = Registry::new(config);
        let t = registry.open("t").unwrap();
        assert_eq!(t.query(QueryRequest::ask("p(c3_5)")), Outcome::True);
        committer.shutdown();
    }

    /// A window applies as one unit — one publish, every op its own
    /// result — and a bad op mid-window fails alone while its
    /// neighbours land.
    #[test]
    fn batch_window_isolates_per_op_failures() {
        let registry = ephemeral_registry(TenantQuotas::default());
        let t = registry.open("t").unwrap();
        let outcome = t.apply_batch(&[
            BatchOp::Load("p(a)."),
            BatchOp::Load("p(::syntax error"),
            BatchOp::Pop, // no frame stacked: protocol error
            BatchOp::Assume("h(x)"),
            BatchOp::Load("p(b)."),
        ]);
        assert_eq!(outcome.degraded, None, "no sync policy, no degrade");
        let replies = outcome.replies;
        assert_eq!(replies[0], Ok(BatchReply::Loaded));
        assert_eq!(replies[1].as_ref().unwrap_err().kind, "query");
        assert_eq!(replies[2].as_ref().unwrap_err().kind, "protocol");
        assert_eq!(replies[3], Ok(BatchReply::Assumed { frames: 1 }));
        assert_eq!(replies[4], Ok(BatchReply::Loaded));
        // Only the applied ops count, and all of them are visible.
        assert_eq!(t.mutation_count(), 3);
        assert_eq!(t.query(QueryRequest::ask("p(a)")), Outcome::True);
        assert_eq!(t.query(QueryRequest::ask("p(b)")), Outcome::True);
        assert_eq!(t.query(QueryRequest::ask("h(x)")), Outcome::True);
    }

    #[test]
    fn retract_and_pop_report_protocol_errors() {
        let registry = ephemeral_registry(TenantQuotas::default());
        let t = registry.open("t").unwrap();
        t.load("p(a).").unwrap();
        assert!(t.retract("p(a)").unwrap());
        assert!(!t.retract("p(a)").unwrap());
        assert_eq!(t.pop().unwrap_err().kind, "protocol");
        assert_eq!(t.retract("p(a), p(b)").unwrap_err().kind, "protocol");
        assert_eq!(t.checkpoint().unwrap_err().kind, "protocol");
    }
}
