//! `hdl-server` — the network layer of the hypothetical-Datalog system:
//! a multi-tenant TCP server with group-commit durability.
//!
//! The server (DESIGN.md §3.14) multiplexes named tenant sessions over
//! one process. Each tenant is a fully isolated world — its own durable
//! session, persist directory, snapshot lineage, and query worker pool —
//! while the *durability cost* is shared: concurrent WAL commits from
//! all tenants are batched by one [`GroupCommitter`] so a busy server
//! pays one fsync pass per batch rather than one per mutation, without
//! weakening the ack-after-commit contract (a client's mutation is acked
//! only after the fsync covering its records has returned).
//!
//! Wire protocol: newline-delimited JSON, one request object per line,
//! one reply per request (see [`protocol`] and `docs/protocol.md`).
//!
//! ```no_run
//! use hdl_server::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.run(None); // blocks until a shutdown op or flag, then drains
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod protocol;
pub mod replication;
pub mod server;
pub mod tenant;

pub use hdl_persist::GroupCommitter;
pub use json::Json;
pub use protocol::{outcome_reply, Reply, Request, PROTOCOL_VERSION};
pub use replication::{
    FenceState, FollowerState, ReplicaTenant, ReplicationHandle, Shipper, ShipperStats,
    SYNC_WAIT_DEADLINE,
};
pub use server::{install_termination_flag, Server, ServerConfig};
pub use tenant::{
    BatchOp, BatchOutcome, BatchReply, Registry, RegistryConfig, Tenant, TenantError, TenantQuotas,
};
