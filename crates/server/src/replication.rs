//! Primary/follower replication at the server layer: shipper threads on
//! the primary, replica tenants and promotion on the follower.
//!
//! The persist layer ([`hdl_persist::replicate`]) defines *what* moves —
//! committed WAL windows addressed by `(epoch, offset)`, checkpoint
//! images across rotations — and this module moves it over the same
//! newline-JSON protocol clients speak:
//!
//! - a **primary** started with `--replicate-to ADDR` runs one
//!   [`Shipper`] thread per target. The shipper connects with capped
//!   exponential backoff, negotiates each tenant's resume position with
//!   `rep_position`, then streams `rep_window` / `rep_checkpoint` ops
//!   (WAL bytes as base64) and heartbeats when idle;
//! - a **follower** started with `--follow ADDR` holds a
//!   [`FollowerState`]: one [`ReplicaTenant`] per replicated tenant,
//!   each a [`Replica`] plus a read-only [`QueryService`] republished
//!   after every applied window. Client mutations are refused with a
//!   structured `read_only` error; `query`/`answers`/`stats` serve from
//!   the replicated snapshots.
//!
//! Failover is operator-driven: the `promote` op flips the follower to
//! primary. Promotion sets the promoted flag, then takes every replica's
//! mutex once as a barrier — in-flight window applies finish, later ones
//! see the flag and are refused — so the replica directories are closed
//! before the normal [`crate::tenant::Registry`] reopens them as
//! writable tenants (recovery replays exactly the acked prefix).

use crate::json::Json;
use crate::protocol::Reply;
use crate::tenant::{validate_tenant_name, Registry, TenantError, TenantQuotas};
use hdl_persist::{FsyncPolicy, Position, Replica, Ship};
use hdl_service::{QueryService, ServiceConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Most WAL bytes one `rep_window` op will carry (before base64).
pub const MAX_WINDOW_BYTES: u64 = 1 << 20;

/// First reconnect delay after a shipper loses its follower.
const BACKOFF_FLOOR: Duration = Duration::from_millis(50);

/// Reconnect delays double up to this cap, then stay there.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Idle shippers send a heartbeat (and re-poll the taps) this often.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(100);

// ---------------------------------------------------------------------
// Base64 (standard alphabet, padded) — WAL bytes inside JSON strings.
// Hand-rolled because the build environment vendors no encoding crate.
// ---------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard padded base64.
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = u32::from_be_bytes([0, b[0], b[1], b[2]]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard padded base64; whitespace is not tolerated — the
/// protocol produces none, so any is a malformed message.
pub fn b64_decode(text: &str) -> Result<Vec<u8>, String> {
    fn value(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
            b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
            b'+' => Ok(62),
            b'/' => Ok(63),
            other => Err(format!("invalid base64 byte 0x{other:02x}")),
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err("base64 length is not a multiple of 4".to_owned());
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pads = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pads > 2 || (pads > 0 && !last) {
            return Err("misplaced base64 padding".to_owned());
        }
        let mut n = 0u32;
        for &c in &quad[..4 - pads] {
            n = (n << 6) | value(c)?;
        }
        n <<= 6 * pads as u32;
        let b = n.to_be_bytes();
        out.push(b[1]);
        if pads < 2 {
            out.push(b[2]);
        }
        if pads < 1 {
            out.push(b[3]);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Follower side
// ---------------------------------------------------------------------

/// One replicated tenant on a follower: the on-disk replica plus a query
/// pool serving its latest applied snapshot.
pub struct ReplicaTenant {
    name: String,
    replica: Mutex<Replica>,
    service: QueryService,
    windows_applied: AtomicU64,
    bytes_applied: AtomicU64,
}

fn lock_replica(m: &Mutex<Replica>) -> MutexGuard<'_, Replica> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ReplicaTenant {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The read-only query pool serving replicated snapshots.
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// The replica's current `(epoch, offset)` position.
    pub fn position(&self) -> Position {
        lock_replica(&self.replica).position()
    }

    /// Counters and state for `stats`.
    pub fn stats_json(&self) -> Json {
        let (pos, records) = {
            let replica = lock_replica(&self.replica);
            (replica.position(), replica.records_applied())
        };
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("epoch", Json::num(pos.epoch as f64)),
            ("offset", Json::num(pos.offset as f64)),
            ("records_applied", Json::num(records as f64)),
            (
                "windows_applied",
                Json::num(self.windows_applied.load(Relaxed) as f64),
            ),
            (
                "bytes_applied",
                Json::num(self.bytes_applied.load(Relaxed) as f64),
            ),
        ])
    }
}

/// Everything a follower server tracks beyond its (idle, pre-promotion)
/// registry: the replicas, the primary's liveness, and the promotion
/// latch.
pub struct FollowerState {
    /// Address of the primary this follower trails (for stats only; the
    /// primary dials us, not the reverse).
    primary: String,
    root: PathBuf,
    policy: FsyncPolicy,
    quotas: TenantQuotas,
    workers: usize,
    replicas: Mutex<BTreeMap<String, Arc<ReplicaTenant>>>,
    /// When the primary last spoke (any `rep_*` op).
    last_contact: Mutex<Option<Instant>>,
    /// Set by `promote`; never cleared. Checked under each replica's
    /// mutex by the apply path, so after the promotion barrier no window
    /// can land.
    promoted: AtomicBool,
}

impl FollowerState {
    /// A follower trailing `primary`, persisting under `root`.
    pub fn new(
        primary: String,
        root: PathBuf,
        policy: FsyncPolicy,
        quotas: TenantQuotas,
        workers: usize,
    ) -> FollowerState {
        FollowerState {
            primary,
            root,
            policy,
            quotas,
            workers,
            replicas: Mutex::new(BTreeMap::new()),
            last_contact: Mutex::new(None),
            promoted: AtomicBool::new(false),
        }
    }

    /// Whether this server still serves as a follower (false once
    /// promoted).
    pub fn is_follower(&self) -> bool {
        !self.promoted.load(SeqCst)
    }

    /// The primary address this follower trails (for error messages and
    /// stats).
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// Marks the primary as alive right now.
    pub fn touch(&self) {
        *self
            .last_contact
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
    }

    /// Milliseconds since the primary last spoke; `None` if it never has.
    pub fn staleness_ms(&self) -> Option<u64> {
        self.last_contact
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map(|t| t.elapsed().as_millis() as u64)
    }

    /// The replica for `name`, opening (and recovering) it on first use.
    /// Refused after promotion — the registry owns the directories then.
    pub fn open_replica(&self, name: &str) -> Result<Arc<ReplicaTenant>, TenantError> {
        validate_tenant_name(name)?;
        let mut replicas = self.replicas.lock().unwrap_or_else(PoisonError::into_inner);
        if !self.is_follower() {
            return Err(TenantError::promoted());
        }
        if let Some(r) = replicas.get(name) {
            return Ok(Arc::clone(r));
        }
        let dir = self.root.join("tenants").join(name);
        let replica = Replica::open(&dir, self.policy).map_err(|e| TenantError {
            kind: "internal",
            message: format!("cannot open replica `{name}`: {e}"),
        })?;
        let service = QueryService::with_config(
            replica.session().snapshot(),
            ServiceConfig {
                workers: self.workers,
                queue_cap: self.quotas.queue_cap,
                max_facts: self.quotas.query_max_facts,
                max_overlay_depth: self.quotas.max_overlay_depth,
                ..ServiceConfig::default()
            },
        );
        let tenant = Arc::new(ReplicaTenant {
            name: name.to_owned(),
            replica: Mutex::new(replica),
            service,
            windows_applied: AtomicU64::new(0),
            bytes_applied: AtomicU64::new(0),
        });
        replicas.insert(name.to_owned(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Lands one shipped window on `name`'s replica and republishes its
    /// snapshot. Returns the replica's new position for the ack.
    ///
    /// A position mismatch is reported as a `rep-position` reply carrying
    /// the actual position, so the primary reseeds instead of guessing.
    /// Any other apply failure drops the replica binding — reopening runs
    /// recovery, which reconciles a log that got ahead of memory.
    pub fn apply_window(&self, name: &str, epoch: u64, offset: u64, bytes: &[u8]) -> Reply {
        let tenant = match self.open_replica(name) {
            Ok(t) => t,
            Err(e) => return Reply::err(e.kind, e.message),
        };
        let mut replica = lock_replica(&tenant.replica);
        if !self.is_follower() {
            return Reply::err("protocol", "follower has been promoted");
        }
        let at = replica.position();
        if epoch != at.epoch || offset != at.offset {
            return position_mismatch(at);
        }
        match replica.apply_window(epoch, offset, bytes) {
            Ok(_records) => {
                let pos = replica.position();
                tenant.service.publish(replica.session().snapshot());
                drop(replica);
                tenant.windows_applied.fetch_add(1, Relaxed);
                tenant.bytes_applied.fetch_add(bytes.len() as u64, Relaxed);
                ack_reply("rep_window", pos)
            }
            Err(e) => {
                drop(replica);
                self.evict(name);
                Reply::err("internal", format!("window apply failed: {e}"))
            }
        }
    }

    /// Installs a shipped checkpoint image on `name`'s replica; returns
    /// the new position (top of the image's epoch) for the ack.
    pub fn install_checkpoint(&self, name: &str, epoch: u64, image: &[u8]) -> Reply {
        let tenant = match self.open_replica(name) {
            Ok(t) => t,
            Err(e) => return Reply::err(e.kind, e.message),
        };
        let mut replica = lock_replica(&tenant.replica);
        if !self.is_follower() {
            return Reply::err("protocol", "follower has been promoted");
        }
        match replica.install_checkpoint(epoch, image) {
            Ok(()) => {
                let pos = replica.position();
                tenant.service.publish(replica.session().snapshot());
                drop(replica);
                ack_reply("rep_checkpoint", pos)
            }
            Err(e) => {
                drop(replica);
                self.evict(name);
                Reply::err("internal", format!("checkpoint install failed: {e}"))
            }
        }
    }

    /// Answers a primary's `rep_position` negotiation for `name`.
    pub fn rep_position(&self, name: &str) -> Reply {
        match self.open_replica(name) {
            Ok(t) => ack_reply("rep_position", t.position()),
            Err(e) => Reply::err(e.kind, e.message),
        }
    }

    /// Drops a replica binding so the next `rep_*` op reopens (and
    /// re-recovers) it from disk.
    fn evict(&self, name: &str) {
        self.replicas
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name);
    }

    /// Promotes this follower: latch the flag, then take every replica's
    /// mutex once (the barrier — in-flight applies finish, later ones see
    /// the flag), then drop the replicas so the registry can reopen the
    /// directories as writable tenants. Returns the promoted tenant
    /// names. Idempotent: a second promote returns the (now empty) list.
    pub fn promote(&self) -> Vec<String> {
        self.promoted.store(true, SeqCst);
        let drained: Vec<(String, Arc<ReplicaTenant>)> = {
            let mut replicas = self.replicas.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *replicas).into_iter().collect()
        };
        let mut names = Vec::new();
        for (name, tenant) in drained {
            // The barrier: once this lock is held, no apply is mid-write
            // against the directory, and every later apply attempt sees
            // the promoted flag before touching disk.
            drop(lock_replica(&tenant.replica));
            names.push(name);
        }
        names
    }

    /// The follower's `stats` section.
    pub fn stats_json(&self) -> Json {
        let replicas = self.replicas.lock().unwrap_or_else(PoisonError::into_inner);
        let tenants: Vec<Json> = replicas.values().map(|r| r.stats_json()).collect();
        Json::obj(vec![
            (
                "role",
                Json::str(if self.is_follower() {
                    "follower"
                } else {
                    "promoted"
                }),
            ),
            ("primary", Json::str(&self.primary)),
            (
                "last_contact_ms",
                match self.staleness_ms() {
                    Some(ms) => Json::num(ms as f64),
                    None => Json::Null,
                },
            ),
            ("tenants", Json::Arr(tenants)),
        ])
    }
}

impl TenantError {
    fn promoted() -> TenantError {
        TenantError {
            kind: "protocol",
            message: "follower has been promoted; reconnect and open normally".to_owned(),
        }
    }
}

/// A `rep-position` error reply carrying the replica's actual position.
fn position_mismatch(at: Position) -> Reply {
    Reply::err(
        "rep-position",
        "window does not start at the replica position",
    )
    .with("epoch", Json::num(at.epoch as f64))
    .with("offset", Json::num(at.offset as f64))
}

/// An ack carrying the replica's post-apply position.
fn ack_reply(op: &str, pos: Position) -> Reply {
    Reply::ok(op)
        .with("epoch", Json::num(pos.epoch as f64))
        .with("offset", Json::num(pos.offset as f64))
}

// ---------------------------------------------------------------------
// Primary side
// ---------------------------------------------------------------------

/// Shared counters for one shipper target, read by `stats`.
pub struct ShipperStats {
    /// The follower address as configured.
    pub addr: String,
    /// Whether the shipper currently holds a live connection.
    pub connected: AtomicBool,
    /// Windows acked by the follower.
    pub windows_shipped: AtomicU64,
    /// WAL bytes acked by the follower (pre-base64).
    pub bytes_shipped: AtomicU64,
    /// Checkpoint images acked by the follower.
    pub checkpoints_shipped: AtomicU64,
    /// Milliseconds since the last ack (any op), for lag monitoring.
    last_ack: Mutex<Option<Instant>>,
}

impl ShipperStats {
    fn new(addr: String) -> ShipperStats {
        ShipperStats {
            addr,
            connected: AtomicBool::new(false),
            windows_shipped: AtomicU64::new(0),
            bytes_shipped: AtomicU64::new(0),
            checkpoints_shipped: AtomicU64::new(0),
            last_ack: Mutex::new(None),
        }
    }

    fn acked(&self) {
        *self.last_ack.lock().unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
    }

    /// This target's `stats` object.
    pub fn to_json(&self) -> Json {
        let last_ack = self
            .last_ack
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map(|t| t.elapsed().as_millis() as u64);
        Json::obj(vec![
            ("addr", Json::str(&self.addr)),
            ("connected", Json::Bool(self.connected.load(Relaxed))),
            (
                "windows_shipped",
                Json::num(self.windows_shipped.load(Relaxed) as f64),
            ),
            (
                "bytes_shipped",
                Json::num(self.bytes_shipped.load(Relaxed) as f64),
            ),
            (
                "checkpoints_shipped",
                Json::num(self.checkpoints_shipped.load(Relaxed) as f64),
            ),
            (
                "last_ack_ms",
                match last_ack {
                    Some(ms) => Json::num(ms as f64),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// One shipper: the primary-side replication loop for one follower
/// address. Runs on its own thread until the server drains.
pub struct Shipper {
    registry: Arc<Registry>,
    stats: Arc<ShipperStats>,
    shutdown: Arc<AtomicBool>,
}

impl Shipper {
    /// Spawns the shipper thread for `addr`; returns its stats handle and
    /// join handle.
    pub fn spawn(
        registry: Arc<Registry>,
        addr: String,
        shutdown: Arc<AtomicBool>,
    ) -> (Arc<ShipperStats>, std::thread::JoinHandle<()>) {
        let stats = Arc::new(ShipperStats::new(addr.clone()));
        let shipper = Shipper {
            registry,
            stats: Arc::clone(&stats),
            shutdown,
        };
        let handle = std::thread::Builder::new()
            .name(format!("hdl-ship-{addr}"))
            .spawn(move || shipper.run())
            .expect("spawn shipper thread");
        (stats, handle)
    }

    fn done(&self) -> bool {
        self.shutdown.load(SeqCst)
    }

    /// Connect → ship until the link drops → back off → reconnect. The
    /// backoff doubles from [`BACKOFF_FLOOR`] to [`BACKOFF_CAP`] and
    /// resets on every successful connection.
    fn run(&self) {
        let mut backoff = BACKOFF_FLOOR;
        while !self.done() {
            if let Ok(stream) = TcpStream::connect(&self.stats.addr) {
                let _ = stream.set_nodelay(true);
                self.stats.connected.store(true, Relaxed);
                backoff = BACKOFF_FLOOR;
                let _ = self.ship_session(stream);
                self.stats.connected.store(false, Relaxed);
            }
            self.sleep(backoff);
            backoff = (backoff * 2).min(BACKOFF_CAP);
        }
    }

    /// Sleeps in small slices so a drain is observed promptly.
    fn sleep(&self, total: Duration) {
        let mut left = total;
        while !self.done() && !left.is_zero() {
            let step = left.min(Duration::from_millis(25));
            std::thread::sleep(step);
            left -= step;
        }
    }

    /// One connection's lifetime: negotiate positions lazily per tenant,
    /// stream windows/checkpoints, heartbeat when idle. Any I/O or
    /// protocol error returns, dropping the connection; `run` reconnects
    /// and renegotiates from scratch (positions are per-connection
    /// state — the follower's disk is the durable truth).
    fn ship_session(&self, stream: TcpStream) -> std::io::Result<()> {
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let mut positions: BTreeMap<String, Position> = BTreeMap::new();
        let mut last_send = Instant::now();
        loop {
            if self.done() {
                return Ok(());
            }
            let mut progressed = false;
            for tenant in self.registry.tenants() {
                if self.done() {
                    return Ok(());
                }
                let Some(tap) = tenant.wal_tap() else {
                    continue;
                };
                let name = tenant.name().to_owned();
                let pos = match positions.get(&name) {
                    Some(p) => *p,
                    None => {
                        let p = self.negotiate(&mut reader, &mut writer, &name)?;
                        last_send = Instant::now();
                        positions.insert(name.clone(), p);
                        p
                    }
                };
                let plan = match tap.plan_ship(pos, MAX_WINDOW_BYTES) {
                    Ok(plan) => plan,
                    Err(_) => {
                        // A rotation raced the read; renegotiate next
                        // round against the new epoch.
                        positions.remove(&name);
                        continue;
                    }
                };
                match plan {
                    Ship::Window { bytes, .. } if bytes.is_empty() => {}
                    Ship::Window {
                        epoch,
                        offset,
                        bytes,
                    } => {
                        hdl_base::failpoint_fire!("replicate::ship");
                        hdl_persist::crashpoint::crash_point("replicate::ship");
                        let line = Json::obj(vec![
                            ("op", Json::str("rep_window")),
                            ("tenant", Json::str(&name)),
                            ("epoch", Json::num(epoch as f64)),
                            ("offset", Json::num(offset as f64)),
                            ("data", Json::str(b64_encode(&bytes))),
                        ])
                        .to_string();
                        let acked =
                            self.exchange(&mut reader, &mut writer, &line, &name, &mut positions)?;
                        last_send = Instant::now();
                        if acked {
                            self.stats.windows_shipped.fetch_add(1, Relaxed);
                            self.stats
                                .bytes_shipped
                                .fetch_add(bytes.len() as u64, Relaxed);
                            progressed = true;
                        }
                    }
                    Ship::Checkpoint { epoch, image } => {
                        let line = Json::obj(vec![
                            ("op", Json::str("rep_checkpoint")),
                            ("tenant", Json::str(&name)),
                            ("epoch", Json::num(epoch as f64)),
                            ("data", Json::str(b64_encode(&image))),
                        ])
                        .to_string();
                        let acked =
                            self.exchange(&mut reader, &mut writer, &line, &name, &mut positions)?;
                        last_send = Instant::now();
                        if acked {
                            self.stats.checkpoints_shipped.fetch_add(1, Relaxed);
                            progressed = true;
                        }
                    }
                    Ship::Diverged { .. } => {
                        // The follower's log is not a prefix of ours;
                        // nothing safe can be shipped. A primary-side
                        // checkpoint converts this into an image
                        // transfer — leave the position cached so the
                        // plan flips to Checkpoint once that happens.
                    }
                }
            }
            if !progressed {
                if last_send.elapsed() >= HEARTBEAT_EVERY {
                    self.heartbeat(&mut reader, &mut writer)?;
                    last_send = Instant::now();
                }
                self.sleep(Duration::from_millis(25));
            }
        }
    }

    /// Asks the follower where shipping should resume for `tenant`.
    fn negotiate(
        &self,
        reader: &mut BufReader<TcpStream>,
        writer: &mut TcpStream,
        tenant: &str,
    ) -> std::io::Result<Position> {
        let line = Json::obj(vec![
            ("op", Json::str("rep_position")),
            ("tenant", Json::str(tenant)),
        ])
        .to_string();
        let reply = round_trip(reader, writer, &line)?;
        self.stats.acked();
        reply_position(&reply)
            .ok_or_else(|| protocol_err(format!("rep_position reply carried no position: {reply}")))
    }

    /// Sends one shipment line and lands the ack. Returns `true` when the
    /// follower acked (position advanced), `false` when it answered with
    /// a `rep-position` reseed (cached position updated; retry next
    /// round). Anything else is a connection-fatal protocol error.
    fn exchange(
        &self,
        reader: &mut BufReader<TcpStream>,
        writer: &mut TcpStream,
        line: &str,
        tenant: &str,
        positions: &mut BTreeMap<String, Position>,
    ) -> std::io::Result<bool> {
        let reply = round_trip(reader, writer, line)?;
        let ok = reply.get("ok").and_then(Json::as_bool) == Some(true);
        if ok {
            self.stats.acked();
            match reply_position(&reply) {
                Some(p) => {
                    positions.insert(tenant.to_owned(), p);
                    Ok(true)
                }
                None => Err(protocol_err(format!("ack carried no position: {reply}"))),
            }
        } else if reply.get("kind").and_then(Json::as_str) == Some("rep-position") {
            match reply_position(&reply) {
                Some(p) => {
                    positions.insert(tenant.to_owned(), p);
                    Ok(false)
                }
                None => Err(protocol_err(format!("reseed carried no position: {reply}"))),
            }
        } else {
            // `internal` (apply failure) and everything else: drop the
            // connection; reconnect renegotiates against the recovered
            // replica.
            Err(protocol_err(format!("follower refused shipment: {reply}")))
        }
    }

    /// One idle-link liveness probe.
    fn heartbeat(
        &self,
        reader: &mut BufReader<TcpStream>,
        writer: &mut TcpStream,
    ) -> std::io::Result<()> {
        let reply = round_trip(reader, writer, "{\"op\":\"rep_heartbeat\"}")?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            self.stats.acked();
            Ok(())
        } else {
            Err(protocol_err(format!("heartbeat refused: {reply}")))
        }
    }
}

fn round_trip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
) -> std::io::Result<Json> {
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut reply = String::new();
    if reader.read_line(&mut reply)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "follower closed the connection",
        ));
    }
    Json::parse(reply.trim()).map_err(protocol_err)
}

fn reply_position(reply: &Json) -> Option<Position> {
    Some(Position {
        epoch: reply.get("epoch").and_then(Json::as_u64)?,
        offset: reply.get("offset").and_then(Json::as_u64)?,
    })
}

fn protocol_err(message: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_round_trips() {
        let cases: &[&[u8]] = &[
            b"",
            b"f",
            b"fo",
            b"foo",
            b"foob",
            b"fooba",
            b"foobar",
            &[0, 1, 2, 253, 254, 255],
        ];
        for &case in cases {
            let encoded = b64_encode(case);
            assert_eq!(b64_decode(&encoded).unwrap(), case, "{encoded}");
        }
        // Spot-check against the RFC 4648 vectors.
        assert_eq!(b64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(b64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(b64_encode(b"fooba"), "Zm9vYmE=");
    }

    #[test]
    fn base64_rejects_malformed_input() {
        assert!(b64_decode("abc").is_err(), "bad length");
        assert!(b64_decode("ab=c").is_err(), "padding inside a quad");
        assert!(b64_decode("a===").is_err(), "over-padded");
        assert!(b64_decode("ab cd").is_err(), "whitespace");
        assert!(b64_decode("abc\u{e9}").is_err(), "non-ascii");
        assert_eq!(b64_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn every_byte_pattern_round_trips() {
        let mut bytes = Vec::new();
        for i in 0..=255u8 {
            bytes.push(i);
            let encoded = b64_encode(&bytes);
            assert_eq!(b64_decode(&encoded).unwrap(), bytes);
        }
    }
}
