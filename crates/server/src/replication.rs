//! Primary/follower replication at the server layer: the shipper pass on
//! the primary, replica tenants and promotion on the follower, and the
//! fencing epoch that makes failover safe against split brain.
//!
//! The persist layer ([`hdl_persist::replicate`]) defines *what* moves —
//! committed WAL windows addressed by `(epoch, offset)`, checkpoint
//! images across rotations — and this module moves it over the same
//! newline-JSON protocol clients speak:
//!
//! - a **primary** started with `--replicate-to ADDR` (repeatable) runs
//!   **one** [`Shipper`] thread fanning out to every target: per pass it
//!   walks the registry once, reuses one shared [`WalTap`] per tenant,
//!   and advances each target from its own cursor. Targets connect with
//!   capped exponential backoff (jittered, so a fleet of primaries never
//!   redials a recovering follower in lockstep), negotiate each tenant's
//!   resume position with `rep_position`, then stream `rep_window` /
//!   `rep_checkpoint` ops (WAL bytes as base64) and heartbeats when
//!   idle. Follower acks feed the shared [`hdl_persist::AckTracker`], so
//!   tenants under a `sync` policy can block their commit ack on a
//!   replication quorum ([`ReplicationHandle`]);
//! - a **follower** started with `--follow ADDR` holds a
//!   [`FollowerState`]: one [`ReplicaTenant`] per replicated tenant,
//!   each a [`Replica`] plus a read-only [`QueryService`] republished
//!   after every applied window. Client mutations are refused with a
//!   structured `read_only` error; `query`/`answers`/`stats` serve from
//!   the replicated snapshots.
//!
//! Failover is operator-driven but *fenced* automatically: every server
//! with a persist root carries a monotonically increasing **fencing
//! epoch** ([`FenceState`], the `FENCE` file beside the tenant
//! directories). `promote` bumps it past everything the follower has
//! observed; shippers stamp every replication op with theirs; and a
//! server that observes a higher epoch — a `fenced` refusal or a higher
//! `fence` field in any reply, or an explicit `rep_fence` op — latches
//! itself read-only (persistently, so a restart stays fenced) and
//! refuses mutations with a `fenced` error. A restarted old primary
//! therefore fences itself off the moment it talks to anyone who
//! outlived it; no operator intervention required.
//!
//! Promotion itself sets the promoted flag, then takes every replica's
//! mutex once as a barrier — in-flight window applies finish, later ones
//! see the flag and are refused — so the replica directories are closed
//! before the normal [`crate::tenant::Registry`] reopens them as
//! writable tenants (recovery replays exactly the acked prefix).

use crate::json::Json;
use crate::protocol::Reply;
use crate::tenant::{validate_tenant_name, Registry, TenantError, TenantQuotas};
use hdl_persist::{AckTracker, FsyncPolicy, Position, Replica, Ship, WalTap};
use hdl_service::{QueryService, ServiceConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant, SystemTime};

/// Most WAL bytes one `rep_window` op will carry (before base64).
pub const MAX_WINDOW_BYTES: u64 = 1 << 20;

/// How long a `sync`-policy commit waits for its replication quorum
/// before degrading to a structured `degraded_ack` reply.
pub const SYNC_WAIT_DEADLINE: Duration = Duration::from_secs(2);

/// First reconnect delay after a shipper loses its follower.
const BACKOFF_FLOOR: Duration = Duration::from_millis(50);

/// Reconnect delays double up to this cap, then stay there.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Idle shippers send a heartbeat (and re-poll the taps) this often.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(100);

/// Name of the fencing-epoch file under the persist root.
const FENCE_FILE: &str = "FENCE";

// ---------------------------------------------------------------------
// Base64 (standard alphabet, padded) — WAL bytes inside JSON strings.
// Hand-rolled because the build environment vendors no encoding crate.
// ---------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard padded base64.
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = u32::from_be_bytes([0, b[0], b[1], b[2]]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard padded base64; whitespace is not tolerated — the
/// protocol produces none, so any is a malformed message.
pub fn b64_decode(text: &str) -> Result<Vec<u8>, String> {
    fn value(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
            b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
            b'+' => Ok(62),
            b'/' => Ok(63),
            other => Err(format!("invalid base64 byte 0x{other:02x}")),
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err("base64 length is not a multiple of 4".to_owned());
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pads = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pads > 2 || (pads > 0 && !last) {
            return Err("misplaced base64 padding".to_owned());
        }
        let mut n = 0u32;
        for &c in &quad[..4 - pads] {
            n = (n << 6) | value(c)?;
        }
        n <<= 6 * pads as u32;
        let b = n.to_be_bytes();
        out.push(b[1]);
        if pads < 2 {
            out.push(b[2]);
        }
        if pads < 1 {
            out.push(b[3]);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Fencing epoch
// ---------------------------------------------------------------------

/// The server's fencing epoch and read-only latch, persisted in the
/// `FENCE` file beside the tenant directories (one line:
/// `<epoch> <0|1>`, atomically replaced).
///
/// The epoch totally orders primaries across failovers: `promote` bumps
/// it past everything the promoting follower observed, and every
/// replication op and reply carries the sender's epoch. A *writable*
/// server that observes a higher epoch than its own has been superseded
/// — [`FenceState::fence_to`] adopts the epoch, latches the fenced flag,
/// and persists both, so the stale primary refuses mutations (error
/// kind `fenced`) from that moment on **and from every later boot**.
/// Followers track the primary's epoch with [`FenceState::adopt`]
/// (no latch — they are read-only anyway) so their eventual promotion
/// bumps above it.
pub struct FenceState {
    root: Option<PathBuf>,
    epoch: AtomicU64,
    fenced: AtomicBool,
    persist_lock: Mutex<()>,
}

impl FenceState {
    /// Loads the fence state persisted under `root` (epoch 0, unfenced,
    /// when there is no root or no `FENCE` file yet).
    pub fn load(root: Option<&Path>) -> FenceState {
        let mut epoch = 0u64;
        let mut fenced = false;
        if let Some(root) = root {
            if let Ok(text) = std::fs::read_to_string(root.join(FENCE_FILE)) {
                let mut parts = text.split_whitespace();
                if let Some(e) = parts.next().and_then(|s| s.parse::<u64>().ok()) {
                    epoch = e;
                    fenced = parts.next() == Some("1");
                }
            }
        }
        FenceState {
            root: root.map(Path::to_path_buf),
            epoch: AtomicU64::new(epoch),
            fenced: AtomicBool::new(fenced),
            persist_lock: Mutex::new(()),
        }
    }

    /// The current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Whether this server has latched itself read-only.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(SeqCst)
    }

    /// A writable server observed fence epoch `remote`. If it is newer
    /// than ours we have been superseded: adopt it, latch the fenced
    /// flag, persist both. Returns `true` when this call newly latched
    /// the server (callers log exactly once).
    pub fn fence_to(&self, remote: u64) -> bool {
        let _guard = self
            .persist_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if remote <= self.epoch.load(SeqCst) {
            return false;
        }
        self.epoch.store(remote, SeqCst);
        let newly = !self.fenced.swap(true, SeqCst);
        self.persist();
        newly
    }

    /// A follower observed its primary's fence epoch: track it (persist
    /// when it advances) without latching.
    pub fn adopt(&self, remote: u64) {
        let _guard = self
            .persist_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if remote <= self.epoch.load(SeqCst) {
            return;
        }
        self.epoch.store(remote, SeqCst);
        self.persist();
    }

    /// Promotion: bump the epoch past everything observed, clear the
    /// latch, persist, and return the new epoch. The promoted server is
    /// now the newest primary; everyone else who hears this epoch fences.
    pub fn bump_for_promote(&self) -> u64 {
        let _guard = self
            .persist_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let next = self.epoch.load(SeqCst) + 1;
        self.epoch.store(next, SeqCst);
        self.fenced.store(false, SeqCst);
        self.persist();
        next
    }

    /// Atomically replaces the `FENCE` file (tmp → fsync → rename →
    /// dir sync). Called under `persist_lock`. A persistence failure is
    /// logged, not fatal: the in-memory latch still protects this
    /// process; only the restart guarantee degrades.
    fn persist(&self) {
        let Some(root) = &self.root else { return };
        let line = format!(
            "{} {}\n",
            self.epoch.load(SeqCst),
            if self.fenced.load(SeqCst) { 1 } else { 0 }
        );
        let written = (|| -> std::io::Result<()> {
            std::fs::create_dir_all(root)?;
            let tmp = root.join("FENCE.tmp");
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(line.as_bytes())?;
            file.sync_all()?;
            std::fs::rename(&tmp, root.join(FENCE_FILE))?;
            Ok(())
        })();
        match written {
            Ok(()) => {
                let _ = hdl_persist::checkpoint::sync_dir(root);
            }
            Err(e) => eprintln!(
                "{{\"warn\":\"fence_persist_failed\",\"path\":{},\"error\":{}}}",
                Json::str(root.join(FENCE_FILE).display().to_string()),
                Json::str(e.to_string())
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Quorum plumbing between committing tenants and the shipper
// ---------------------------------------------------------------------

/// Shared between committing tenants and the shipper thread: the
/// follower-ack scoreboard plus a kick signal that wakes the shipper the
/// moment a commit lands, so a `sync` tenant's quorum wait costs one
/// ship round trip instead of a poll interval.
pub struct ReplicationHandle {
    tracker: AckTracker,
    kick_flag: Mutex<bool>,
    kick_cond: Condvar,
}

impl ReplicationHandle {
    /// A handle scoring `targets` replication targets.
    pub fn new(targets: usize) -> Arc<ReplicationHandle> {
        Arc::new(ReplicationHandle {
            tracker: AckTracker::new(targets),
            kick_flag: Mutex::new(false),
            kick_cond: Condvar::new(),
        })
    }

    /// How many replication targets are configured.
    pub fn targets(&self) -> usize {
        self.tracker.targets()
    }

    /// The follower-ack scoreboard.
    pub fn tracker(&self) -> &AckTracker {
        &self.tracker
    }

    /// Wakes the shipper: fresh committed bytes are ready to ship.
    pub fn kick(&self) {
        let mut flag = self
            .kick_flag
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *flag = true;
        self.kick_cond.notify_all();
    }

    /// Blocks until the replication quorum `need` covers `at` for
    /// `tenant`, bounded by [`SYNC_WAIT_DEADLINE`]; returns how many
    /// targets covered it at return time. Kicks the shipper first.
    pub fn wait_quorum(&self, tenant: &str, at: Position, need: usize) -> usize {
        self.kick();
        self.tracker
            .wait_quorum(tenant, at, need, SYNC_WAIT_DEADLINE)
    }

    /// The shipper's idle wait: sleeps up to `timeout`, returning early
    /// (and clearing the flag) when a commit kicks.
    fn wait_kick(&self, timeout: Duration) {
        let started = Instant::now();
        let mut flag = self
            .kick_flag
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !*flag {
            let elapsed = started.elapsed();
            if elapsed >= timeout {
                break;
            }
            let (next, _) = self
                .kick_cond
                .wait_timeout(flag, timeout - elapsed)
                .unwrap_or_else(PoisonError::into_inner);
            flag = next;
        }
        *flag = false;
    }
}

// ---------------------------------------------------------------------
// Follower side
// ---------------------------------------------------------------------

/// One replicated tenant on a follower: the on-disk replica plus a query
/// pool serving its latest applied snapshot.
pub struct ReplicaTenant {
    name: String,
    replica: Mutex<Replica>,
    service: QueryService,
    windows_applied: AtomicU64,
    bytes_applied: AtomicU64,
}

fn lock_replica(m: &Mutex<Replica>) -> MutexGuard<'_, Replica> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ReplicaTenant {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The read-only query pool serving replicated snapshots.
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// The replica's current `(epoch, offset)` position.
    pub fn position(&self) -> Position {
        lock_replica(&self.replica).position()
    }

    /// Counters and state for `stats`.
    pub fn stats_json(&self) -> Json {
        let (pos, records) = {
            let replica = lock_replica(&self.replica);
            (replica.position(), replica.records_applied())
        };
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("epoch", Json::num(pos.epoch as f64)),
            ("offset", Json::num(pos.offset as f64)),
            ("records_applied", Json::num(records as f64)),
            (
                "windows_applied",
                Json::num(self.windows_applied.load(Relaxed) as f64),
            ),
            (
                "bytes_applied",
                Json::num(self.bytes_applied.load(Relaxed) as f64),
            ),
        ])
    }
}

/// Everything a follower server tracks beyond its (idle, pre-promotion)
/// registry: the replicas, the primary's liveness, and the promotion
/// latch.
pub struct FollowerState {
    /// Address of the primary this follower trails (for stats only; the
    /// primary dials us, not the reverse).
    primary: String,
    root: PathBuf,
    policy: FsyncPolicy,
    quotas: TenantQuotas,
    workers: usize,
    replicas: Mutex<BTreeMap<String, Arc<ReplicaTenant>>>,
    /// When the primary last spoke (any `rep_*` op).
    last_contact: Mutex<Option<Instant>>,
    /// Set by `promote`; never cleared. Checked under each replica's
    /// mutex by the apply path, so after the promotion barrier no window
    /// can land.
    promoted: AtomicBool,
}

impl FollowerState {
    /// A follower trailing `primary`, persisting under `root`.
    pub fn new(
        primary: String,
        root: PathBuf,
        policy: FsyncPolicy,
        quotas: TenantQuotas,
        workers: usize,
    ) -> FollowerState {
        FollowerState {
            primary,
            root,
            policy,
            quotas,
            workers,
            replicas: Mutex::new(BTreeMap::new()),
            last_contact: Mutex::new(None),
            promoted: AtomicBool::new(false),
        }
    }

    /// Whether this server still serves as a follower (false once
    /// promoted).
    pub fn is_follower(&self) -> bool {
        !self.promoted.load(SeqCst)
    }

    /// The primary address this follower trails (for error messages and
    /// stats).
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// Marks the primary as alive right now.
    pub fn touch(&self) {
        *self
            .last_contact
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
    }

    /// Milliseconds since the primary last spoke; `None` if it never has.
    pub fn staleness_ms(&self) -> Option<u64> {
        self.last_contact
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map(|t| t.elapsed().as_millis() as u64)
    }

    /// The replica for `name`, opening (and recovering) it on first use.
    /// Refused after promotion — the registry owns the directories then.
    pub fn open_replica(&self, name: &str) -> Result<Arc<ReplicaTenant>, TenantError> {
        validate_tenant_name(name)?;
        let mut replicas = self.replicas.lock().unwrap_or_else(PoisonError::into_inner);
        if !self.is_follower() {
            return Err(TenantError::promoted());
        }
        if let Some(r) = replicas.get(name) {
            return Ok(Arc::clone(r));
        }
        let dir = self.root.join("tenants").join(name);
        let replica = Replica::open(&dir, self.policy).map_err(|e| TenantError {
            kind: "internal",
            message: format!("cannot open replica `{name}`: {e}"),
        })?;
        let service = QueryService::with_config(
            replica.session().snapshot(),
            ServiceConfig {
                workers: self.workers,
                queue_cap: self.quotas.queue_cap,
                max_facts: self.quotas.query_max_facts,
                max_overlay_depth: self.quotas.max_overlay_depth,
                ..ServiceConfig::default()
            },
        );
        let tenant = Arc::new(ReplicaTenant {
            name: name.to_owned(),
            replica: Mutex::new(replica),
            service,
            windows_applied: AtomicU64::new(0),
            bytes_applied: AtomicU64::new(0),
        });
        replicas.insert(name.to_owned(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Lands one shipped window on `name`'s replica and republishes its
    /// snapshot. Returns the replica's new position for the ack.
    ///
    /// A position mismatch is reported as a `rep-position` reply carrying
    /// the actual position, so the primary reseeds instead of guessing.
    /// Any other apply failure drops the replica binding — reopening runs
    /// recovery, which reconciles a log that got ahead of memory.
    pub fn apply_window(&self, name: &str, epoch: u64, offset: u64, bytes: &[u8]) -> Reply {
        let tenant = match self.open_replica(name) {
            Ok(t) => t,
            Err(e) => return Reply::err(e.kind, e.message),
        };
        let mut replica = lock_replica(&tenant.replica);
        if !self.is_follower() {
            return Reply::err("protocol", "follower has been promoted");
        }
        let at = replica.position();
        if epoch != at.epoch || offset != at.offset {
            return position_mismatch(at);
        }
        match replica.apply_window(epoch, offset, bytes) {
            Ok(_records) => {
                let pos = replica.position();
                tenant.service.publish(replica.session().snapshot());
                drop(replica);
                tenant.windows_applied.fetch_add(1, Relaxed);
                tenant.bytes_applied.fetch_add(bytes.len() as u64, Relaxed);
                ack_reply("rep_window", pos)
            }
            Err(e) => {
                drop(replica);
                self.evict(name);
                Reply::err("internal", format!("window apply failed: {e}"))
            }
        }
    }

    /// Installs a shipped checkpoint image on `name`'s replica; returns
    /// the new position (top of the image's epoch) for the ack.
    pub fn install_checkpoint(&self, name: &str, epoch: u64, image: &[u8]) -> Reply {
        let tenant = match self.open_replica(name) {
            Ok(t) => t,
            Err(e) => return Reply::err(e.kind, e.message),
        };
        let mut replica = lock_replica(&tenant.replica);
        if !self.is_follower() {
            return Reply::err("protocol", "follower has been promoted");
        }
        match replica.install_checkpoint(epoch, image) {
            Ok(()) => {
                let pos = replica.position();
                tenant.service.publish(replica.session().snapshot());
                drop(replica);
                ack_reply("rep_checkpoint", pos)
            }
            Err(e) => {
                drop(replica);
                self.evict(name);
                Reply::err("internal", format!("checkpoint install failed: {e}"))
            }
        }
    }

    /// Answers a primary's `rep_position` negotiation for `name`.
    pub fn rep_position(&self, name: &str) -> Reply {
        match self.open_replica(name) {
            Ok(t) => ack_reply("rep_position", t.position()),
            Err(e) => Reply::err(e.kind, e.message),
        }
    }

    /// Drops a replica binding so the next `rep_*` op reopens (and
    /// re-recovers) it from disk.
    fn evict(&self, name: &str) {
        self.replicas
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name);
    }

    /// Promotes this follower: latch the flag, then take every replica's
    /// mutex once (the barrier — in-flight applies finish, later ones see
    /// the flag), then drop the replicas so the registry can reopen the
    /// directories as writable tenants. Returns the promoted tenant
    /// names. Idempotent: a second promote returns the (now empty) list.
    pub fn promote(&self) -> Vec<String> {
        self.promoted.store(true, SeqCst);
        let drained: Vec<(String, Arc<ReplicaTenant>)> = {
            let mut replicas = self.replicas.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *replicas).into_iter().collect()
        };
        let mut names = Vec::new();
        for (name, tenant) in drained {
            // The barrier: once this lock is held, no apply is mid-write
            // against the directory, and every later apply attempt sees
            // the promoted flag before touching disk.
            drop(lock_replica(&tenant.replica));
            names.push(name);
        }
        names
    }

    /// The follower's `stats` section.
    pub fn stats_json(&self) -> Json {
        let replicas = self.replicas.lock().unwrap_or_else(PoisonError::into_inner);
        let tenants: Vec<Json> = replicas.values().map(|r| r.stats_json()).collect();
        Json::obj(vec![
            (
                "role",
                Json::str(if self.is_follower() {
                    "follower"
                } else {
                    "promoted"
                }),
            ),
            ("primary", Json::str(&self.primary)),
            (
                "last_contact_ms",
                match self.staleness_ms() {
                    Some(ms) => Json::num(ms as f64),
                    None => Json::Null,
                },
            ),
            ("tenants", Json::Arr(tenants)),
        ])
    }
}

impl TenantError {
    fn promoted() -> TenantError {
        TenantError {
            kind: "protocol",
            message: "follower has been promoted; reconnect and open normally".to_owned(),
        }
    }
}

/// A `rep-position` error reply carrying the replica's actual position.
fn position_mismatch(at: Position) -> Reply {
    Reply::err(
        "rep-position",
        "window does not start at the replica position",
    )
    .with("epoch", Json::num(at.epoch as f64))
    .with("offset", Json::num(at.offset as f64))
}

/// An ack carrying the replica's post-apply position.
fn ack_reply(op: &str, pos: Position) -> Reply {
    Reply::ok(op)
        .with("epoch", Json::num(pos.epoch as f64))
        .with("offset", Json::num(pos.offset as f64))
}

// ---------------------------------------------------------------------
// Primary side
// ---------------------------------------------------------------------

/// Shared counters for one shipper target, read by `stats`.
pub struct ShipperStats {
    /// The follower address as configured.
    pub addr: String,
    /// Whether the shipper currently holds a live connection.
    pub connected: AtomicBool,
    /// Windows acked by the follower.
    pub windows_shipped: AtomicU64,
    /// WAL bytes acked by the follower (pre-base64).
    pub bytes_shipped: AtomicU64,
    /// Checkpoint images acked by the follower.
    pub checkpoints_shipped: AtomicU64,
    /// Dial attempts after the first connection attempt (reconnects).
    pub redials: AtomicU64,
    /// Divergence episodes observed (a tenant whose follower log is not
    /// a prefix of ours; healed only by a primary-side checkpoint).
    pub diverged: AtomicU64,
    /// Milliseconds since the last ack (any op), for lag monitoring.
    last_ack: Mutex<Option<Instant>>,
    /// The most recent dial or shipping error on this target.
    last_error: Mutex<Option<String>>,
}

impl ShipperStats {
    fn new(addr: String) -> ShipperStats {
        ShipperStats {
            addr,
            connected: AtomicBool::new(false),
            windows_shipped: AtomicU64::new(0),
            bytes_shipped: AtomicU64::new(0),
            checkpoints_shipped: AtomicU64::new(0),
            redials: AtomicU64::new(0),
            diverged: AtomicU64::new(0),
            last_ack: Mutex::new(None),
            last_error: Mutex::new(None),
        }
    }

    fn acked(&self) {
        *self.last_ack.lock().unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
    }

    fn error(&self, message: String) {
        *self
            .last_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(message);
    }

    /// This target's `stats` object.
    pub fn to_json(&self) -> Json {
        let last_ack = self
            .last_ack
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map(|t| t.elapsed().as_millis() as u64);
        let last_error = self
            .last_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        Json::obj(vec![
            ("addr", Json::str(&self.addr)),
            ("connected", Json::Bool(self.connected.load(Relaxed))),
            (
                "windows_shipped",
                Json::num(self.windows_shipped.load(Relaxed) as f64),
            ),
            (
                "bytes_shipped",
                Json::num(self.bytes_shipped.load(Relaxed) as f64),
            ),
            (
                "checkpoints_shipped",
                Json::num(self.checkpoints_shipped.load(Relaxed) as f64),
            ),
            ("redials", Json::num(self.redials.load(Relaxed) as f64)),
            ("diverged", Json::num(self.diverged.load(Relaxed) as f64)),
            (
                "last_ack_ms",
                match last_ack {
                    Some(ms) => Json::num(ms as f64),
                    None => Json::Null,
                },
            ),
            (
                "last_error",
                match last_error {
                    Some(e) => Json::str(e),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// A live connection to one follower.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// The shipper's per-target state: the (maybe dead) connection, this
/// target's per-tenant resume cursors, and its private backoff clock.
struct Target {
    index: usize,
    stats: Arc<ShipperStats>,
    conn: Option<Conn>,
    positions: BTreeMap<String, Position>,
    backoff: Duration,
    next_dial: Instant,
    dialed: bool,
    last_send: Instant,
    /// Tenants currently in a divergence episode (counted and warned
    /// once per episode, not once per 25 ms poll).
    diverged_now: BTreeSet<String>,
}

/// Outcome of one shipment exchange with a follower.
enum Acked {
    /// The follower fsynced and acked up to this position.
    To(Position),
    /// The follower answered `rep-position`; the cursor was reseeded.
    Reseed,
}

/// Minimal xorshift64* PRNG for backoff jitter — the build vendors no
/// rand crate, and backoff spread needs no quality beyond "not the same
/// on every primary".
struct Jitter(u64);

impl Jitter {
    fn seeded() -> Jitter {
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Jitter((nanos ^ ((std::process::id() as u64) << 32)) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Spreads a backoff delay over `[d/2, d)` so shippers across a
    /// fleet don't redial a recovering follower in lockstep.
    fn spread(&mut self, d: Duration) -> Duration {
        let half = d / 2;
        half + half.mul_f64((self.next() >> 11) as f64 / (1u64 << 53) as f64)
    }
}

/// The primary-side replication loop: **one** thread fanning out to all
/// follower targets. Each pass dials whatever is due, walks the registry
/// once sharing one [`WalTap`] per tenant, and advances every connected
/// target from its own cursor; follower acks feed the shared
/// [`AckTracker`] for quorum-acknowledged commits.
pub struct Shipper {
    registry: Arc<Registry>,
    handle: Arc<ReplicationHandle>,
    fence: Arc<FenceState>,
    shutdown: Arc<AtomicBool>,
}

impl Shipper {
    /// Spawns the shipper thread for `addrs`; returns the per-target
    /// stats handles (same order as `addrs`) and the join handle.
    pub fn spawn(
        registry: Arc<Registry>,
        addrs: &[String],
        handle: Arc<ReplicationHandle>,
        fence: Arc<FenceState>,
        shutdown: Arc<AtomicBool>,
    ) -> (Vec<Arc<ShipperStats>>, std::thread::JoinHandle<()>) {
        let stats: Vec<Arc<ShipperStats>> = addrs
            .iter()
            .map(|addr| Arc::new(ShipperStats::new(addr.clone())))
            .collect();
        let targets: Vec<Target> = stats
            .iter()
            .enumerate()
            .map(|(index, stats)| Target {
                index,
                stats: Arc::clone(stats),
                conn: None,
                positions: BTreeMap::new(),
                backoff: BACKOFF_FLOOR,
                next_dial: Instant::now(),
                dialed: false,
                last_send: Instant::now(),
                diverged_now: BTreeSet::new(),
            })
            .collect();
        let shipper = Shipper {
            registry,
            handle,
            fence,
            shutdown,
        };
        let join = std::thread::Builder::new()
            .name("hdl-shipper".to_owned())
            .spawn(move || shipper.run(targets))
            .expect("spawn shipper thread");
        (stats, join)
    }

    fn done(&self) -> bool {
        self.shutdown.load(SeqCst)
    }

    /// The shipper pass, forever: dial due targets, fan the registry out
    /// to every live connection, heartbeat idle links, then wait for a
    /// commit kick (or 25 ms, whichever comes first).
    fn run(&self, mut targets: Vec<Target>) {
        let mut jitter = Jitter::seeded();
        while !self.done() {
            for t in &mut targets {
                if t.conn.is_none() && Instant::now() >= t.next_dial {
                    self.dial(t, &mut jitter);
                }
            }
            let mut progressed = false;
            for tenant in self.registry.tenants() {
                if self.done() {
                    return;
                }
                let Some(tap) = tenant.wal_tap() else {
                    continue;
                };
                let name = tenant.name().to_owned();
                for t in &mut targets {
                    if t.conn.is_none() {
                        continue;
                    }
                    match self.ship_one(t, &name, &tap) {
                        Ok(p) => progressed |= p,
                        Err(e) => self.drop_conn(t, &mut jitter, e.to_string()),
                    }
                }
            }
            if !progressed {
                for t in &mut targets {
                    if t.conn.is_some() && t.last_send.elapsed() >= HEARTBEAT_EVERY {
                        if let Err(e) = self.heartbeat(t) {
                            self.drop_conn(t, &mut jitter, e.to_string());
                        }
                    }
                }
                self.handle.wait_kick(Duration::from_millis(25));
            }
        }
    }

    /// One connection attempt; on failure, schedules the jittered redial.
    fn dial(&self, t: &mut Target, jitter: &mut Jitter) {
        if t.dialed {
            t.stats.redials.fetch_add(1, Relaxed);
        }
        t.dialed = true;
        let conn = TcpStream::connect(&t.stats.addr).and_then(|stream| {
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            Ok(Conn {
                reader,
                writer: stream,
            })
        });
        match conn {
            Ok(conn) => {
                t.conn = Some(conn);
                t.positions.clear();
                t.backoff = BACKOFF_FLOOR;
                t.last_send = Instant::now();
                t.stats.connected.store(true, Relaxed);
            }
            Err(e) => {
                t.stats.error(format!("dial failed: {e}"));
                t.next_dial = Instant::now() + jitter.spread(t.backoff);
                t.backoff = (t.backoff * 2).min(BACKOFF_CAP);
            }
        }
    }

    /// Tears a dead connection down: forget its quorum contribution (a
    /// dead follower must never count toward a sync ack), clear cursors,
    /// and schedule the jittered redial.
    fn drop_conn(&self, t: &mut Target, jitter: &mut Jitter, error: String) {
        t.conn = None;
        t.positions.clear();
        t.stats.connected.store(false, Relaxed);
        t.stats.error(error);
        self.handle.tracker().forget_target(t.index);
        t.next_dial = Instant::now() + jitter.spread(t.backoff);
        t.backoff = (t.backoff * 2).min(BACKOFF_CAP);
    }

    /// Advances one target for one tenant: negotiate the cursor if this
    /// connection hasn't yet, plan against the shared tap, ship the
    /// window or image. Returns whether anything moved (so the pass
    /// spins again instead of sleeping).
    fn ship_one(&self, t: &mut Target, name: &str, tap: &WalTap) -> std::io::Result<bool> {
        let pos = match t.positions.get(name) {
            Some(p) => *p,
            None => {
                let p = self.negotiate(t, name)?;
                t.positions.insert(name.to_owned(), p);
                self.handle.tracker().record(name, t.index, p);
                p
            }
        };
        let plan = match tap.plan_ship(pos, MAX_WINDOW_BYTES) {
            Ok(plan) => plan,
            Err(_) => {
                // A rotation raced the read; renegotiate next round
                // against the new epoch.
                t.positions.remove(name);
                return Ok(false);
            }
        };
        match plan {
            Ship::Window { bytes, .. } if bytes.is_empty() => {
                t.diverged_now.remove(name);
                Ok(false)
            }
            Ship::Window {
                epoch,
                offset,
                bytes,
            } => {
                t.diverged_now.remove(name);
                hdl_base::failpoint_fire!("replicate::ship");
                hdl_persist::crashpoint::crash_point("replicate::ship");
                let line = Json::obj(vec![
                    ("op", Json::str("rep_window")),
                    ("tenant", Json::str(name)),
                    ("epoch", Json::num(epoch as f64)),
                    ("offset", Json::num(offset as f64)),
                    ("fence", Json::num(self.fence.epoch() as f64)),
                    ("data", Json::str(b64_encode(&bytes))),
                ])
                .to_string();
                match self.exchange(t, name, &line)? {
                    Acked::To(_) => {
                        t.stats.windows_shipped.fetch_add(1, Relaxed);
                        t.stats.bytes_shipped.fetch_add(bytes.len() as u64, Relaxed);
                    }
                    Acked::Reseed => {}
                }
                Ok(true)
            }
            Ship::Checkpoint { epoch, image } => {
                t.diverged_now.remove(name);
                let line = Json::obj(vec![
                    ("op", Json::str("rep_checkpoint")),
                    ("tenant", Json::str(name)),
                    ("epoch", Json::num(epoch as f64)),
                    ("fence", Json::num(self.fence.epoch() as f64)),
                    ("data", Json::str(b64_encode(&image))),
                ])
                .to_string();
                if let Acked::To(_) = self.exchange(t, name, &line)? {
                    t.stats.checkpoints_shipped.fetch_add(1, Relaxed);
                }
                Ok(true)
            }
            Ship::Diverged { primary } => {
                // The follower's log is not a prefix of ours; nothing
                // safe can be shipped. A primary-side checkpoint
                // converts this into an image transfer — leave the
                // cursor cached so the plan flips to Checkpoint once
                // that happens. Count and warn once per episode so the
                // lineage mismatch is visible to operators.
                if t.diverged_now.insert(name.to_owned()) {
                    t.stats.diverged.fetch_add(1, Relaxed);
                    let warning = format!(
                        "replica {} has diverged on tenant `{name}` (claims {}:{}, primary at {}:{}); checkpoint the primary to force an image transfer",
                        t.stats.addr, pos.epoch, pos.offset, primary.epoch, primary.offset
                    );
                    t.stats.error(warning);
                    eprintln!(
                        "{}",
                        Json::obj(vec![
                            ("warn", Json::str("replication_diverged")),
                            ("target", Json::str(&t.stats.addr)),
                            ("tenant", Json::str(name)),
                            ("replica_epoch", Json::num(pos.epoch as f64)),
                            ("replica_offset", Json::num(pos.offset as f64)),
                            ("primary_epoch", Json::num(primary.epoch as f64)),
                            ("primary_offset", Json::num(primary.offset as f64)),
                        ])
                    );
                }
                Ok(false)
            }
        }
    }

    /// Asks the follower where shipping should resume for `tenant`.
    fn negotiate(&self, t: &mut Target, tenant: &str) -> std::io::Result<Position> {
        let line = Json::obj(vec![
            ("op", Json::str("rep_position")),
            ("tenant", Json::str(tenant)),
            ("fence", Json::num(self.fence.epoch() as f64)),
        ])
        .to_string();
        match self.exchange(t, tenant, &line)? {
            Acked::To(p) => Ok(p),
            Acked::Reseed => Err(protocol_err("rep_position answered with a reseed")),
        }
    }

    /// Sends one line and lands the reply, observing fencing on every
    /// exchange: a reply whose `fence` field is newer than our epoch, or
    /// an outright `fenced` refusal, latches this server read-only.
    /// `rep-position` reseeds update the cursor and return
    /// [`Acked::Reseed`]; anything else is connection-fatal.
    fn exchange(&self, t: &mut Target, tenant: &str, line: &str) -> std::io::Result<Acked> {
        let conn = t.conn.as_mut().expect("exchange on a live connection");
        let reply = round_trip(&mut conn.reader, &mut conn.writer, line)?;
        t.last_send = Instant::now();
        if let Some(remote) = reply.get("fence").and_then(Json::as_u64) {
            self.observe_fence(remote);
        }
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            t.stats.acked();
            match reply_position(&reply) {
                Some(p) => {
                    t.positions.insert(tenant.to_owned(), p);
                    self.handle.tracker().record(tenant, t.index, p);
                    Ok(Acked::To(p))
                }
                None => Err(protocol_err(format!("ack carried no position: {reply}"))),
            }
        } else {
            match reply.get("kind").and_then(Json::as_str) {
                Some("rep-position") => match reply_position(&reply) {
                    Some(p) => {
                        t.positions.insert(tenant.to_owned(), p);
                        self.handle.tracker().record(tenant, t.index, p);
                        Ok(Acked::Reseed)
                    }
                    None => Err(protocol_err(format!("reseed carried no position: {reply}"))),
                },
                Some("fenced") => {
                    // The peer outlived a promotion we never saw: it
                    // names an epoch newer than ours. Latch and drop the
                    // link — this primary is done accepting writes.
                    let remote = reply
                        .get("epoch")
                        .and_then(Json::as_u64)
                        .unwrap_or(self.fence.epoch() + 1);
                    self.observe_fence(remote);
                    Err(protocol_err(format!("target fenced this primary: {reply}")))
                }
                // `internal` (apply failure) and everything else: drop
                // the connection; reconnect renegotiates against the
                // recovered replica.
                _ => Err(protocol_err(format!("follower refused shipment: {reply}"))),
            }
        }
    }

    /// Latches the fence if `remote` is newer than our epoch, logging
    /// the transition once.
    fn observe_fence(&self, remote: u64) {
        if remote > self.fence.epoch() && self.fence.fence_to(remote) {
            eprintln!(
                "{}",
                Json::obj(vec![
                    ("warn", Json::str("fenced")),
                    ("observed_epoch", Json::num(remote as f64)),
                    (
                        "detail",
                        Json::str(
                            "a newer primary exists; this server is now read-only \
                             and refuses mutations with kind `fenced`"
                        ),
                    ),
                ])
            );
        }
    }

    /// One idle-link liveness probe; also carries our fence epoch so an
    /// idle follower still adopts it.
    fn heartbeat(&self, t: &mut Target) -> std::io::Result<()> {
        let conn = t.conn.as_mut().expect("heartbeat on a live connection");
        let line = Json::obj(vec![
            ("op", Json::str("rep_heartbeat")),
            ("fence", Json::num(self.fence.epoch() as f64)),
        ])
        .to_string();
        let reply = round_trip(&mut conn.reader, &mut conn.writer, &line)?;
        t.last_send = Instant::now();
        if let Some(remote) = reply.get("fence").and_then(Json::as_u64) {
            self.observe_fence(remote);
        }
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            t.stats.acked();
            Ok(())
        } else if reply.get("kind").and_then(Json::as_str) == Some("fenced") {
            let remote = reply
                .get("epoch")
                .and_then(Json::as_u64)
                .unwrap_or(self.fence.epoch() + 1);
            self.observe_fence(remote);
            Err(protocol_err(format!("heartbeat fenced: {reply}")))
        } else {
            Err(protocol_err(format!("heartbeat refused: {reply}")))
        }
    }
}

fn round_trip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
) -> std::io::Result<Json> {
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut reply = String::new();
    if reader.read_line(&mut reply)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "follower closed the connection",
        ));
    }
    Json::parse(reply.trim()).map_err(protocol_err)
}

fn reply_position(reply: &Json) -> Option<Position> {
    Some(Position {
        epoch: reply.get("epoch").and_then(Json::as_u64)?,
        offset: reply.get("offset").and_then(Json::as_u64)?,
    })
}

fn protocol_err(message: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_round_trips() {
        let cases: &[&[u8]] = &[
            b"",
            b"f",
            b"fo",
            b"foo",
            b"foob",
            b"fooba",
            b"foobar",
            &[0, 1, 2, 253, 254, 255],
        ];
        for &case in cases {
            let encoded = b64_encode(case);
            assert_eq!(b64_decode(&encoded).unwrap(), case, "{encoded}");
        }
        // Spot-check against the RFC 4648 vectors.
        assert_eq!(b64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(b64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(b64_encode(b"fooba"), "Zm9vYmE=");
    }

    #[test]
    fn base64_rejects_malformed_input() {
        assert!(b64_decode("abc").is_err(), "bad length");
        assert!(b64_decode("ab=c").is_err(), "padding inside a quad");
        assert!(b64_decode("a===").is_err(), "over-padded");
        assert!(b64_decode("ab cd").is_err(), "whitespace");
        assert!(b64_decode("abc\u{e9}").is_err(), "non-ascii");
        assert_eq!(b64_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn every_byte_pattern_round_trips() {
        let mut bytes = Vec::new();
        for i in 0..=255u8 {
            bytes.push(i);
            let encoded = b64_encode(&bytes);
            assert_eq!(b64_decode(&encoded).unwrap(), bytes);
        }
    }

    struct TempRoot(PathBuf);

    impl TempRoot {
        fn new(tag: &str) -> TempRoot {
            let dir = std::env::temp_dir().join(format!(
                "hdl-fence-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempRoot(dir)
        }
    }

    impl Drop for TempRoot {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn fence_latches_and_survives_reload() {
        let root = TempRoot::new("latch");
        let fence = FenceState::load(Some(&root.0));
        assert_eq!(fence.epoch(), 0);
        assert!(!fence.is_fenced());

        // Our own epoch (or older) never fences us.
        assert!(!fence.fence_to(0));
        assert!(!fence.is_fenced());

        // A newer epoch latches exactly once.
        assert!(fence.fence_to(3));
        assert!(fence.is_fenced());
        assert_eq!(fence.epoch(), 3);
        assert!(!fence.fence_to(3), "already latched");
        assert!(!fence.fence_to(2), "older epoch is a no-op");

        // The latch is persistent: a restarted process boots fenced.
        let reborn = FenceState::load(Some(&root.0));
        assert!(reborn.is_fenced());
        assert_eq!(reborn.epoch(), 3);

        // Promotion clears the latch and moves past everything observed.
        assert_eq!(reborn.bump_for_promote(), 4);
        assert!(!reborn.is_fenced());
        let after = FenceState::load(Some(&root.0));
        assert_eq!(after.epoch(), 4);
        assert!(!after.is_fenced());
    }

    #[test]
    fn fence_adopt_tracks_without_latching() {
        let root = TempRoot::new("adopt");
        let fence = FenceState::load(Some(&root.0));
        fence.adopt(7);
        assert_eq!(fence.epoch(), 7);
        assert!(!fence.is_fenced(), "followers adopt, they don't latch");
        fence.adopt(5);
        assert_eq!(fence.epoch(), 7, "adopt never regresses");
        let reborn = FenceState::load(Some(&root.0));
        assert_eq!(reborn.epoch(), 7);
        assert_eq!(reborn.bump_for_promote(), 8);
    }

    #[test]
    fn rootless_fence_is_memory_only() {
        let fence = FenceState::load(None);
        assert!(fence.fence_to(2));
        assert!(fence.is_fenced());
        assert_eq!(fence.epoch(), 2);
    }

    #[test]
    fn jitter_spreads_backoff_within_bounds() {
        let mut jitter = Jitter::seeded();
        let base = Duration::from_millis(800);
        let mut distinct = BTreeSet::new();
        for _ in 0..64 {
            let d = jitter.spread(base);
            assert!(d >= base / 2, "{d:?} below half the backoff");
            assert!(d <= base, "{d:?} above the backoff");
            distinct.insert(d.as_nanos());
        }
        assert!(distinct.len() > 8, "jitter must actually vary");
    }

    #[test]
    fn replication_handle_kick_wakes_waiters() {
        let handle = ReplicationHandle::new(2);
        assert_eq!(handle.targets(), 2);
        // A kick before the wait returns immediately.
        handle.kick();
        let started = Instant::now();
        handle.wait_kick(Duration::from_secs(5));
        assert!(started.elapsed() < Duration::from_secs(1));
        // And the flag is consumed: the next wait times out.
        let started = Instant::now();
        handle.wait_kick(Duration::from_millis(30));
        assert!(started.elapsed() >= Duration::from_millis(25));
    }
}
