//! A minimal JSON value: parser and writer.
//!
//! The wire protocol is newline-delimited JSON and the build
//! environment is offline (no serde), so this module implements the
//! small subset the protocol needs: objects, arrays, strings (with
//! escapes, including `\uXXXX`), numbers, booleans, and null. Parsing
//! is strict — trailing garbage after the value is an error — because
//! every protocol line must be exactly one JSON object.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys are ordered (BTreeMap) so rendered
/// output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; the protocol only uses integers
    /// small enough to round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a numeric value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Parses exactly one JSON value from `text` (trailing whitespace
    /// allowed, trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by the
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for text in [
            "null",
            "true",
            "42",
            "-3.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":[1,{\"b\":\"c\"}],\"d\":null}",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f".into());
        let rendered = v.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"op\":\"query\",\"id\":7,\"deep\":true}").unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("deep").and_then(Json::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }
}
