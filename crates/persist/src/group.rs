//! Group commit: one fsync per *batch* of concurrent mutations.
//!
//! Per-mutation fsync caps durable write throughput at the fsync rate
//! of the device (BENCH_persist.json: ~6.3k/s `always` vs ~512k/s
//! `never` on the reference host). A multi-tenant server has many
//! sessions appending concurrently, which is exactly the shape group
//! commit exploits: a dedicated committer thread drains every pending
//! mutation, appends all of their record groups, and then issues **one
//! fsync per WAL file touched in the batch** — so a batch of hundreds
//! of mutations pays a handful of fsyncs instead of hundreds.
//!
//! The ack-after-commit protocol is preserved exactly: a submitter
//! blocks in [`GroupCommitter::commit`] until the fsync covering its
//! records has returned, and only then does the session apply the
//! mutation to memory and ack the client. Crash recovery is therefore
//! byte-for-byte the same contract as the direct path — every acked
//! mutation is on disk, and a crash mid-batch can only lose records
//! that were never acked (the kill-matrix in `tests/crash_recovery.rs`
//! exercises both paths at the same crash sites, which live in
//! [`WalWriter::append_group`] / [`WalWriter::sync_commits`] and are
//! shared by construction).
//!
//! Deep batches need *pipelining*: if every writer holds its session
//! lock while blocked on the fsync, a WAL can never have more than one
//! commit in flight and batching degenerates to one commit per sync.
//! [`GroupCommitter::submit`] is the non-blocking half — enqueue the
//! records, get a [`CommitTicket`], release the session lock so the
//! next connection can stack its commit behind yours, and `wait` the
//! ticket before acking the client. The durability contract is
//! unchanged (nothing is acked before its fsync); only the *lock* no
//! longer spans the wait.
//!
//! Ordering: submissions against the same WAL are appended in
//! submission order (the queue is FIFO and the committer never reorders
//! within a batch), so each tenant's log remains a prefix-consistent
//! mutation sequence. Submissions against different WALs are
//! independent worlds and carry no ordering contract.

use crate::wal::WalWriter;
use hdl_base::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A pending group commit: the receipt for one submitted record group.
///
/// Produced by the pipelined commit path ([`GroupCommitter::submit`]):
/// the submitter enqueues its records without blocking, keeps doing
/// useful work (applying the mutation to memory, releasing its session
/// lock so other writers can stack into the same batch), and calls
/// [`wait`](CommitTicket::wait) before acking anything to a client.
/// Dropping a ticket without waiting forfeits the durability guarantee
/// for that ack — the records are still committed, but the submitter
/// never learns when (or whether) they landed.
#[derive(Debug)]
pub struct CommitTicket {
    rx: mpsc::Receiver<Result<()>>,
}

impl CommitTicket {
    /// Blocks until the fsync pass covering the submitted records has
    /// returned, yielding the commit result. A dead committer yields an
    /// error rather than hanging.
    pub fn wait(self) -> Result<()> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(Error::Invalid("group committer died".into())))
    }
}

/// A tenant's WAL writer plus its synced-symbol watermark, shared
/// between the session-owned observer, the `DurableSession` (checkpoint
/// rotation), and — in group mode — the committer thread.
#[derive(Debug)]
pub(crate) struct SharedWal {
    /// The appender for the tenant's active WAL file.
    pub writer: WalWriter,
    /// How many symbols (by interning position) the log already covers.
    pub synced: usize,
    /// The checkpoint epoch this WAL belongs to. Updated under the same
    /// lock hold that swaps the writer on rotation, so replication can
    /// snapshot a consistent `(epoch, committed)` position.
    pub epoch: u64,
}

/// One mutation's record group waiting for durability.
struct Submission {
    wal: Arc<Mutex<SharedWal>>,
    payloads: Vec<Vec<u8>>,
    done: mpsc::Sender<Result<()>>,
}

struct QueueState {
    pending: Vec<Submission>,
    shutdown: bool,
}

struct Inner {
    queue: Mutex<QueueState>,
    nonempty: Condvar,
    batches: AtomicU64,
    commits: AtomicU64,
    fsync_groups: AtomicU64,
    max_batch: AtomicU64,
}

/// Counters describing how much batching the committer achieved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Batches the committer thread drained.
    pub batches: u64,
    /// Mutations committed through the group path.
    pub commits: u64,
    /// Per-file sync passes issued (≤ one per WAL per batch). The
    /// savings over the direct path are `commits - fsync_groups`.
    pub fsync_groups: u64,
    /// Largest single batch (mutations made durable under one drain).
    pub max_batch: u64,
}

impl GroupCommitStats {
    /// One-line JSON object of the counters (for the server's `stats`
    /// op and BENCH_serve.json). Keys are stable.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"batches\":{},\"commits\":{},\"fsync_groups\":{},\"max_batch\":{}}}",
            self.batches, self.commits, self.fsync_groups, self.max_batch
        )
    }
}

/// The shared committer thread: tenants submit mutation record groups,
/// the committer batches everything pending into one append+sync pass.
///
/// Dropping the last handle (or calling [`shutdown`]) drains the queue
/// before the thread exits, so no submitter is left hanging.
///
/// [`shutdown`]: GroupCommitter::shutdown
pub struct GroupCommitter {
    inner: Arc<Inner>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl GroupCommitter {
    /// Starts the committer thread.
    pub fn new() -> Arc<Self> {
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState {
                pending: Vec::new(),
                shutdown: false,
            }),
            nonempty: Condvar::new(),
            batches: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            fsync_groups: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        });
        let worker = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("hdl-group-commit".into())
            .spawn(move || committer_loop(&worker))
            .expect("spawn group committer");
        Arc::new(GroupCommitter {
            inner,
            handle: Mutex::new(Some(handle)),
        })
    }

    /// Submits one mutation's record group against `wal` and blocks
    /// until it is durable (or failed). The caller must not hold the
    /// `wal` lock — the committer takes it to append.
    pub(crate) fn commit(&self, wal: &Arc<Mutex<SharedWal>>, payloads: Vec<Vec<u8>>) -> Result<()> {
        self.submit(wal, payloads).wait()
    }

    /// Enqueues one mutation's record group without waiting. The
    /// returned ticket resolves once the records are durable under the
    /// WAL's fsync policy. Submitting an *empty* payload group is a
    /// drain barrier: its ticket resolves only after every record group
    /// submitted against `wal` before it has been appended and synced
    /// (the queue is FIFO per WAL), and it writes nothing itself.
    pub(crate) fn submit(
        &self,
        wal: &Arc<Mutex<SharedWal>>,
        payloads: Vec<Vec<u8>>,
    ) -> CommitTicket {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock_recover(&self.inner.queue);
            if q.shutdown {
                let _ = tx.send(Err(Error::Invalid("group committer is shut down".into())));
                return CommitTicket { rx };
            }
            q.pending.push(Submission {
                wal: Arc::clone(wal),
                payloads,
                done: tx,
            });
        }
        self.inner.nonempty.notify_one();
        CommitTicket { rx }
    }

    /// A point-in-time view of the batching counters.
    pub fn stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            batches: self.inner.batches.load(Relaxed),
            commits: self.inner.commits.load(Relaxed),
            fsync_groups: self.inner.fsync_groups.load(Relaxed),
            max_batch: self.inner.max_batch.load(Relaxed),
        }
    }

    /// Drains the queue and stops the committer thread. Idempotent;
    /// later submissions fail with a structured error.
    pub fn shutdown(&self) {
        {
            let mut q = lock_recover(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.nonempty.notify_all();
        if let Some(handle) = lock_recover(&self.handle).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn committer_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut q = lock_recover(&inner.queue);
            while q.pending.is_empty() && !q.shutdown {
                q = inner
                    .nonempty
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if q.pending.is_empty() {
                return; // shutdown with nothing left to drain
            }
            std::mem::take(&mut q.pending)
        };
        commit_batch(inner, batch);
    }
}

/// Makes one drained batch durable: group the submissions by WAL
/// (preserving per-WAL submission order), append every group, then sync
/// each touched file once. When the batch spans several WALs the sync
/// passes run on scoped threads — the files are independent, and
/// serializing their fsyncs would make a multi-tenant batch pay
/// `tenants × fsync` of latency instead of roughly one. Results are
/// delivered per submission; an append failure poisons the rest of that
/// WAL's batch (their bytes would land after a known-bad write) but
/// never another tenant's.
fn commit_batch(inner: &Inner, batch: Vec<Submission>) {
    // Count the batch before any ack can be delivered, so the counters
    // never appear to lag the commits they describe.
    inner.batches.fetch_add(1, Relaxed);
    // Empty payload groups are drain barriers, not commits.
    let size = batch.iter().filter(|s| !s.payloads.is_empty()).count() as u64;
    inner.commits.fetch_add(size, Relaxed);
    inner.max_batch.fetch_max(size, Relaxed);

    // Group by WAL identity, keeping first-appearance order.
    let mut groups: Vec<(Arc<Mutex<SharedWal>>, Vec<Submission>)> = Vec::new();
    for sub in batch {
        match groups.iter_mut().find(|(w, _)| Arc::ptr_eq(w, &sub.wal)) {
            Some((_, subs)) => subs.push(sub),
            None => groups.push((Arc::clone(&sub.wal), vec![sub])),
        }
    }

    if groups.len() == 1 {
        let (wal, subs) = groups.pop().expect("one group");
        commit_wal_group(inner, &wal, subs);
    } else {
        std::thread::scope(|scope| {
            for (wal, subs) in groups {
                scope.spawn(move || commit_wal_group(inner, &wal, subs));
            }
        });
    }
}

/// Appends and syncs one WAL's slice of a batch (see [`commit_batch`]).
fn commit_wal_group(inner: &Inner, wal: &Arc<Mutex<SharedWal>>, subs: Vec<Submission>) {
    let mut guard = lock_recover(wal);
    let mut appended: Vec<&Submission> = Vec::with_capacity(subs.len());
    let mut real_commits = 0u32;
    let mut failure: Option<Error> = None;
    for sub in &subs {
        if let Some(e) = &failure {
            let _ = sub.done.send(Err(e.clone()));
            continue;
        }
        if sub.payloads.is_empty() {
            // Barrier: resolves with the sync below, writes nothing.
            appended.push(sub);
            continue;
        }
        let refs: Vec<&[u8]> = sub.payloads.iter().map(|p| p.as_slice()).collect();
        match guard.writer.append_group(&refs) {
            Ok(()) => {
                appended.push(sub);
                real_commits += 1;
            }
            Err(e) => {
                let _ = sub.done.send(Err(e.clone()));
                failure = Some(e);
            }
        }
    }
    let synced = if real_commits == 0 {
        Ok(())
    } else {
        inner.fsync_groups.fetch_add(1, Relaxed);
        guard.writer.sync_commits(real_commits)
    };
    drop(guard);
    for sub in appended {
        let _ = sub.done.send(synced.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crate::wal::{read_wal, FsyncPolicy};

    fn shared_wal(dir: &TempDir, name: &str) -> Arc<Mutex<SharedWal>> {
        let path = dir.path().join(name);
        let writer = WalWriter::create(&path, 0, FsyncPolicy::Always).unwrap();
        Arc::new(Mutex::new(SharedWal {
            writer,
            synced: 0,
            epoch: 0,
        }))
    }

    #[test]
    fn concurrent_commits_land_in_order_per_wal() {
        let dir = TempDir::new("group-order");
        let committer = GroupCommitter::new();
        let wal_a = shared_wal(&dir, "wal-0.log");
        let wal_b = shared_wal(&dir, "wal-b-0.log");

        std::thread::scope(|scope| {
            for i in 0..8u8 {
                let committer = &committer;
                let wal = if i % 2 == 0 { &wal_a } else { &wal_b };
                scope.spawn(move || {
                    for j in 0..16u8 {
                        committer
                            .commit(wal, vec![vec![i, j], vec![i, j, 0xFF]])
                            .unwrap();
                    }
                });
            }
        });

        let stats = committer.stats();
        assert_eq!(stats.commits, 8 * 16);
        assert!(stats.batches >= 1);
        assert!(stats.fsync_groups >= stats.batches);
        committer.shutdown();

        for wal in [&wal_a, &wal_b] {
            let path = lock_recover(wal).writer.path().to_path_buf();
            let scan = read_wal(&path).unwrap();
            assert_eq!(scan.valid_len, scan.file_len, "no torn tail");
            assert_eq!(scan.records.len(), 4 * 16 * 2);
            // Per submitter, the (i, j) stream must appear in order.
            let mut last: std::collections::HashMap<u8, u8> = Default::default();
            for frame in scan.records.iter().filter(|f| f.payload.len() == 2) {
                let (i, j) = (frame.payload[0], frame.payload[1]);
                if let Some(prev) = last.insert(i, j) {
                    assert!(j > prev, "submitter {i} reordered: {prev} then {j}");
                }
            }
        }
    }

    #[test]
    fn batching_spends_fewer_syncs_than_commits() {
        let dir = TempDir::new("group-batching");
        let committer = GroupCommitter::new();
        let wal = shared_wal(&dir, "wal-0.log");
        std::thread::scope(|scope| {
            for i in 0..4u8 {
                let (committer, wal) = (&committer, &wal);
                scope.spawn(move || {
                    for j in 0..32u8 {
                        committer.commit(wal, vec![vec![i, j]]).unwrap();
                    }
                });
            }
        });
        let stats = committer.stats();
        assert_eq!(stats.commits, 128);
        // One fsync pass per batch here (single WAL); concurrency must
        // have coalesced at least some commits into shared batches.
        assert_eq!(stats.fsync_groups, stats.batches);
        assert!(
            stats.batches < stats.commits,
            "no coalescing happened: {stats:?}"
        );
        assert!(stats.max_batch >= 2);
    }

    #[test]
    fn pipelined_submissions_resolve_and_barrier_drains() {
        let dir = TempDir::new("group-pipelined");
        let committer = GroupCommitter::new();
        let wal = shared_wal(&dir, "wal-0.log");
        // Fire-and-collect: tickets outstanding while more submissions
        // stack up behind them, exactly the pipelined server shape.
        let tickets: Vec<CommitTicket> = (0..32u8)
            .map(|i| committer.submit(&wal, vec![vec![i]]))
            .collect();
        // A barrier submitted after them resolves only once they are on
        // disk — and writes no record of its own.
        committer.commit(&wal, Vec::new()).unwrap();
        let scan = {
            let path = lock_recover(&wal).writer.path().to_path_buf();
            read_wal(&path).unwrap()
        };
        assert_eq!(scan.records.len(), 32, "barrier wrote nothing");
        assert_eq!(scan.valid_len, scan.file_len);
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = committer.stats();
        assert_eq!(stats.commits, 32, "barriers are not commits");
        assert!(
            stats.fsync_groups < 32,
            "pipelined submissions never coalesced: {stats:?}"
        );
    }

    #[test]
    fn shutdown_fails_new_submissions_cleanly() {
        let dir = TempDir::new("group-shutdown");
        let committer = GroupCommitter::new();
        let wal = shared_wal(&dir, "wal-0.log");
        committer.commit(&wal, vec![vec![1]]).unwrap();
        committer.shutdown();
        assert!(committer.commit(&wal, vec![vec![2]]).is_err());
        let path = lock_recover(&wal).writer.path().to_path_buf();
        drop(wal);
        assert_eq!(read_wal(&path).unwrap().records.len(), 1);
    }
}
