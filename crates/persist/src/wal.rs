//! The write-ahead log: length-prefixed, CRC32-checksummed records.
//!
//! One WAL file covers one checkpoint epoch (`wal-<epoch>.log`); a
//! checkpoint rotates to a fresh file and the old one is deleted. The
//! layout is
//!
//! ```text
//! "HDLWAL01"  (8 bytes)
//! epoch       (u64 le)
//! repeat:
//!   len       (u32 le, payload length)
//!   crc       (u32 le, CRC32 of payload)
//!   payload   (len bytes)
//! ```
//!
//! A crash can tear the tail: [`read_wal`] stops cleanly at the first
//! incomplete or checksum-failing frame and reports where the valid
//! prefix ends, so recovery can truncate and keep going — corruption is
//! an expected input here, never a panic.

use crate::crashpoint;
use hdl_base::{crc32, Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"HDLWAL01";
/// Bytes before the first record frame.
pub const WAL_HEADER_LEN: u64 = 16;
/// Largest accepted record payload (1 GiB) — a sanity bound so a corrupt
/// length prefix cannot drive an absurd allocation or read.
pub(crate) const MAX_RECORD_LEN: u32 = 1 << 30;

/// When `commit` calls `fsync` on the log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every commit: nothing acked is ever lost (default).
    Always,
    /// Sync every n-th commit: up to n-1 acked mutations may be lost to
    /// a power failure (not to a process crash — the data is already in
    /// the kernel page cache when the ack is printed).
    EveryN(u32),
    /// Never sync explicitly; the OS flushes when it pleases.
    Never,
}

impl std::str::FromStr for FsyncPolicy {
    type Err = Error;

    /// Accepts `always`, `never`, or a positive integer n (`every n`).
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            n => match n.parse::<u32>() {
                Ok(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(Error::Invalid(format!(
                    "bad fsync policy `{s}` (expected always, never, or a positive integer)"
                ))),
            },
        }
    }
}

/// Buffered appender for one WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    policy: FsyncPolicy,
    commits_since_sync: u32,
    committed: u64,
}

impl WalWriter {
    /// Creates a fresh WAL file for `epoch`, synced to disk.
    pub fn create(path: &Path, epoch: u64, policy: FsyncPolicy) -> Result<Self> {
        let file = File::create(path).map_err(|e| Error::io(path.display(), e))?;
        let mut writer = WalWriter {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            policy,
            commits_since_sync: 0,
            committed: WAL_HEADER_LEN,
        };
        writer.write(WAL_MAGIC)?;
        writer.write(&epoch.to_le_bytes())?;
        writer.flush()?;
        writer.sync()?;
        Ok(writer)
    }

    /// Opens an existing WAL for appending after recovery decided its
    /// valid prefix is `valid_len` bytes: the torn tail (if any) is cut
    /// off first so new records start at a clean frame boundary.
    pub fn open_end(path: &Path, valid_len: u64, policy: FsyncPolicy) -> Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| Error::io(path.display(), e))?;
        file.set_len(valid_len)
            .map_err(|e| Error::io(path.display(), e))?;
        file.sync_all().map_err(|e| Error::io(path.display(), e))?;
        let mut file = BufWriter::new(file);
        file.seek(SeekFrom::End(0))
            .map_err(|e| Error::io(path.display(), e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            commits_since_sync: 0,
            committed: valid_len,
        })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// End of the durable record prefix: every byte below this offset is
    /// a complete, flushed frame. Advanced only after a whole mutation
    /// group is appended and flushed, so a torn or failed append never
    /// counts — this is the watermark replication ships up to.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Appends all records of one session mutation, then syncs according
    /// to the fsync policy. The caller may only ack the mutation (and
    /// commit it to memory) after this returns `Ok`.
    pub fn commit(&mut self, payloads: &[&[u8]]) -> Result<()> {
        self.append_group(payloads)?;
        self.sync_commits(1)
    }

    /// Appends the frames of one mutation's record group and flushes
    /// them to the OS **without** fsyncing. Used by the group-commit
    /// path, which batches several groups (possibly from several
    /// concurrent submitters) ahead of a single [`sync_commits`] call.
    /// Nothing may be acked until that sync returns `Ok`.
    ///
    /// [`sync_commits`]: WalWriter::sync_commits
    pub fn append_group(&mut self, payloads: &[&[u8]]) -> Result<()> {
        let mut appended = 0u64;
        for payload in payloads {
            hdl_base::failpoint!("persist::wal_append");
            debug_assert!(payload.len() as u64 <= MAX_RECORD_LEN as u64);
            let crc = crc32(payload);
            if crashpoint::should_crash("persist::wal_append") {
                // Stage a torn record — a complete frame header but only
                // half the payload — flush it to the OS, then die. This
                // is the worst prefix a real crash can leave.
                self.write(&(payload.len() as u32).to_le_bytes())?;
                self.write(&crc.to_le_bytes())?;
                self.write(&payload[..payload.len() / 2])?;
                self.flush()?;
                std::process::abort();
            }
            self.write(&(payload.len() as u32).to_le_bytes())?;
            self.write(&crc.to_le_bytes())?;
            self.write(payload)?;
            appended += 8 + payload.len() as u64;
        }
        self.flush()?;
        // Only a fully flushed group moves the watermark; on any earlier
        // error the partial frames stay below `committed` and are never
        // shipped, mirroring how recovery truncates them.
        self.committed += appended;
        Ok(())
    }

    /// Applies the fsync policy after `commits` mutation groups were
    /// appended with [`append_group`](WalWriter::append_group). Under
    /// [`FsyncPolicy::Always`] this is exactly one `fdatasync` no matter
    /// how many commits it covers — the whole point of group commit.
    pub fn sync_commits(&mut self, commits: u32) -> Result<()> {
        hdl_base::failpoint!("persist::wal_fsync");
        if crashpoint::should_crash("persist::wal_fsync") {
            // Flushed but not fsynced and never acked: the record
            // survives a process crash (page cache) though not a power
            // cut. Recovery presenting it anyway is legal — it is a
            // complete, checksummed mutation the client sent.
            std::process::abort();
        }
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.commits_since_sync += commits;
                if self.commits_since_sync >= n {
                    self.sync()?;
                    self.commits_since_sync = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Appends pre-framed WAL bytes verbatim and fsyncs them. This is
    /// the replication follower's append path: the primary ships frame
    /// bytes exactly as they sit in its own log, and the follower lands
    /// them at identical offsets so the two files are byte-for-byte
    /// equal up to the follower's watermark. The sync is unconditional
    /// (ignoring [`FsyncPolicy`]) because the follower's ack *is* a
    /// durability claim — the primary treats acked bytes as safely
    /// mirrored.
    pub fn append_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.write(bytes)?;
        self.flush()?;
        self.committed += bytes.len() as u64;
        self.sync()
    }

    fn write(&mut self, bytes: &[u8]) -> Result<()> {
        self.file
            .write_all(bytes)
            .map_err(|e| Error::io(self.path.display(), e))
    }

    fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| Error::io(self.path.display(), e))
    }

    fn sync(&mut self) -> Result<()> {
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| Error::io(self.path.display(), e))
    }
}

/// One intact record recovered from a WAL scan.
#[derive(Debug)]
pub struct WalFrame {
    /// The record payload (checksum already verified).
    pub payload: Vec<u8>,
    /// File offset one past this record's frame — a safe truncation
    /// point if a *later* record turns out to be corrupt.
    pub end: u64,
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Epoch stamped in the header.
    pub epoch: u64,
    /// Intact records, in append order.
    pub records: Vec<WalFrame>,
    /// End of the valid prefix; everything past it is a torn or corrupt
    /// tail that recovery truncates.
    pub valid_len: u64,
    /// Actual file length when scanned.
    pub file_len: u64,
}

/// Scans a WAL file, stopping cleanly at the first torn or corrupt frame.
///
/// Only a missing or mangled *header* is a hard error (the file is not a
/// WAL at all); anything wrong after the header just ends the valid
/// prefix.
pub fn read_wal(path: &Path) -> Result<WalScan> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| Error::io(path.display(), e))?;
    if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
        return Err(Error::Invalid(format!(
            "{} is not a WAL file",
            path.display()
        )));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    // Stops at the first torn/corrupt frame; a short header read is a
    // clean EOF when pos == len, a torn header otherwise.
    while let Some(frame) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            break; // corrupt length prefix
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // bit rot or torn write inside the payload
        }
        pos += 8 + len as usize;
        records.push(WalFrame {
            payload: payload.to_vec(),
            end: pos as u64,
        });
    }

    Ok(WalScan {
        epoch,
        records,
        valid_len: pos as u64,
        file_len: bytes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert_eq!("8".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EveryN(8));
        assert!("0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn commit_then_scan_roundtrips() {
        let dir = TempDir::new("wal-roundtrip");
        let path = dir.path().join("wal-3.log");
        let mut w = WalWriter::create(&path, 3, FsyncPolicy::Always).unwrap();
        w.commit(&[b"first", b"second"]).unwrap();
        w.commit(&[b"third"]).unwrap();
        drop(w);

        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.epoch, 3);
        assert_eq!(scan.valid_len, scan.file_len);
        let payloads: Vec<&[u8]> = scan.records.iter().map(|r| r.payload.as_slice()).collect();
        assert_eq!(payloads, vec![&b"first"[..], b"second", b"third"]);
    }

    #[test]
    fn torn_tail_is_dropped_and_append_resumes() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal-1.log");
        let mut w = WalWriter::create(&path, 1, FsyncPolicy::EveryN(2)).unwrap();
        w.commit(&[b"keep me"]).unwrap();
        drop(w);

        // Simulate a crash mid-append: a frame header plus half a payload.
        let keep = read_wal(&path).unwrap().valid_len;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&crc32(b"torn torn").to_le_bytes());
        bytes.extend_from_slice(b"torn");
        std::fs::write(&path, &bytes).unwrap();

        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert!(scan.file_len > keep);

        // Recovery truncates and appends cleanly after the valid prefix.
        let mut w = WalWriter::open_end(&path, scan.valid_len, FsyncPolicy::Always).unwrap();
        w.commit(&[b"after recovery"]).unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        let payloads: Vec<&[u8]> = scan.records.iter().map(|r| r.payload.as_slice()).collect();
        assert_eq!(payloads, vec![&b"keep me"[..], b"after recovery"]);
        assert_eq!(scan.valid_len, scan.file_len);
    }

    #[test]
    fn bitflip_ends_the_valid_prefix() {
        let dir = TempDir::new("wal-bitflip");
        let path = dir.path().join("wal-1.log");
        let mut w = WalWriter::create(&path, 1, FsyncPolicy::Always).unwrap();
        w.commit(&[b"good record"]).unwrap();
        w.commit(&[b"soon corrupt"]).unwrap();
        drop(w);

        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].payload, b"good record");
        assert!(scan.valid_len < scan.file_len);
    }

    #[test]
    fn non_wal_file_is_a_hard_error() {
        let dir = TempDir::new("wal-notawal");
        let path = dir.path().join("wal-1.log");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(read_wal(&path).is_err());
        std::fs::write(&path, b"").unwrap();
        assert!(read_wal(&path).is_err());
    }
}
