//! Checkpoint files: atomic publication and newest-valid selection.
//!
//! A checkpoint is published with the classic temp-file dance — write
//! `ckpt-<epoch>.tmp`, fsync it, rename to `ckpt-<epoch>.bin`, fsync the
//! directory — so a crash anywhere in the sequence leaves either the old
//! world or the new one, never a half-written file under the real name.
//! Selection walks checkpoints newest-first and takes the first one that
//! passes its CRC and structural decode; a corrupt newest checkpoint
//! (e.g. a bad sector) silently falls back to its predecessor, which is
//! why [`prune_checkpoints`] always spares the runner-up.

use crate::codec::{decode_checkpoint, CheckpointState};
use crate::crashpoint;
use hdl_base::{Error, Result};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// `dir/ckpt-<epoch>.bin`.
pub fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("ckpt-{epoch}.bin"))
}

/// `dir/wal-<epoch>.log`.
pub fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.log"))
}

/// Parses `<prefix><epoch><suffix>` file names back to their epoch.
pub fn parse_epoch(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Fsyncs a directory so renames/creates/unlinks inside it are durable.
pub fn sync_dir(dir: &Path) -> Result<()> {
    // Directory fsync is a Unix-ism; on platforms where opening a
    // directory fails, the rename is still atomic — only its durability
    // ordering is weaker.
    if let Ok(d) = File::open(dir) {
        d.sync_all().map_err(|e| Error::io(dir.display(), e))?;
    }
    Ok(())
}

/// Atomically publishes checkpoint `epoch` from its serialized image.
pub fn write_checkpoint(dir: &Path, epoch: u64, bytes: &[u8]) -> Result<PathBuf> {
    let tmp = dir.join(format!("ckpt-{epoch}.tmp"));
    let path = checkpoint_path(dir, epoch);

    hdl_base::failpoint!("persist::checkpoint_write");
    let mut file = File::create(&tmp).map_err(|e| Error::io(tmp.display(), e))?;
    if crashpoint::should_crash("persist::checkpoint_write") {
        // Die with a half-written temp file on disk; recovery must sweep
        // it and fall back to the previous checkpoint.
        let _ = file.write_all(&bytes[..bytes.len() / 2]);
        let _ = file.sync_all();
        std::process::abort();
    }
    file.write_all(bytes)
        .map_err(|e| Error::io(tmp.display(), e))?;
    file.sync_all().map_err(|e| Error::io(tmp.display(), e))?;
    drop(file);

    hdl_base::failpoint!("persist::checkpoint_rename");
    // Temp file is complete and durable, but the rename never happens:
    // recovery must keep serving from the previous checkpoint + WAL.
    crashpoint::crash_point("persist::checkpoint_rename");
    fs::rename(&tmp, &path).map_err(|e| Error::io(path.display(), e))?;
    sync_dir(dir)?;
    Ok(path)
}

/// All published checkpoints in `dir`, newest epoch first.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| Error::io(dir.display(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::io(dir.display(), e))?;
        let name = entry.file_name();
        if let Some(epoch) = name.to_str().and_then(|n| parse_epoch(n, "ckpt-", ".bin")) {
            found.push((epoch, entry.path()));
        }
    }
    found.sort_by_key(|entry| std::cmp::Reverse(entry.0));
    Ok(found)
}

/// Loads the newest checkpoint that passes verification, counting how
/// many newer-but-corrupt ones were skipped on the way.
pub fn load_newest_valid(dir: &Path) -> Result<(Option<CheckpointState>, u64)> {
    let mut skipped = 0;
    for (epoch, path) in list_checkpoints(dir)? {
        let bytes = fs::read(&path).map_err(|e| Error::io(path.display(), e))?;
        match decode_checkpoint(&bytes) {
            Ok(state) if state.epoch == epoch => return Ok((Some(state), skipped)),
            Ok(state) => {
                eprintln!(
                    "warning: {} claims epoch {} (file name says {epoch}); skipping",
                    path.display(),
                    state.epoch
                );
                skipped += 1;
            }
            Err(err) => {
                eprintln!(
                    "warning: skipping corrupt checkpoint {}: {err}",
                    path.display()
                );
                skipped += 1;
            }
        }
    }
    Ok((None, skipped))
}

/// Deletes all but the `keep` newest checkpoints (best effort).
pub fn prune_checkpoints(dir: &Path, keep: usize) {
    if let Ok(all) = list_checkpoints(dir) {
        for (_, path) in all.into_iter().skip(keep) {
            let _ = fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_checkpoint;
    use crate::testutil::TempDir;
    use hdl_base::{Database, SymbolTable};
    use hdl_core::Rulebase;

    fn image(epoch: u64) -> Vec<u8> {
        encode_checkpoint(
            epoch,
            1,
            &SymbolTable::new(),
            &Rulebase::new(),
            &Database::new(),
            &[],
        )
    }

    #[test]
    fn newest_valid_wins_and_corrupt_newest_falls_back() {
        let dir = TempDir::new("ckpt-select");
        write_checkpoint(dir.path(), 1, &image(1)).unwrap();
        write_checkpoint(dir.path(), 2, &image(2)).unwrap();
        let (state, skipped) = load_newest_valid(dir.path()).unwrap();
        assert_eq!(state.unwrap().epoch, 2);
        assert_eq!(skipped, 0);

        // Corrupt the newest: selection falls back to epoch 1.
        let mut bytes = image(3);
        let n = bytes.len();
        bytes[n / 2] ^= 0xff;
        write_checkpoint(dir.path(), 3, &bytes).unwrap();
        let (state, skipped) = load_newest_valid(dir.path()).unwrap();
        assert_eq!(state.unwrap().epoch, 2);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = TempDir::new("ckpt-empty");
        let (state, skipped) = load_newest_valid(dir.path()).unwrap();
        assert!(state.is_none());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn prune_spares_the_newest() {
        let dir = TempDir::new("ckpt-prune");
        for e in 1..=5 {
            write_checkpoint(dir.path(), e, &image(e)).unwrap();
        }
        prune_checkpoints(dir.path(), 2);
        let left: Vec<u64> = list_checkpoints(dir.path())
            .unwrap()
            .into_iter()
            .map(|(e, _)| e)
            .collect();
        assert_eq!(left, vec![5, 4]);
    }

    #[test]
    fn epoch_parsing() {
        assert_eq!(parse_epoch("ckpt-17.bin", "ckpt-", ".bin"), Some(17));
        assert_eq!(parse_epoch("wal-0.log", "wal-", ".log"), Some(0));
        assert_eq!(parse_epoch("ckpt-17.tmp", "ckpt-", ".bin"), None);
        assert_eq!(parse_epoch("ckpt-x.bin", "ckpt-", ".bin"), None);
    }
}
