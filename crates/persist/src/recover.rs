//! Crash recovery: newest valid checkpoint + WAL tail replay.
//!
//! The invariant recovery restores is exactly the durability contract
//! the writer upheld: *every acked mutation whose fsync completed is
//! present; the first torn or corrupt record ends the world*. Replay
//! applies records to a fresh [`Session`] with no observer installed
//! (nothing is re-logged), re-interning symbols in their original order
//! so every id on disk stays meaningful. Anything wrong — torn frame,
//! checksum mismatch, structurally invalid record, a record the session
//! rejects — stops replay cleanly at the last good record; the tail is
//! truncated, counted, and warned about, never panicked over.

use crate::checkpoint::{load_newest_valid, wal_path};
use crate::codec::{decode_record, WalRecord};
use crate::wal::{read_wal, FsyncPolicy, WalWriter};
use hdl_base::{Error, Result};
use hdl_core::{Session, Snapshot};
use std::fs;
use std::path::Path;

/// What recovery found and did, for `:stats` and the service report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint restored from (0 = none, fresh world).
    pub checkpoint_epoch: u64,
    /// WAL records replayed on top of the checkpoint.
    pub records_replayed: u64,
    /// Torn or corrupt records dropped from the WAL tail.
    pub records_truncated: u64,
    /// Bytes cut off the WAL tail.
    pub bytes_truncated: u64,
    /// Newer-but-corrupt checkpoints skipped during selection.
    pub checkpoints_skipped: u64,
}

impl RecoveryReport {
    /// Whether recovery had anything at all to restore.
    pub fn restored_anything(&self) -> bool {
        self.checkpoint_epoch > 0 || self.records_replayed > 0
    }

    /// One-line JSON object of the report (for `:stats --json` and the
    /// network protocol's `stats` op). Keys are stable.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"checkpoint_epoch\":{},\"records_replayed\":{},\"records_truncated\":{},\
             \"bytes_truncated\":{},\"checkpoints_skipped\":{}}}",
            self.checkpoint_epoch,
            self.records_replayed,
            self.records_truncated,
            self.bytes_truncated,
            self.checkpoints_skipped
        )
    }
}

/// A recovered world: the session, its epoch, and an open WAL writer
/// positioned after the last valid record.
pub struct Recovered {
    /// The restored session (no observer installed yet).
    pub session: Session,
    /// The active checkpoint epoch (WAL file names follow it).
    pub epoch: u64,
    /// What recovery found.
    pub report: RecoveryReport,
    /// Writer for the active WAL, ready to append.
    pub writer: WalWriter,
}

/// Restores a session from `dir`, creating the directory on first use.
pub fn recover(dir: &Path, policy: FsyncPolicy) -> Result<Recovered> {
    fs::create_dir_all(dir).map_err(|e| Error::io(dir.display(), e))?;
    sweep_tmp_files(dir)?;

    let (state, checkpoints_skipped) = load_newest_valid(dir)?;
    let mut report = RecoveryReport {
        checkpoints_skipped,
        ..RecoveryReport::default()
    };
    let (mut session, epoch) = match state {
        Some(s) => {
            // Never reuse a snapshot epoch the pre-crash process issued.
            Snapshot::advance_epoch_to(s.watermark);
            report.checkpoint_epoch = s.epoch;
            (
                Session::from_parts(s.symbols, s.rulebase, s.base, s.frames),
                s.epoch,
            )
        }
        None => (Session::new(), 0),
    };

    sweep_stale_wals(dir, epoch)?;

    let path = wal_path(dir, epoch);
    let writer = if path.exists() {
        match read_wal(&path) {
            Ok(scan) if scan.epoch == epoch => {
                let mut valid_len = crate::wal::WAL_HEADER_LEN;
                for frame in &scan.records {
                    let record = match decode_record(&frame.payload, session.symbols()) {
                        Ok(r) => r,
                        Err(err) => {
                            eprintln!(
                                "warning: WAL record {} is corrupt ({err}); truncating",
                                report.records_replayed + 1
                            );
                            break;
                        }
                    };
                    if let Err(err) = apply(&mut session, record) {
                        eprintln!(
                            "warning: WAL record {} was rejected on replay ({err}); truncating",
                            report.records_replayed + 1
                        );
                        break;
                    }
                    report.records_replayed += 1;
                    valid_len = frame.end;
                }
                let dropped_records = scan.records.len() as u64 - report.records_replayed;
                let torn_tail = scan.file_len > scan.valid_len;
                report.records_truncated = dropped_records + u64::from(torn_tail);
                report.bytes_truncated = scan.file_len - valid_len;
                WalWriter::open_end(&path, valid_len, policy)?
            }
            other => {
                // Unreadable header or an epoch that contradicts the file
                // name: nothing in it can be trusted, start the epoch's
                // log over. (A crash during WAL creation leaves exactly
                // this: an empty or half-headered file with no records.)
                if let Ok(scan) = &other {
                    eprintln!(
                        "warning: {} claims epoch {} (expected {epoch}); discarding",
                        path.display(),
                        scan.epoch
                    );
                } else {
                    eprintln!(
                        "warning: {} has no valid WAL header; discarding",
                        path.display()
                    );
                }
                let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                report.bytes_truncated = len;
                report.records_truncated = u64::from(len > 0);
                WalWriter::create(&path, epoch, policy)?
            }
        }
    } else {
        WalWriter::create(&path, epoch, policy)?
    };
    crate::checkpoint::sync_dir(dir)?;

    Ok(Recovered {
        session,
        epoch,
        report,
        writer,
    })
}

/// Applies one replayed record to the session. Shared with the
/// replication follower ([`crate::replicate::Replica`]), which applies
/// shipped records through exactly this path so a replica's world is the
/// world recovery would rebuild from its local log.
pub(crate) fn apply(session: &mut Session, record: WalRecord) -> Result<()> {
    match record {
        WalRecord::Symbols(names) => {
            session.sync_symbols(&names);
            Ok(())
        }
        WalRecord::Program { rules, facts } => session.apply_program(rules, facts),
        WalRecord::Retract(fact) => session.retract_fact(&fact).map(|_| ()),
        WalRecord::Assume(facts) => session.assume(facts),
        WalRecord::PopAssumption => session.pop_assumption().map(|_| ()),
    }
}

/// Removes half-written checkpoint temp files left by a crash.
fn sweep_tmp_files(dir: &Path) -> Result<()> {
    for entry in fs::read_dir(dir).map_err(|e| Error::io(dir.display(), e))? {
        let entry = entry.map_err(|e| Error::io(dir.display(), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("ckpt-") && name.ends_with(".tmp") {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(())
}

/// Removes WAL files from epochs other than the selected one.
///
/// These exist only inside checkpoint-rotation crash windows: the new
/// checkpoint renamed but its WAL not yet created (no file for `epoch`,
/// old epoch's file still present), or the old WAL not yet deleted. In
/// both cases the selected checkpoint already *contains* everything the
/// old epoch's WAL held, so the stale file must go before it can be
/// replayed against the wrong base state.
fn sweep_stale_wals(dir: &Path, epoch: u64) -> Result<()> {
    for entry in fs::read_dir(dir).map_err(|e| Error::io(dir.display(), e))? {
        let entry = entry.map_err(|e| Error::io(dir.display(), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(e) = crate::checkpoint::parse_epoch(name, "wal-", ".log") {
            if e != epoch {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
    Ok(())
}
