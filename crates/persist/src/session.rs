//! [`DurableSession`]: a [`Session`] whose mutations survive `kill -9`.
//!
//! The session's write-ahead observer hook does the heavy lifting: every
//! mutation is offered to the observer *after* validation but *before*
//! it touches memory, so the WAL orders strictly ahead of RAM. If the
//! log append (or its fsync under [`FsyncPolicy::Always`]) fails, the
//! mutation is aborted and the caller sees the error — memory and disk
//! cannot disagree in the dangerous direction (memory ahead of disk).
//!
//! A checkpoint compacts the log: serialize the whole world, publish it
//! atomically, rotate to a fresh WAL for the next epoch, delete the old
//! one. Crashes anywhere in that sequence are recovered by
//! [`crate::recover::recover`], which this type runs on open.

use crate::checkpoint::{prune_checkpoints, sync_dir, wal_path, write_checkpoint};
use crate::codec::{
    encode_assume_record, encode_checkpoint, encode_pop_record, encode_program_record,
    encode_retract_record, encode_symbols_record,
};
use crate::recover::{recover, RecoveryReport};
use crate::wal::{FsyncPolicy, WalWriter};
use hdl_base::{Error, Result, SymbolTable};
use hdl_core::session::{Mutation, SessionObserver};
use hdl_core::{Session, Snapshot};
use std::ops::{Deref, DerefMut};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// The WAL writer plus the count of symbol names already on disk,
/// shared between the session-owned observer and the `DurableSession`
/// (which needs it back for checkpoint rotation).
#[derive(Debug)]
struct WalShared {
    writer: WalWriter,
    /// How many symbols (by interning position) the log already covers;
    /// names past this are written in a `Symbols` record before the next
    /// mutation that needs them.
    synced: usize,
}

/// The observer installed into the wrapped session.
struct WalObserver {
    shared: Arc<Mutex<WalShared>>,
}

impl SessionObserver for WalObserver {
    fn on_mutation(&mut self, symbols: &SymbolTable, mutation: &Mutation<'_>) -> Result<()> {
        let mut guard = self.shared.lock().unwrap_or_else(PoisonError::into_inner);
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(2);
        if symbols.len() > guard.synced {
            let names: Vec<&str> = symbols
                .iter()
                .skip(guard.synced)
                .map(|(_, name)| name)
                .collect();
            payloads.push(encode_symbols_record(&names));
        }
        payloads.push(match mutation {
            Mutation::Program { rules, facts } => encode_program_record(rules, facts),
            Mutation::Retract(fact) => encode_retract_record(fact),
            Mutation::Assume(facts) => encode_assume_record(facts),
            Mutation::PopAssumption => encode_pop_record(),
        });
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        guard.writer.commit(&refs)?;
        // Only advance after a successful commit: if the append failed,
        // the next mutation re-sends the same symbol suffix (replay
        // tolerates re-interning — ids are positional and idempotent).
        guard.synced = symbols.len();
        Ok(())
    }
}

/// State present only when a persist dir is configured.
#[derive(Debug)]
struct Durable {
    dir: PathBuf,
    policy: FsyncPolicy,
    epoch: u64,
    shared: Arc<Mutex<WalShared>>,
    report: RecoveryReport,
}

/// A session with optional durability; derefs to [`Session`].
pub struct DurableSession {
    session: Session,
    durable: Option<Durable>,
}

/// How many published checkpoints to keep around (the newest, plus one
/// fallback in case the newest is later found corrupt).
const KEEP_CHECKPOINTS: usize = 2;

impl DurableSession {
    /// Opens (recovering if needed) a durable session rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<Self> {
        let dir = dir.into();
        let recovered = recover(&dir, policy)?;
        let mut session = recovered.session;
        let shared = Arc::new(Mutex::new(WalShared {
            writer: recovered.writer,
            synced: session.symbols().len(),
        }));
        session.set_observer(Some(Box::new(WalObserver {
            shared: Arc::clone(&shared),
        })));
        Ok(DurableSession {
            session,
            durable: Some(Durable {
                dir,
                policy,
                epoch: recovered.epoch,
                shared,
                report: recovered.report,
            }),
        })
    }

    /// A plain in-memory session with no durability (the default mode of
    /// the CLI when `--persist-dir` is not given).
    pub fn ephemeral() -> Self {
        DurableSession {
            session: Session::new(),
            durable: None,
        }
    }

    /// Whether mutations are being logged.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The persist directory, when durable.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// The active checkpoint epoch (0 before the first checkpoint, and
    /// always 0 when ephemeral).
    pub fn epoch(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.epoch)
    }

    /// What recovery found when this session was opened.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable.as_ref().map(|d| &d.report)
    }

    /// Serializes the whole session state to a new checkpoint epoch,
    /// rotates the WAL, and deletes the old log. Returns the new epoch.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let durable = self
            .durable
            .as_mut()
            .ok_or_else(|| Error::Invalid("session has no persist dir".into()))?;
        let epoch = durable.epoch + 1;
        let image = encode_checkpoint(
            epoch,
            Snapshot::epoch_watermark(),
            self.session.symbols(),
            self.session.rulebase(),
            self.session.database(),
            self.session.assumptions(),
        );
        write_checkpoint(&durable.dir, epoch, &image)?;
        // The checkpoint is live from here: even if rotation below dies,
        // recovery selects it and discards the old epoch's WAL.
        let fresh = WalWriter::create(&wal_path(&durable.dir, epoch), epoch, durable.policy)?;
        sync_dir(&durable.dir)?;
        let old_path = {
            let mut guard = durable
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let old = guard.writer.path().to_path_buf();
            guard.writer = fresh;
            guard.synced = self.session.symbols().len();
            old
        };
        let _ = std::fs::remove_file(old_path);
        prune_checkpoints(&durable.dir, KEEP_CHECKPOINTS);
        durable.epoch = epoch;
        Ok(epoch)
    }
}

impl Deref for DurableSession {
    type Target = Session;

    fn deref(&self) -> &Session {
        &self.session
    }
}

impl DerefMut for DurableSession {
    fn deref_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use hdl_base::GroundAtom;

    const PROGRAM: &str = "edge(a, b). edge(b, c). edge(c, d).\n\
        tc(X, Y) :- edge(X, Y).\n\
        tc(X, Y) :- edge(X, Z), tc(Z, Y).\n\
        back(X) :- tc(X, a)[add: edge(d, a)].\n";

    fn parse_fact(session: &mut Session, text: &str) -> GroundAtom {
        let rb = hdl_core::parse_program(text, session.symbols_mut()).unwrap();
        let (_, mut facts) = hdl_core::split_facts(rb);
        facts.pop().unwrap()
    }

    #[test]
    fn mutations_survive_reopen_without_checkpoint() {
        let dir = TempDir::new("durable-wal-only");
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            s.load(PROGRAM).unwrap();
            let f = parse_fact(&mut s, "edge(d, e).");
            s.assert_fact(f).unwrap();
        }
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        assert!(s.ask("?- tc(a, e).").unwrap());
        let report = s.recovery_report().unwrap();
        assert_eq!(report.checkpoint_epoch, 0);
        assert!(report.records_replayed >= 2);
        assert_eq!(report.records_truncated, 0);
    }

    #[test]
    fn checkpoint_rotates_wal_and_survives_reopen() {
        let dir = TempDir::new("durable-ckpt");
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            s.load(PROGRAM).unwrap();
            assert_eq!(s.checkpoint().unwrap(), 1);
            // Post-checkpoint mutations land in the next epoch's WAL.
            let f = parse_fact(&mut s, "edge(d, e).");
            s.assert_fact(f).unwrap();
            let g = parse_fact(&mut s, "edge(a, b).");
            assert!(s.retract_fact(&g).unwrap());
        }
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        let report = s.recovery_report().unwrap().clone();
        assert_eq!(report.checkpoint_epoch, 1);
        assert_eq!(report.records_replayed, 3); // symbols + assert + retract
        assert!(s.ask("?- tc(b, e).").unwrap());
        assert!(!s.ask("?- tc(a, b).").unwrap());
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.checkpoint().unwrap(), 2);
    }

    #[test]
    fn assumptions_and_pops_are_durable() {
        let dir = TempDir::new("durable-assume");
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::EveryN(4)).unwrap();
            s.load(PROGRAM).unwrap();
            let f = parse_fact(&mut s, "edge(d, a).");
            s.assume(vec![f]).unwrap();
            let g = parse_fact(&mut s, "edge(z, z).");
            s.assume(vec![g]).unwrap();
            s.pop_assumption().unwrap();
            assert_eq!(s.checkpoint().unwrap(), 1);
        }
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        assert_eq!(s.assumptions().len(), 1);
        assert!(s.ask("?- tc(d, c).").unwrap());
        s.pop_assumption().unwrap();
        assert!(!s.ask("?- tc(d, c).").unwrap());
    }

    /// An injected append fault must abort the mutation without
    /// committing it to memory *or* leaving a durable trace.
    #[cfg(feature = "failpoints")]
    #[test]
    fn wal_append_fault_aborts_the_mutation() {
        use hdl_base::failpoint::{self, FaultSpec};
        let dir = TempDir::new("durable-fault");
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        s.load(PROGRAM).unwrap();
        failpoint::configure("persist::wal_append", FaultSpec::erroring(1).fires(1), 7);
        let f = parse_fact(&mut s, "edge(d, e).");
        let denied = s.assert_fact(f.clone());
        failpoint::clear();
        assert!(denied.is_err());
        assert!(!s.ask("?- tc(a, e).").unwrap());
        // Retrying after the fault clears works, and the retry (not the
        // aborted attempt) is what a reopen restores.
        s.assert_fact(f).unwrap();
        assert!(s.ask("?- tc(a, e).").unwrap());
        drop(s);
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        assert!(s.ask("?- tc(a, e).").unwrap());
    }

    /// Incremental retraction maintains the in-memory model without
    /// changing what hits the WAL: a `Retract` record replays to the
    /// exact same durable state whether or not the writer had a
    /// materialized model, byte for byte.
    #[test]
    fn incremental_retractions_replay_byte_identically() {
        let dir = TempDir::new("durable-incremental");
        let live_image;
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            s.load(PROGRAM).unwrap();
            // Materialize, then mutate through the incremental path.
            s.model().unwrap();
            let f = parse_fact(&mut s, "edge(a, c).");
            s.assert_fact(f).unwrap();
            let g = parse_fact(&mut s, "edge(b, c).");
            assert!(s.retract_fact(&g).unwrap());
            let stats = s.maintenance_stats().unwrap();
            assert_eq!(stats.full_builds, 1, "only the initial build");
            // `back`'s hypothetical premise puts `tc` in a hyp-goal
            // cone, so both mutations take the conservative reduced
            // recompute rather than fact-level DRed — still incremental
            // (no full rebuild, no domain rebuild).
            assert_eq!(stats.conservative_updates, 2);
            assert_eq!(stats.domain_rebuilds, 0);
            assert!(s.ask("?- tc(a, d).").unwrap(), "rerouted via edge(a, c)");
            live_image = encode_checkpoint(
                1,
                0,
                s.symbols(),
                s.rulebase(),
                s.database(),
                s.assumptions(),
            );
        }
        // Recovery replays the Retract record cold (no model), yet the
        // durable state it reconstructs is identical.
        let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
        assert!(!s.is_materialized(), "models are not persisted");
        let recovered_image = encode_checkpoint(
            1,
            0,
            s.symbols(),
            s.rulebase(),
            s.database(),
            s.assumptions(),
        );
        assert_eq!(live_image, recovered_image, "byte-identical state");
        // And a fresh materialization over the recovered state agrees
        // with the incrementally maintained one.
        assert!(s.ask("?- tc(a, d).").unwrap());
        assert!(!s.ask("?- edge(b, c).").unwrap());
        let model_facts = s.model().unwrap().len();
        assert!(model_facts > 0);
    }

    #[test]
    fn ephemeral_sessions_refuse_checkpoints() {
        let mut s = DurableSession::ephemeral();
        s.load("p(a).").unwrap();
        assert!(!s.is_durable());
        assert!(s.checkpoint().is_err());
        assert!(s.recovery_report().is_none());
    }

    #[test]
    fn reopen_is_idempotent_when_nothing_changed() {
        let dir = TempDir::new("durable-idem");
        {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            s.load(PROGRAM).unwrap();
        }
        for _ in 0..3 {
            let mut s = DurableSession::open(dir.path(), FsyncPolicy::Always).unwrap();
            assert!(s.ask("?- tc(a, d).").unwrap());
        }
    }
}
